"""Chaos suite: fault injection, retry/backoff, and anti-entropy repair.

The headline test injects a 30-second WAN partition into an
eventually-consistent deployment while writes keep flowing, and proves the
replicas converge after the heal: every replica holds the latest version
of every key and no delivery failure is left unrepaired.
"""

import pytest

from repro import (
    GlobalPolicySpec,
    RegionPlacement,
    RetryPolicy,
    build_deployment,
)
from repro.faults import NO_RETRY, call_with_retries
from repro.net import EU_WEST, US_EAST, US_WEST, Network
from repro.sim import Simulator
from repro.sim.rpc import RpcError, RpcNode
from repro.tiera.policy import memory_only_policy
from repro.util.rng import RngRegistry

REGIONS = (US_EAST, US_WEST, EU_WEST)


def deploy(consistency, seed=53, **kwargs):
    dep = build_deployment(REGIONS, seed=seed)
    spec = GlobalPolicySpec(
        name="chaos",
        placements=tuple(
            RegionPlacement(r, memory_only_policy(),
                            primary=(r == US_EAST)) for r in REGIONS),
        consistency=consistency, **kwargs)
    instances = dep.start_wiera_instance("chaos", spec)
    return dep, instances


def latest_meta(instance, key):
    record = instance.meta.get_record(key)
    if record is None:
        return None
    meta = record.latest()
    if meta is None:
        return None
    return (meta.version, meta.last_modified)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, multiplier=2.0,
                             max_delay=1.0, jitter=0.0)
        delays = [policy.backoff(i) for i in range(6)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert delays[4] == delays[5] == 1.0

    def test_jitter_is_deterministic_per_stream(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, RngRegistry(9).stream("x")) for i in range(4)]
        b = [policy.backoff(i, RngRegistry(9).stream("x")) for i in range(4)]
        assert a == b
        nominal = [policy.backoff(i) for i in range(4)]
        assert a != nominal  # jitter actually moved the delays

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        assert NO_RETRY.max_attempts == 1


class TestCallWithRetries:
    @pytest.fixture
    def world(self):
        sim = Simulator()
        net = Network(sim)
        a = RpcNode(sim, net, net.add_host("a", US_EAST), name="a")
        b = RpcNode(sim, net, net.add_host("b", US_WEST), name="b")
        return sim, net, a, b

    def test_succeeds_after_transient_failures(self, world):
        sim, net, a, b = world
        state = {"fails": 2}

        def flaky(msg):
            yield sim.timeout(0.001)
            if state["fails"] > 0:
                state["fails"] -= 1
                raise RpcError("transient")
            return {"ok": True}

        b.register("flaky", flaky)
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)

        def main():
            result = yield from call_with_retries(
                sim, lambda: a.call(b, "flaky"), policy)
            return result

        proc = sim.process(main())
        assert sim.run(until=proc) == {"ok": True}
        assert state["fails"] == 0

    def test_exhausted_attempts_reraise(self, world):
        sim, net, a, b = world

        def dead(msg):
            yield sim.timeout(0.001)
            raise RpcError("always down")

        b.register("dead", dead)
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)

        def main():
            yield from call_with_retries(sim, lambda: a.call(b, "dead"),
                                         policy)

        proc = sim.process(main())
        with pytest.raises(RpcError):
            sim.run(until=proc)


class TestFaultSchedule:
    def test_schedule_is_deterministic(self):
        logs = []
        for _ in range(2):
            dep, _ = deploy("eventual", queue_interval=1.0)
            faults = dep.fault_schedule()
            faults.partition(1.0, US_EAST, EU_WEST, duration=2.0)
            faults.crash(2.0, dep.server(US_WEST), duration=1.5)
            faults.latency_spike(0.5, 0.1, regions=(US_EAST, US_WEST),
                                 duration=4.0)
            faults.start()
            dep.sim.run(until=6.0)
            logs.append(list(faults.applied))
        assert logs[0] == logs[1]
        assert [kind for _, kind, _ in logs[0]] == [
            "delay", "partition", "crash", "heal", "restart"]

    def test_crash_wipes_volatile_tiers(self):
        dep, instances = deploy("local")
        inst = dep.instance("chaos", US_WEST)
        client = dep.add_client(US_WEST, instances=[
            info for info in instances if info["region"] == US_WEST])
        dep.drive(client.put("k", b"v"))
        assert inst.meta.get_record("k") is not None
        faults = dep.fault_schedule()
        faults.crash(dep.sim.now + 0.5, dep.server(US_WEST), duration=1.0)
        faults.start()
        dep.sim.run(until=dep.sim.now + 3.0)
        assert dep.metric_total("faults.injected", kind="crash") == 1
        # memory-only instance lost the object's bytes with the crash
        record = inst.meta.get_record("k")
        assert record is None or not record.latest().locations

    def test_cannot_extend_running_schedule(self):
        dep, _ = deploy("local")
        faults = dep.fault_schedule().partition(1.0, US_EAST, EU_WEST,
                                                duration=1.0)
        faults.start()
        with pytest.raises(RuntimeError):
            faults.partition(5.0, US_EAST, US_WEST, duration=1.0)


class TestPartitionConvergence:
    """The acceptance test: a 30 s partition during eventual-consistency
    writes, then convergence after heal + anti-entropy repair."""

    def test_replicas_converge_after_heal(self):
        dep, instances = deploy("eventual", queue_interval=1.0,
                                repair_interval=5.0)
        client = dep.add_client(US_EAST, instances=instances)
        faults = dep.fault_schedule()
        faults.partition(2.0, US_EAST, EU_WEST, duration=30.0)
        faults.start()

        keys = [f"k{i}" for i in range(5)]

        def workload():
            # Writes before, during, and after the partition window.
            for round_ in range(12):
                for key in keys:
                    payload = f"{key}-r{round_}".encode()
                    yield from client.put(key, payload)
                yield dep.sim.timeout(2.0)

        dep.drive(workload())
        # Partition healed at t=32; let retries + repair rounds finish.
        dep.sim.run(until=80.0)

        protocol = dep.tim("chaos").protocol
        queues = list(protocol._queues.values())
        # The partition really bit: first-attempt sends failed...
        assert sum(q.send_failures for q in queues) > 0
        # ...retries were capped, so some entries went to anti-entropy...
        assert sum(q.abandoned for q in queues) > 0
        # ...and nothing stayed diverged.
        assert sum(q.outstanding_failures for q in queues) == 0

        locals_ = [dep.instance("chaos", r) for r in REGIONS]
        for key in keys:
            versions = [latest_meta(inst, key) for inst in locals_]
            assert versions[0] is not None
            assert versions.count(versions[0]) == len(versions), (
                f"{key} diverged: {versions}")

    def test_repair_pushed_keys_across_healed_partition(self):
        dep, instances = deploy("eventual", queue_interval=1.0,
                                repair_interval=5.0)
        client = dep.add_client(US_EAST, instances=instances)
        faults = dep.fault_schedule()
        faults.partition(1.0, US_EAST, EU_WEST, duration=30.0)
        faults.start()

        def workload():
            yield dep.sim.timeout(2.0)   # inside the partition window
            yield from client.put("solo", b"written-during-partition")

        dep.drive(workload())
        dep.sim.run(until=60.0)
        assert dep.metric_total("repair.keys_pushed") > 0
        eu = dep.instance("chaos", EU_WEST)
        assert latest_meta(eu, "solo") is not None


class TestPrimaryCrashMidForward:
    def test_forwarded_put_retries_until_primary_returns(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        tim = dep.tim("chaos")
        # Give the forward path enough backoff budget to outlive the crash.
        tim.protocol.retry_policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0,
            max_delay=5.0, jitter=0.0)
        client = dep.add_client(EU_WEST, instances=[
            info for info in instances if info["region"] == EU_WEST])
        faults = dep.fault_schedule()
        faults.crash(1.0, dep.server(US_EAST), duration=2.0)
        faults.start()

        def app():
            yield dep.sim.timeout(1.5)   # primary is down right now
            result = yield from client.put("k", b"v")
            return result

        result = dep.drive(app())
        assert result["version"] == 1
        assert tim.protocol.forwarded_puts == 1
        assert dep.sim.now > 3.0   # the put could only finish post-restart
        # The sync broadcast reached the other backup too.
        assert latest_meta(dep.instance("chaos", US_WEST), "k") is not None


class TestRemovePropagation:
    def test_sync_primary_backup_remove_reaches_all_peers(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            yield from client.remove("k")

        dep.drive(app())
        # Synchronous mode: by the time remove() acked, every replica
        # (not just the primary) dropped the key.  No settling time.
        for region in REGIONS:
            assert dep.instance("chaos", region).meta.get_record("k") is None

    def test_multi_primaries_remove_is_synchronous_and_unlocks(self):
        dep, instances = deploy("multi_primaries")
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            yield from client.remove("k")

        dep.drive(app())
        for region in REGIONS:
            assert dep.instance("chaos", region).meta.get_record("k") is None
        assert dep.wiera.lock_service.held_keys() == []

    def test_backup_remove_forwards_to_primary(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        client = dep.add_client(EU_WEST, instances=[
            info for info in instances if info["region"] == EU_WEST])

        def app():
            yield from client.put("k", b"v")
            yield from client.remove("k")

        dep.drive(app())
        assert dep.tim("chaos").protocol.forwarded_removes == 1
        for region in REGIONS:
            assert dep.instance("chaos", region).meta.get_record("k") is None

    def test_async_primary_backup_remove_rides_the_queue(self):
        dep, instances = deploy("primary_backup", sync_replication=False,
                                queue_interval=0.5)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            yield from client.remove("k")

        dep.drive(app())
        dep.sim.run(until=dep.sim.now + 3.0)
        for region in REGIONS:
            assert dep.instance("chaos", region).meta.get_record("k") is None


class TestClientFailover:
    def test_client_times_out_and_fails_over(self):
        dep, instances = deploy("eventual", queue_interval=1.0)
        client = dep.add_client(US_EAST, instances=instances,
                                request_timeout=0.5)
        # Make the closest instance unreachable without erroring fast:
        # blackhole via a huge latency spike, so only the timeout can save
        # the client.
        faults = dep.fault_schedule()
        faults.latency_spike(0.0, 60.0,
                             host=dep.instance("chaos", US_EAST).host)
        faults.start()

        def app():
            yield dep.sim.timeout(0.5)
            result = yield from client.put("k", b"v")
            return result

        result = dep.drive(app())
        assert result["version"] == 1
        assert client.failovers >= 1
        # The object landed on a non-closest instance.
        assert result["region"] != US_EAST

    def test_client_retry_policy_rides_out_total_outage(self):
        dep, instances = deploy("eventual", queue_interval=1.0)
        client = dep.add_client(
            US_EAST, instances=instances,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.2,
                                     multiplier=2.0, jitter=0.0))
        faults = dep.fault_schedule()
        for region in REGIONS:
            faults.crash(0.5, dep.server(region), duration=1.5)
        faults.start()

        def app():
            yield dep.sim.timeout(1.0)   # everything is down
            result = yield from client.put("k", b"v")
            return result

        result = dep.drive(app())
        assert result["version"] == 1
        assert client.retries >= 1


class TestDrainAndDetach:
    def test_detach_counts_dropped_pending(self):
        dep, instances = deploy("eventual", queue_interval=500.0)
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("k", b"v"))
        inst = dep.instance("chaos", US_EAST)
        protocol = dep.tim("chaos").protocol
        assert protocol.pending_count(inst) == 1
        protocol.detach(inst)   # nothing drained: the drop is surfaced
        assert dep.metric_total("replication.pending_dropped",
                                 instance=inst.instance_id) == 1

    def test_ctl_drain_reports_zero_pending_after_drain(self):
        dep, instances = deploy("eventual", queue_interval=500.0)
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("k", b"v"))
        inst = dep.instance("chaos", US_EAST)
        tim = dep.tim("chaos")

        def drain():
            result = yield tim.node.call(inst.node, "ctl_drain")
            return result

        result = dep.drive(drain())
        assert result == {"drained": True, "pending": 0}
        dep.sim.run(until=dep.sim.now + 1.0)
        for region in (US_WEST, EU_WEST):
            assert latest_meta(dep.instance("chaos", region),
                               "k") is not None

    def test_consistency_switch_still_clean(self):
        dep, instances = deploy("eventual", queue_interval=0.5)
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("k", b"v"))
        tim = dep.tim("chaos")
        dep.drive(tim.switch_consistency("multi_primaries"))
        assert tim.protocol.name == "multi_primaries"
        assert dep.metric_total("replication.pending_dropped") == 0


def run_reference_workload(use_schedule):
    dep, instances = deploy("eventual", seed=11, queue_interval=1.0)
    if use_schedule:
        dep.fault_schedule().start()   # empty: must change nothing
    client = dep.add_client(US_WEST, instances=instances)

    def workload():
        for i in range(10):
            yield from client.put(f"k{i % 3}", b"x" * (200 + i))
            result = yield from client.get(f"k{i % 3}")
            assert result["data"]
            yield dep.sim.timeout(0.3)

    dep.drive(workload())
    dep.sim.run(until=20.0)
    return client


class TestNoFaultsMeansNoChange:
    def test_latencies_bit_identical_with_empty_schedule(self):
        plain = run_reference_workload(use_schedule=False)
        chaos = run_reference_workload(use_schedule=True)
        assert plain.put_latency.values == chaos.put_latency.values
        assert plain.put_latency.times == chaos.put_latency.times
        assert plain.get_latency.values == chaos.get_latency.values
        assert plain.get_latency.times == chaos.get_latency.times


class TestTimerHygiene:
    def test_winning_calls_do_not_leak_deadline_timers(self):
        from repro.sim.rpc import call_with_timeout

        sim = Simulator()
        net = Network(sim)
        a = RpcNode(sim, net, net.add_host("a", US_EAST), name="a")
        b = RpcNode(sim, net, net.add_host("b", US_EAST), name="b")

        def fast(msg):
            yield sim.timeout(0.001)
            return {"ok": True}

        b.register("fast", fast)

        def main():
            for _ in range(200):
                yield from call_with_timeout(sim, a.call(b, "fast"), 3600.0)

        proc = sim.process(main())
        sim.run(until=proc)
        # 200 one-hour timers were armed and cancelled; the heap must not
        # still be carrying them (compaction keeps it bounded)...
        assert len(sim._heap) < 100
        # ...and running to quiescence must not fast-forward an hour.
        sim.run()
        assert sim.now < 60.0
