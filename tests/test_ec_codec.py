"""Property tests for the GF(256) erasure codec (repro.ec.codec)."""

import itertools
import random

import pytest

from repro.ec.codec import Codec, gf_inv, gf_mul, parity_matrix

SIZES = [0, 1, 7, 100, 1024]
SCHEMES = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 6)]


def rng_bytes(seed: int, size: int) -> bytes:
    return random.Random(seed).randbytes(size)


class TestField:
    def test_multiplicative_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_cauchy_entries_nonzero(self):
        for k, n in SCHEMES:
            for row in parity_matrix(k, n - k):
                assert all(v != 0 for v in row)


class TestRoundTrip:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("k,n", SCHEMES)
    def test_systematic_round_trip(self, size, k, n):
        data = rng_bytes(size * 31 + k, size)
        frags = Codec.encode(data, k, n)
        assert len(frags) == n
        length = Codec.fragment_length(size, k)
        assert all(len(f) == length for f in frags)
        got = Codec.decode({i: frags[i] for i in range(k)}, k, n, size)
        assert got == data

    @pytest.mark.parametrize("k,n", SCHEMES)
    def test_every_erasure_pattern(self, k, n):
        """MDS property: *every* k-subset of fragments reconstructs."""
        size = 257  # deliberately not a multiple of any k used here
        data = rng_bytes(n, size)
        frags = Codec.encode(data, k, n)
        for subset in itertools.combinations(range(n), k):
            got = Codec.decode({i: frags[i] for i in subset}, k, n, size)
            assert got == data, subset

    def test_non_multiple_of_k_sizes(self):
        for size in (5, 9, 13, 1001):
            data = rng_bytes(size, size)
            frags = Codec.encode(data, 4, 6)
            assert Codec.decode({2: frags[2], 3: frags[3], 4: frags[4],
                                 5: frags[5]}, 4, 6, size) == data

    def test_one_mebibyte(self):
        data = rng_bytes(99, 1 << 20)
        frags = Codec.encode(data, 4, 6)
        got = Codec.decode({0: frags[0], 2: frags[2], 4: frags[4],
                            5: frags[5]}, 4, 6, len(data))
        assert got == data

    def test_replication_degenerate_k1(self):
        """k=1: every fragment alone reconstructs the whole payload."""
        data = rng_bytes(3, 300)
        frags = Codec.encode(data, 1, 3)
        assert frags[0] == data  # systematic: shard 0 is the data itself
        for i in range(3):
            assert Codec.decode({i: frags[i]}, 1, 3, len(data)) == data


class TestDeterminism:
    def test_encode_deterministic(self):
        data = rng_bytes(42, 512)
        assert Codec.encode(data, 3, 5) == Codec.encode(data, 3, 5)

    def test_decode_ignores_arrival_order(self):
        """Decoding uses the k smallest indices regardless of dict order
        or of extra fragments being present."""
        data = rng_bytes(7, 400)
        k, n = 2, 4
        frags = Codec.encode(data, k, n)
        orders = [
            {1: frags[1], 3: frags[3]},
            {3: frags[3], 1: frags[1]},
            {3: frags[3], 1: frags[1], 2: frags[2]},  # extra fragment
        ]
        results = [Codec.decode(d, k, n, len(data)) for d in orders]
        assert all(r == data for r in results)

    def test_rebuild_matches_original_fragment(self):
        data = rng_bytes(11, 333)
        k, n = 3, 5
        frags = Codec.encode(data, k, n)
        for missing in range(n):
            rest = {i: frags[i] for i in range(n) if i != missing}
            assert Codec.rebuild(rest, k, n, len(data),
                                 missing) == frags[missing]


class TestValidation:
    def test_too_few_fragments(self):
        frags = Codec.encode(b"hello", 2, 3)
        with pytest.raises(ValueError):
            Codec.decode({0: frags[0]}, 2, 3, 5)

    def test_bad_schemes(self):
        with pytest.raises(ValueError):
            Codec.encode(b"x", 0, 3)
        with pytest.raises(ValueError):
            Codec.encode(b"x", 4, 3)
        with pytest.raises(ValueError):
            Codec.encode(b"x", 200, 300)

    def test_wrong_fragment_length(self):
        frags = Codec.encode(b"payload!", 2, 4)
        with pytest.raises(ValueError):
            Codec.decode({0: frags[0], 1: frags[1][:-1]}, 2, 4, 8)


class TestRebuildFastPath:
    """Target-row rebuild and the cached inverted decode matrices."""

    def test_rebuild_equals_reencode_across_schemes(self):
        """For every scheme, every recoverable loss pattern, and every
        survivor subset of exactly k: the target-row rebuild reproduces
        the fragment a full decode + re-encode would."""
        for k, n in SCHEMES:
            if n - k == 0:
                continue
            data = rng_bytes(k * 31 + n, 257)
            frags = Codec.encode(data, k, n)
            for missing in range(n):
                survivors = [i for i in range(n) if i != missing]
                for pick in itertools.combinations(survivors, k):
                    subset = {i: frags[i] for i in pick}
                    assert Codec.rebuild(subset, k, n, len(data),
                                         missing) == frags[missing], \
                        (k, n, missing, pick)

    def test_rebuild_ignores_copy_of_missing_index(self):
        """A (stale) fragment supplied under the missing index itself is
        excluded from the survivor set, never trusted."""
        data = rng_bytes(3, 128)
        k, n = 2, 4
        frags = Codec.encode(data, k, n)
        poisoned = {0: frags[0], 1: b"\xff" * len(frags[1]), 2: frags[2]}
        assert Codec.rebuild(poisoned, k, n, len(data), 1) == frags[1]

    def test_rebuild_needs_k_survivors(self):
        frags = Codec.encode(b"hello", 2, 3)
        with pytest.raises(ValueError):
            Codec.rebuild({0: frags[0]}, 2, 3, 5, 2)
        with pytest.raises(ValueError):
            Codec.rebuild({0: frags[0], 1: frags[1]}, 2, 3, 5, 7)

    def test_decode_matrix_cache_hits_on_repeated_patterns(self):
        """Repairing many objects under one erasure pattern inverts the
        matrix once; repeats are cache hits."""
        from repro.ec.codec import _INV_CACHE, _inv_cache_stats
        _INV_CACHE.clear()
        k, n = 3, 5
        before = dict(_inv_cache_stats)
        for seed in range(12):
            data = rng_bytes(seed, 300)
            frags = Codec.encode(data, k, n)
            rest = {i: frags[i] for i in range(n) if i != 1}
            assert Codec.rebuild(rest, k, n, len(data), 1) == frags[1]
        misses = _inv_cache_stats["misses"] - before["misses"]
        hits = _inv_cache_stats["hits"] - before["hits"]
        assert misses == 1   # one inversion for the pattern...
        assert hits == 11    # ...then pure lookups

    def test_decode_matrix_cache_is_bounded(self):
        from repro.ec import codec
        codec._INV_CACHE.clear()
        data = rng_bytes(1, 64)
        k = 2
        for n in range(3, 40):
            frags = Codec.encode(data, k, n)
            for missing in range(n):
                rest = {i: frags[i] for i in range(n) if i != missing}
                Codec.rebuild(rest, k, n, len(data), missing)
        assert len(codec._INV_CACHE) <= codec._INV_CACHE_MAX
