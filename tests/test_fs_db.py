"""Tests for the POSIX layer, block files, and the mini DB."""

import numpy as np
import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.db import DbError, MiniDB
from repro.fs import TierBlockFile, WieraBlockFile, WieraFS
from repro.fs.posixfs import FsError
from repro.net import US_EAST, US_WEST
from repro.sim import Simulator
from repro.storage import make_tier
from repro.tiera.policy import write_back_policy
from repro.util.units import GB, KB


@pytest.fixture
def fs_world():
    """A two-region Wiera instance with a POSIX fs mounted at US East."""
    dep = build_deployment((US_EAST, US_WEST), seed=3)
    spec = GlobalPolicySpec(
        name="fs",
        placements=(RegionPlacement(US_EAST, write_back_policy()),
                    RegionPlacement(US_WEST, write_back_policy())),
        consistency="eventual", queue_interval=1.0)
    instances = dep.start_wiera_instance("fs", spec)
    client = dep.add_client(US_EAST, instances=instances)
    fs = WieraFS(client, block_size=4 * KB)
    return dep, fs


class TestPosixFs:
    def test_write_read_roundtrip(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/a.txt")

        def app():
            yield from handle.write(b"hello world")
            handle.seek(0)
            data = yield from handle.read(100)
            return data
        assert dep.drive(app()) == b"hello world"
        assert handle.size == 11

    def test_cross_block_io(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/big")
        payload = bytes(range(256)) * 64  # 16 KB spanning 4 blocks

        def app():
            yield from handle.pwrite(0, payload)
            data = yield from handle.pread(0, len(payload))
            return data
        assert dep.drive(app()) == payload

    def test_unaligned_rmw(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/rmw")

        def app():
            yield from handle.pwrite(0, b"A" * (8 * KB))
            yield from handle.pwrite(100, b"B" * 50)
            data = yield from handle.pread(0, 8 * KB)
            return data
        data = dep.drive(app())
        assert data[:100] == b"A" * 100
        assert data[100:150] == b"B" * 50
        assert data[150:] == b"A" * (8 * KB - 150)

    def test_holes_read_as_zeros(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/sparse")

        def app():
            yield from handle.pwrite(10 * KB, b"end")
            data = yield from handle.pread(0, 4 * KB)
            return data
        data = dep.drive(app())
        assert data == b"\0" * (4 * KB)

    def test_read_past_eof_is_short(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/short")

        def app():
            yield from handle.pwrite(0, b"xyz")
            data = yield from handle.pread(1, 100)
            return data
        assert dep.drive(app()) == b"yz"

    def test_truncate_shrinks(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/t")

        def app():
            yield from handle.pwrite(0, b"Z" * (10 * KB))
            yield from handle.truncate(5)
            data = yield from handle.pread(0, 100)
            return data
        assert dep.drive(app()) == b"Z" * 5

    def test_fsync_and_remount(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/persist")

        def app():
            yield from handle.pwrite(0, b"durable")
            yield from handle.close()
        dep.drive(app())
        # a fresh FS over the same Wiera instance recovers the size
        fs2 = WieraFS(fs.client, block_size=4 * KB)

        def remount():
            meta = yield from fs2.mount_existing("/persist")
            handle2 = fs2.open("/persist", create=False)
            data = yield from handle2.pread(0, 100)
            return meta, data
        meta, data = dep.drive(remount())
        assert meta["size"] == 7
        assert data == b"durable"

    def test_closed_handle_rejects_io(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/c")

        def app():
            yield from handle.close()
        dep.drive(app())
        with pytest.raises(FsError):
            dep.drive(handle.pread(0, 1))

    def test_unlink(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/gone")

        def app():
            yield from handle.pwrite(0, b"data")
            yield from fs.unlink("/gone")
        dep.drive(app())
        assert not fs.exists("/gone")

    def test_open_missing_without_create(self, fs_world):
        _, fs = fs_world
        with pytest.raises(FileNotFoundError):
            fs.open("/nope", create=False)

    def test_listdir_and_stat(self, fs_world):
        dep, fs = fs_world
        fs.open("/dir/a")
        fs.open("/dir/b")
        fs.open("/other")
        assert fs.listdir("/dir/") == ["/dir/a", "/dir/b"]
        assert fs.stat("/other")["size"] == 0


class TestBlockFiles:
    def test_tier_blockfile(self):
        sim = Simulator()
        backend = make_tier(sim, "ebs_ssd", 1 * GB,
                            rng=np.random.default_rng(0))
        bf = TierBlockFile(backend, "f", nblocks=8, block_size=4 * KB)
        bf.prepare(fill=b"\x01")

        def app():
            data = yield from bf.read_block(3)
            yield from bf.write_block(3, b"\x02" * (4 * KB))
            data2 = yield from bf.read_block(3)
            return data, data2
        proc = sim.process(app())
        data, data2 = sim.run(until=proc)
        assert data == b"\x01" * (4 * KB)
        assert data2 == b"\x02" * (4 * KB)

    def test_out_of_range(self):
        sim = Simulator()
        backend = make_tier(sim, "ebs_ssd", 1 * GB)
        bf = TierBlockFile(backend, "f", nblocks=4, block_size=4 * KB)
        with pytest.raises(IndexError):
            list(bf.read_block(4))

    def test_wiera_blockfile(self, fs_world):
        dep, fs = fs_world
        handle = fs.open("/dev")
        fs._sizes["/dev"] = 8 * 4 * KB
        bf = WieraBlockFile(handle, nblocks=8)

        def app():
            yield from bf.write_block(2, b"\x03" * (4 * KB))
            data = yield from bf.read_block(2)
            hole = yield from bf.read_block(5)
            return data, hole
        data, hole = dep.drive(app())
        assert data == b"\x03" * (4 * KB)
        assert hole == b"\0" * (4 * KB)


class TestMiniDB:
    @pytest.fixture
    def db(self):
        sim = Simulator()
        backend = make_tier(sim, "azure_disk", 1 * GB,
                            rng=np.random.default_rng(0))
        bf = TierBlockFile(backend, "db", nblocks=256, block_size=16 * KB)
        bf.prepare()
        return sim, MiniDB(sim, bf, buffer_pool_bytes=4 * 16 * KB)

    def run(self, sim, gen):
        proc = sim.process(gen)
        return sim.run(until=proc)

    def test_row_roundtrip(self, db):
        sim, db = db
        table = db.create_table("t", row_size=256, rows=1000)

        def app():
            yield from table.write_row(42, b"row-42")
            data = yield from table.read_row(42)
            return data
        data = self.run(sim, app())
        assert data.rstrip(b"\0") == b"row-42"

    def test_rows_share_pages(self, db):
        sim, db = db
        table = db.create_table("t", row_size=256, rows=1000)
        assert table.rows_per_page == 64
        assert table.page_of(0) == table.page_of(63)
        assert table.page_of(64) == table.page_of(0) + 1

    def test_buffer_pool_hits(self, db):
        sim, db = db
        table = db.create_table("t", row_size=256, rows=1000)

        def app():
            yield from table.read_row(0)
            yield from table.read_row(1)   # same page -> pool hit
        self.run(sim, app())
        assert db.page_reads == 1
        assert db.pool_hits == 1

    def test_pool_eviction_bounded(self, db):
        sim, db = db
        table = db.create_table("t", row_size=16 * KB, rows=100)

        def app():
            for i in range(20):
                yield from table.read_row(i)
        self.run(sim, app())
        assert len(db._pool) <= db.buffer_pages == 4

    def test_write_through_hits_device(self, db):
        sim, db = db
        table = db.create_table("t", row_size=256, rows=100)

        def app():
            yield from table.write_row(1, b"x")
            yield from table.write_row(2, b"y")  # same page
        self.run(sim, app())
        assert db.page_writes == 2  # every write reaches the device

    def test_row_too_large(self, db):
        sim, db = db
        table = db.create_table("t", row_size=64, rows=10)
        with pytest.raises(DbError):
            self.run(sim, table.write_row(0, b"z" * 100))

    def test_table_catalog(self, db):
        sim, db = db
        db.create_table("a", row_size=256, rows=100)
        with pytest.raises(DbError):
            db.create_table("a", row_size=256, rows=100)
        with pytest.raises(DbError):
            db.table("missing")

    def test_device_exhaustion(self, db):
        sim, db = db
        with pytest.raises(DbError):
            db.create_table("huge", row_size=16 * KB, rows=10**6)

    def test_out_of_range_row(self, db):
        sim, db = db
        table = db.create_table("t", row_size=256, rows=10)
        with pytest.raises(DbError):
            table.page_of(10)
