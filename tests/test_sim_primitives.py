"""Unit tests for Store, Resource, SimLock and Gate."""

import pytest

from repro.sim import Gate, Resource, SimLock, Simulator, Store
from repro.sim.kernel import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def main():
            yield store.put("a")
            item = yield store.get()
            return item

        p = sim.process(main())
        assert sim.run(until=p) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(2.0)
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, "x")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        order = []

        def consumer(tag):
            item = yield store.get()
            order.append((tag, item))

        sim.process(consumer("c1"))
        sim.process(consumer("c2"))

        def producer():
            yield store.put(1)
            yield store.put(2)

        sim.process(producer())
        sim.run()
        assert order == [("c1", 1), ("c2", 2)]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put("a")
            events.append(("put-a", sim.now))
            yield store.put("b")
            events.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            events.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert events[0] == ("put-a", 0.0)
        assert events[1] == ("got", "a", 5.0)
        assert events[2] == ("put-b", 5.0)

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker(i):
            yield res.request()
            active.append(i)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.remove(i)
            res.release()

        for i in range(5):
            sim.process(worker(i))
        sim.run()
        assert max(peak) == 2
        assert sim.now == pytest.approx(3.0)  # 5 jobs / 2 slots / 1s each

    def test_release_without_request_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_queued_count(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queued == 1


class TestSimLock:
    def test_mutual_exclusion(self, sim):
        lock = SimLock(sim)
        inside = []
        overlap = []

        def critical(i):
            yield lock.acquire()
            inside.append(i)
            overlap.append(len(inside))
            yield sim.timeout(1.0)
            inside.remove(i)
            lock.release()

        for i in range(3):
            sim.process(critical(i))
        sim.run()
        assert max(overlap) == 1
        assert not lock.locked


class TestGate:
    def test_open_gate_passes_immediately(self, sim):
        gate = Gate(sim)

        def main():
            yield gate.wait()
            return sim.now

        p = sim.process(main())
        assert sim.run(until=p) == 0.0

    def test_closed_gate_blocks_until_open(self, sim):
        gate = Gate(sim, open_=False)
        passed = []

        def client(i):
            yield gate.wait()
            passed.append((i, sim.now))

        for i in range(3):
            sim.process(client(i))

        def opener():
            yield sim.timeout(4.0)
            gate.open()

        sim.process(opener())
        sim.run()
        assert passed == [(0, 4.0), (1, 4.0), (2, 4.0)]

    def test_queued_counter(self, sim):
        gate = Gate(sim, open_=False)
        sim.process((lambda: (yield gate.wait()))())
        sim.run(until=0.1)
        assert gate.queued == 1
        gate.open()
        sim.run(until=0.2)
        assert gate.queued == 0
