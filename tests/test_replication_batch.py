"""Batched data plane: batch RPCs, per-peer queue batching, chunked
transfers, and the batching-off bit-identical contract.

The batch plane is strictly opt-in (``batch_bytes=0`` keeps every code
path bit-identical to the unbatched plane — pinned by the kernel golden
fixture in ``test_kernel_golden.py``); these tests exercise the opt-in
paths, including their behavior under faults.
"""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core.consistency import ProtocolError, ReplicationQueue
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.net.link import iter_chunks
from repro.net.network import HostDownError, NetworkError
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


@pytest.fixture
def world():
    dep = build_deployment(REGIONS, seed=29)
    spec = GlobalPolicySpec(
        name="q",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual", queue_interval=1000.0)  # manual flushing
    instances = dep.start_wiera_instance("q", spec)
    return dep, instances


def make_update(instance, dep, key, payload):
    def put():
        version = yield from instance.local_put(key, payload)
        meta = instance.meta.get_record(key).versions[version]
        return {"key": key, "version": version,
                "last_modified": meta.last_modified,
                "origin": instance.instance_id, "data": payload}
    return dep.drive(put())


def poison_key(instance, key):
    """Make ``instance`` reject replica updates for ``key``."""
    orig = instance.node._handlers["replica_update"]

    def poisoned(msg):
        if msg.args["key"] == key:
            raise RuntimeError(f"poisoned entry {key!r}")
        result = yield from orig(msg)
        return result
    instance.node._handlers["replica_update"] = poisoned


class TestBatchRpc:
    def test_per_entry_results_in_order(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west = dep.instance("q", US_WEST)
        u1 = make_update(east, dep, "k", b"v1")
        u2 = make_update(east, dep, "k", b"v2")
        entries = [("replica_update", u1, len(u1["data"]) + 512),
                   ("no_such_method", {}, 16),
                   ("replica_update", u2, len(u2["data"]) + 512)]

        def go():
            results = yield east.node.call_batch(west.node, entries)
            return results
        results = dep.drive(go())
        assert [r["ok"] for r in results] == [True, False, True]
        assert "NoSuchMethodError" in results[1]["error"]
        # Entries applied in order: the newest version wins at the peer.
        assert west.meta.get_record("k").latest_version == u2["version"]

    def test_batch_is_one_message_pair(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west = dep.instance("q", US_WEST)
        entries = [("replica_update",
                    make_update(east, dep, f"k{i}", b"v"), 514)
                   for i in range(3)]
        before = dep.network.messages_sent

        def go():
            yield east.node.call_batch(west.node, entries)
        dep.drive(go())
        # One request + one reply, regardless of entry count.
        assert dep.network.messages_sent - before == 2

    def test_transport_failure_raises_whole_call(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west = dep.instance("q", US_WEST)
        u = make_update(east, dep, "k", b"v")
        west.host.down = True

        def go():
            yield east.node.call_batch(
                west.node, [("replica_update", u, 513)])
        with pytest.raises(HostDownError):
            dep.drive(go())


class TestBatchedQueue:
    def _queue(self, instance, **kwargs):
        kwargs.setdefault("interval", 1000.0)
        kwargs.setdefault("batch_bytes", 1.0)
        return ReplicationQueue(instance, **kwargs)

    def test_flush_ships_one_batch_per_peer(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = self._queue(east)
        for i in range(3):
            queue.enqueue(make_update(east, dep, f"k{i}", b"payload"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        assert queue.batches == 2           # one per peer
        assert queue.updates_sent == 6      # 3 entries x 2 peers
        for region in (US_WEST, EU_WEST):
            peer = dep.instance("q", region)
            for i in range(3):
                assert peer.meta.get_record(f"k{i}") is not None

    def test_poisoned_entry_requeues_alone(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        eu = dep.instance("q", EU_WEST)
        poison_key(eu, "bad")
        queue = self._queue(east)
        queue.enqueue(make_update(east, dep, "good", b"g"))
        queue.enqueue(make_update(east, dep, "bad", b"b"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        # The batch landed; only the rejected entry is requeued for EU.
        assert eu.meta.get_record("good") is not None
        assert eu.meta.get_record("bad") is None
        assert queue.backlog_size() == 1
        assert queue.send_failures == 1
        assert queue._outstanding == {(eu.instance_id, "bad")}
        # The healthy peer got both; nothing requeued for it.
        west = dep.instance("q", US_WEST)
        assert west.meta.get_record("bad") is not None

    def test_peer_crash_marks_every_entry_outstanding(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        eu = dep.instance("q", EU_WEST)
        eu.host.down = True
        queue = self._queue(east)
        for i in range(3):
            queue.enqueue(make_update(east, dep, f"k{i}", b"v"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        # Transport failure: nothing was acked, all entries outstanding.
        assert queue.backlog_size() == 3
        assert queue.outstanding_failures == 3
        assert queue._outstanding == {(eu.instance_id, f"k{i}")
                                      for i in range(3)}
        # ...and the healthy peer is unaffected.
        west = dep.instance("q", US_WEST)
        for i in range(3):
            assert west.meta.get_record(f"k{i}") is not None
        # Recovery: the backlog retries as one batch and converges.
        eu.host.down = False
        dep.sim.run(until=dep.sim.now + 10.0)
        dep.drive(flush())
        assert queue.backlog_size() == 0
        assert queue.outstanding_failures == 0
        assert queue.retries == 3
        for i in range(3):
            assert eu.meta.get_record(f"k{i}") is not None

    def test_size_trigger_flushes_early(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = self._queue(east, interval=1000.0, batch_bytes=256.0)
        queue.start()
        dep.sim.run(until=dep.sim.now + 0.01)   # let the loop arm the kick
        queue.enqueue(make_update(east, dep, "k", b"x" * 512))
        dep.sim.run(until=dep.sim.now + 5.0)    # far short of the interval
        queue.stop()
        assert queue.flushes >= 1
        assert dep.instance("q", US_WEST).meta.get_record("k") is not None

    def test_below_threshold_waits_for_timer(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = self._queue(east, interval=1000.0, batch_bytes=1e9)
        queue.start()
        dep.sim.run(until=dep.sim.now + 0.01)
        queue.enqueue(make_update(east, dep, "k", b"small"))
        dep.sim.run(until=dep.sim.now + 5.0)
        queue.stop()
        assert queue.flushes == 0
        assert len(queue.pending) == 1

    def test_reap_forgets_departed_peer_retry_state(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west_id = dep.instance("q", US_WEST).instance_id
        queue = self._queue(east)
        queue._attempts["ghost"] = 3
        queue._retry_at["ghost"] = 99.0
        queue._attempts[west_id] = 1
        queue._retry_at[west_id] = dep.sim.now + 60.0

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        # The departed peer's bookkeeping is gone; a live peer's remains.
        assert "ghost" not in queue._attempts
        assert "ghost" not in queue._retry_at
        assert queue._attempts[west_id] == 1


class TestBatchedBroadcast:
    def _world(self, batch_bytes):
        dep = build_deployment(REGIONS, seed=7)
        spec = GlobalPolicySpec(
            name="mp",
            placements=tuple(RegionPlacement(r, memory_only_policy())
                             for r in REGIONS),
            consistency="multi_primaries", batch_bytes=batch_bytes)
        instances = dep.start_wiera_instance("mp", spec)
        return dep, instances

    def test_sync_broadcast_converges_all_replicas(self):
        dep, instances = self._world(batch_bytes=1.0)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"strong")
        dep.drive(app())
        for region in REGIONS:
            record = dep.instance("mp", region).meta.get_record("k")
            assert record is not None and record.latest_version >= 1

    def test_sync_broadcast_raises_on_rejected_entry(self):
        dep, _ = self._world(batch_bytes=1.0)
        east = dep.instance("mp", US_EAST)
        poison_key(dep.instance("mp", EU_WEST), "k")
        u = {"key": "k", "version": 1, "last_modified": 0.0,
             "origin": east.instance_id, "data": b"v"}

        def go():
            yield from east.protocol.broadcast_sync(
                east, "replica_update", u, size=513)
        with pytest.raises(ProtocolError):
            dep.drive(go())


class TestBatchedMigration:
    def test_migrate_keys_ships_size_bounded_batches(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west = dep.instance("q", US_WEST)
        for i in range(5):
            make_update(east, dep, f"k{i}", b"x" * 100)
        before = dep.network.messages_sent

        def go():
            result = yield east.node.call(
                east.node, "ctl_migrate_keys",
                {"keys": [f"k{i}" for i in range(5)],
                 "dest": (west.node,),
                 # two entries (~612 B each) per batch -> 3 batches
                 "batch_bytes": 1300.0})
            return result
        result = dep.drive(go())
        assert sorted(result["moved"]) == [f"k{i}" for i in range(5)]
        assert result["failed"] == []
        for i in range(5):
            assert west.meta.get_record(f"k{i}") is not None
        # loopback ctl call (free) + 3 batch request/reply pairs
        assert dep.network.messages_sent - before <= 8

    def test_migrate_batch_transport_failure_fails_those_keys(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        west = dep.instance("q", US_WEST)
        for i in range(3):
            make_update(east, dep, f"k{i}", b"x")
        west.host.down = True

        def go():
            result = yield east.node.call(
                east.node, "ctl_migrate_keys",
                {"keys": [f"k{i}" for i in range(3)],
                 "dest": (west.node,), "batch_bytes": 1e6})
            return result
        result = dep.drive(go())
        assert result["moved"] == []
        assert sorted(result["failed"]) == [f"k{i}" for i in range(3)]

    def test_rebalance_bulk_copy_uses_batches_and_loses_nothing(self):
        from repro.shard.rebalance import Rebalancer
        from repro.tiera.policy import write_back_policy
        dep = build_deployment((US_EAST, US_WEST), seed=7, shards=3)
        spec = GlobalPolicySpec(
            name="sh",
            placements=(RegionPlacement(US_EAST, write_back_policy()),
                        RegionPlacement(US_WEST, write_back_policy())),
            consistency="multi_primaries", batch_bytes=4096.0)
        handle = dep.start_sharded_instance("sh", spec)
        client = dep.add_client(US_WEST, sharded=handle)

        def load():
            for i in range(40):
                yield from client.put(f"user{i}", b"x" * 64)
        dep.drive(load())
        mgr = dep.wiera.shard_manager("sh")
        rebalancer = Rebalancer(mgr)
        result = dep.drive(rebalancer.add_shard(), name="rebalance")
        assert result["shard"] == "sh-s3"
        assert rebalancer.moved_keys

        def verify():
            for i in range(40):
                got = yield from client.get(f"user{i}")
                assert got["data"]
        dep.drive(verify())


class TestBatchingOffIsSeedPath:
    """``batch_bytes=0`` must take exactly the unbatched code paths.

    The heavyweight pin is the kernel golden fixture (sharded YCSB-A under
    faults, ``test_kernel_golden.py``), which fails on any default-path
    behavior change.  Here we additionally pin that an explicit 0 equals
    the default, and that the batched plane itself is deterministic.
    """

    def _run(self, batch_bytes):
        dep = build_deployment((US_EAST, US_WEST), seed=33)
        spec = GlobalPolicySpec(
            name="det",
            placements=tuple(RegionPlacement(r, memory_only_policy())
                             for r in (US_EAST, US_WEST)),
            consistency="eventual", queue_interval=0.5,
            batch_bytes=batch_bytes)
        instances = dep.start_wiera_instance("det", spec)
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            out = []
            for i in range(6):
                result = yield from client.put(f"k{i % 3}", b"v" * 64)
                out.append(result["latency"])
            return out
        latencies = dep.drive(app())
        dep.sim.run(until=dep.sim.now + 5.0)  # let the queues flush
        digest = {
            (region, record.key): record.latest_version
            for region in (US_EAST, US_WEST)
            for record in dep.instance("det", region).meta.records()}
        return latencies, digest, dep.sim.now, dep.sim.events_processed

    def test_explicit_zero_is_bit_identical_to_default(self):
        assert self._run(batch_bytes=0.0) == self._run(batch_bytes=0)

    def test_batched_plane_is_deterministic(self):
        assert self._run(batch_bytes=1.0) == self._run(batch_bytes=1.0)

    def test_batched_and_unbatched_converge_to_same_store(self):
        _, off_digest, _, _ = self._run(batch_bytes=0.0)
        _, on_digest, _, _ = self._run(batch_bytes=1.0)
        assert on_digest == off_digest


class TestChunkedTransfers:
    def test_iter_chunks(self):
        assert list(iter_chunks(10, 4)) == [4, 4, 2]
        assert list(iter_chunks(10, 0)) == [10]
        assert list(iter_chunks(3, 4)) == [3]
        assert list(iter_chunks(8, 4)) == [4, 4]

    def test_large_transfer_chunks_and_counts(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1,
                               chunk_bytes=400.0)
        net = dep.network
        src = net.host(f"tsrv-host-{US_EAST}-aws")
        dst = net.host(f"tsrv-host-{US_WEST}-aws")
        before = net.messages_sent

        def go():
            yield from net.transmit(src, dst, 1000)
        dep.drive(go())
        assert dep.metric_total("net.chunks") == 3   # 400 + 400 + 200
        assert net.messages_sent - before == 1       # still one message

    def test_small_transfer_is_not_chunked(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1,
                               chunk_bytes=400.0)
        net = dep.network
        src = net.host(f"tsrv-host-{US_EAST}-aws")
        dst = net.host(f"tsrv-host-{US_WEST}-aws")

        def go():
            yield from net.transmit(src, dst, 300)
        dep.drive(go())
        assert dep.metric_total("net.chunks") == 0

    def test_partition_mid_transfer_aborts_between_chunks(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1,
                               chunk_bytes=1_000_000.0)
        net = dep.network
        src = net.host(f"tsrv-host-{US_EAST}-aws")
        dst = net.host(f"tsrv-host-{US_WEST}-aws")

        # t2.micro egress is ~31 MB/s: a 10 MB transfer takes ~0.32 s in
        # ~0.032 s chunks, so a partition at 0.05 s lands mid-transfer.
        def go():
            def cut():
                yield dep.sim.timeout(0.05)
                net.partition(US_EAST, US_WEST)
            dep.sim.process(cut(), name="cut")
            yield from net.transmit(src, dst, 10_000_000)
        with pytest.raises(NetworkError):
            dep.drive(go())

    def test_foreground_traffic_interleaves_between_chunks(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1,
                               chunk_bytes=1_000_000.0)
        net = dep.network
        src = net.host(f"tsrv-host-{US_EAST}-aws")
        dst = net.host(f"tsrv-host-{US_WEST}-aws")
        done = {}

        def big():
            yield from net.transmit(src, dst, 10_000_000)
            done["big"] = dep.sim.now

        def small():
            yield dep.sim.timeout(0.001)   # join the egress queue second
            yield from net.transmit(src, dst, 1000)
            done["small"] = dep.sim.now
        dep.sim.process(big(), name="big")
        dep.sim.process(small(), name="small")
        dep.sim.run(until=dep.sim.now + 5.0)
        # Without chunking the small transfer would wait out the whole
        # 10 MB reservation; with it, it slips between chunks.
        assert done["small"] < done["big"]


class TestNetworkDynamicsPruning:
    def test_expired_host_injection_is_pruned(self):
        dep = build_deployment((US_EAST,), seed=1)
        net = dep.network
        name = f"tsrv-host-{US_EAST}-aws"
        host = net.host(name)
        net.inject_host_delay(name, 0.1, duration=5.0)
        assert net.injected_extra(host, host) > 0
        dep.sim.run(until=dep.sim.now + 6.0)
        assert net.injected_extra(host, host) == 0.0
        assert name not in net._host_injections

    def test_expired_pair_injection_is_pruned(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1)
        net = dep.network
        src = net.host(f"tsrv-host-{US_EAST}-aws")
        dst = net.host(f"tsrv-host-{US_WEST}-aws")
        net.inject_pair_delay(US_EAST, US_WEST, 0.2, duration=5.0)
        assert net.injected_extra(src, dst) == pytest.approx(0.2)
        dep.sim.run(until=dep.sim.now + 6.0)
        assert net.injected_extra(src, dst) == 0.0
        assert frozenset((US_EAST, US_WEST)) not in net._pair_injections

    def test_elapsed_partition_is_reaped(self):
        dep = build_deployment((US_EAST, US_WEST), seed=1)
        net = dep.network
        net.partition(US_EAST, US_WEST, duration=2.0)
        assert net.is_partitioned(US_EAST, US_WEST)
        dep.sim.run(until=dep.sim.now + 3.0)
        assert not net.is_partitioned(US_EAST, US_WEST)
        assert frozenset((US_EAST, US_WEST)) not in net._partitions
