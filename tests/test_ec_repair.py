"""Parallel EC repair pipeline: golden pin, equivalence, races.

The repair plane has two strategies behind one ``repair_round``:

* ``repair_concurrency=1`` — the seed's strictly serial walk, pinned
  bit-for-bit by ``tests/golden/ec_repair_serial.json`` (recorded from
  the pre-pipeline repairer).
* ``repair_concurrency>1`` — batched probing/checking, an AnyOf-driven
  repair window, holder-local ``reconstruct_fragment``, and batched
  ``manifest_remap`` deltas.

Both must converge to the same store state; the pipeline must do it in
less simulated time with less egress; and neither may resurrect a stale
version when a write races the repair.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import build_deployment
from repro.core.global_policy import (GlobalPolicySpec, RedundancySpec,
                                      RegionPlacement)
from repro.ec.protocol import decode_manifest, fragment_key
from repro.net.topology import US_EAST
from repro.tiera.policy import memory_only_policy
from tests.ec_repair_golden import (GOLDEN_PATH, OBJECTS, PINNED_METRICS,
                                    PROVIDERS, REGIONS, SITES, VALUE_SIZE,
                                    golden_run)


# -- golden pin -------------------------------------------------------------

def test_serial_path_matches_seed_fingerprint():
    """``repair_concurrency=1`` replays the seed repairer event-for-event."""
    want = json.loads(GOLDEN_PATH.read_text())
    got = golden_run(repair_concurrency=1)
    # Piecewise first so a mismatch names the drifting observable.
    assert got["final_clock"] == want["final_clock"]
    assert got["events_processed"] == want["events_processed"]
    assert got["rebuilt_after_round1"] == want["rebuilt_after_round1"]
    for name in PINNED_METRICS:
        assert got["metric_totals"][name] == want["metric_totals"][name], name
    assert got["store_digest"] == want["store_digest"]
    assert got == want


def test_fixture_is_nontrivial():
    want = json.loads(GOLDEN_PATH.read_text())
    assert want["rebuilt_after_round1"] == OBJECTS
    assert want["events_processed"] > 1000
    assert want["metric_totals"]["net.messages"] > 100
    assert want["metric_totals"]["ec.fragments_rebuilt"] == OBJECTS


# -- shared scenario --------------------------------------------------------

def _scenario(repair_concurrency: int, crash_slots=(1,), objects=OBJECTS):
    """The golden topology with ``crash_slots`` fragment holders downed
    (left down), one driven repair round, and full state returned."""
    dep = build_deployment(list(REGIONS), providers=PROVIDERS, seed=17)
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(
            RegionPlacement(region, memory_only_policy(), provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        redundancy=RedundancySpec(k=2, m=2, repair_interval=1000.0,
                                  repair_concurrency=repair_concurrency))
    instances = dep.start_wiera_instance("ec", spec)
    tim = dep.tim("ec")
    client = dep.add_client(US_EAST, instances=instances)
    payloads = {f"obj{i}": bytes([i + 1]) * VALUE_SIZE
                for i in range(objects)}

    def write_phase():
        for key, value in payloads.items():
            yield from client.put(key, value)
    dep.drive(write_phase())

    coordinator = dep.instance("ec", US_EAST)
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("obj0", run_rules=False))[0])
    faults = dep.fault_schedule("scenario")
    holders = set(manifest["frags"].values())
    victims = set()
    for slot in crash_slots:
        if slot == "spares":  # every instance not holding a fragment
            victims.update(iid for iid in tim.instances
                           if iid not in holders)
        else:
            victims.add(manifest["frags"][slot])
    for iid in sorted(victims):
        faults.crash(at=dep.sim.now + 0.25,
                     host=tim.instances[iid].instance.host.name,
                     duration=5000.0)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.5)

    leader_id = manifest["frags"][0]
    leader = tim.instances[leader_id].instance
    repairer = leader.protocol.repairer(leader_id)

    before = {"bytes": dep.metric_total("net.bytes"),
              "msgs": dep.metric_total("net.messages"),
              "clock": dep.sim.now}
    dep.drive(repairer.repair_round(), name="repair-round")
    repair = {"bytes": dep.metric_total("net.bytes") - before["bytes"],
              "msgs": dep.metric_total("net.messages") - before["msgs"],
              "seconds": dep.sim.now - before["clock"]}
    return dep, tim, client, repairer, payloads, manifest, repair


def _counters(dep) -> dict:
    return {name: dep.metric_total(f"ec.repair_{name}")
            for name in ("unrepairable", "push_failed", "errors",
                         "superseded")}


# -- pipelined equivalence --------------------------------------------------

def test_pipelined_converges_to_serial_state():
    """Same crash, same objects: the pipeline must rebuild the same
    fragments and land the stores in the same (timing-free) state,
    strictly faster and with less egress than the serial walk."""
    dep_s, _, client_s, rep_s, payloads, _, repair_s = _scenario(1)
    dep_p, _, client_p, rep_p, _, _, repair_p = _scenario(8)

    assert rep_s.fragments_rebuilt == OBJECTS
    assert rep_p.fragments_rebuilt == OBJECTS
    # Identical placement outcome: the timing-free store digest (keys,
    # versions, payload bytes per instance) matches across strategies.
    assert dep_s.store_digest(detail=False) == dep_p.store_digest(detail=False)

    # Every object reads back cleanly on both deployments.
    for dep, client in ((dep_s, client_s), (dep_p, client_p)):
        def read_all(client=client):
            for key, value in payloads.items():
                res = yield from client.get(key)
                assert res["data"] == value, key
        dep.drive(read_all())

    # The pipeline is the whole point: faster and cheaper.
    assert repair_p["seconds"] < repair_s["seconds"]
    assert repair_p["bytes"] < repair_s["bytes"]

    # A second round on the pipeline is a no-op (nothing left to fix).
    dep_p.drive(rep_p.repair_round(), name="verify-round")
    assert rep_p.fragments_rebuilt == OBJECTS


def test_pipelined_uses_holder_local_reconstruction_and_remap_deltas():
    """The repaired spare rebuilds fragments itself (bytes pulled by the
    target, not pushed by the leader) and every live peer's manifest
    copy learns the new holder via the remap delta."""
    dep, tim, _, repairer, _, manifest, _ = _scenario(8)
    crashed = manifest["frags"][1]
    for key in (f"obj{i}" for i in range(OBJECTS)):
        new_holders = set()
        for iid, rec in tim.instances.items():
            inst = rec.instance
            if inst.host.down:
                continue
            record = inst.meta.get_record(key)
            assert record is not None, (key, iid)
            raw = dep.drive(inst.read_version(key, run_rules=False))[0]
            doc = decode_manifest(raw)
            assert doc is not None, (key, iid)
            assert doc["frags"][1] != crashed, (
                f"{iid} still maps slot 1 of {key} to the crashed holder")
            new_holders.add(doc["frags"][1])
        # All live peers agree on the (single) new holder.
        assert len(new_holders) == 1, (key, new_holders)
        new_holder = new_holders.pop()
        # ...and that holder actually has readable rebuilt bytes.
        target = tim.instances[new_holder].instance
        frag = dep.drive(target.read_version(
            fragment_key(key, 1), run_rules=False))[0]
        assert len(frag) == VALUE_SIZE // 2
    # Holder-local reconstruction moved bytes INTO the target: the
    # leader's bytes-moved counter saw the target's pulls reported back.
    assert dep.metric_total("ec.repair_bytes_moved") > 0


# -- attributable failure counters (satellite) ------------------------------

@pytest.mark.parametrize("concurrency", [1, 8])
def test_unrepairable_counted_distinctly(concurrency):
    """Losing m+1 fragments is unrepairable: counted as such, not as a
    generic skip, and nothing is rebuilt."""
    dep, _, _, repairer, _, _, _ = _scenario(
        concurrency, crash_slots=(1, 2, 3))
    counters = _counters(dep)
    assert counters["unrepairable"] == OBJECTS
    assert counters["push_failed"] == 0
    assert counters["errors"] == 0
    assert repairer.fragments_rebuilt == 0
    assert dep.metric_total("ec.fragments_rebuilt") == 0


@pytest.mark.parametrize("concurrency", [1, 8])
def test_push_failed_counted_distinctly(concurrency):
    """A lost fragment with no live re-home target is a push failure,
    distinct from unrepairable (the data itself is recoverable)."""
    dep, _, _, repairer, _, manifest, _ = _scenario(
        concurrency, crash_slots=(1, "spares"))
    counters = _counters(dep)
    assert counters["push_failed"] == OBJECTS
    assert counters["unrepairable"] == 0
    assert counters["errors"] == 0
    assert repairer.fragments_rebuilt == 0


# -- repair racing a concurrent write (satellite) ---------------------------

@pytest.mark.parametrize("concurrency", [1, 8])
def test_version_bump_mid_repair_is_not_resurrected(concurrency):
    """A write racing the repair round must win: the acked new version
    survives, and the repairer abandons the stale version instead of
    reinstalling its fragments."""
    dep = build_deployment(list(REGIONS), providers=PROVIDERS, seed=17)
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(
            RegionPlacement(region, memory_only_policy(), provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        redundancy=RedundancySpec(k=2, m=2, repair_interval=1000.0,
                                  repair_concurrency=concurrency))
    instances = dep.start_wiera_instance("ec", spec)
    tim = dep.tim("ec")
    client = dep.add_client(US_EAST, instances=instances)
    payloads = {f"obj{i}": bytes([i + 1]) * VALUE_SIZE
                for i in range(OBJECTS)}

    def write_phase():
        for key, value in payloads.items():
            yield from client.put(key, value)
    dep.drive(write_phase())

    coordinator = dep.instance("ec", US_EAST)
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("obj0", run_rules=False))[0])
    victim = tim.instances[manifest["frags"][1]].instance.host
    faults = dep.fault_schedule("race")
    faults.crash(at=dep.sim.now + 0.25, host=victim.name, duration=5000.0)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.5)

    leader_id = manifest["frags"][0]
    leader = tim.instances[leader_id].instance
    repairer = leader.protocol.repairer(leader_id)

    # Fire the overwrite at the exact moment the repairer starts on the
    # raced object — the tightest possible interleaving, deterministic
    # under both strategies.
    raced_key = f"obj{OBJECTS - 1}"
    new_value = b"\xEE" * VALUE_SIZE
    put_done: dict = {}

    def racing_put():
        res = yield from client.put(raced_key, new_value)
        put_done["version"] = res["version"]
        put_done["at"] = dep.sim.now

    method = ("_repair_object" if concurrency == 1
              else "_repair_object_pipelined")
    original = getattr(repairer, method)

    def hooked(key, *args, **kwargs):
        if key == raced_key and "proc" not in put_done:
            put_done["proc"] = dep.sim.process(racing_put(),
                                               name="racing-put")
        result = yield from original(key, *args, **kwargs)
        return result
    setattr(repairer, method, hooked)

    round_proc = dep.sim.process(repairer.repair_round(), name="race-round")
    while round_proc.is_alive or ("proc" in put_done
                                  and put_done["proc"].is_alive):
        dep.sim.run(until=dep.sim.now + 0.5)
    assert put_done.get("version") == 2, "racing write was never acked"
    t_put_done = put_done["at"]

    # The acked write survives end-to-end.
    res = dep.drive(client.get(raced_key))
    assert res["data"] == new_value
    assert res["version"] == 2

    # The repairer noticed the bump and walked away from v1.
    assert dep.metric_total("ec.repair_superseded") > 0

    # No stale reinstall: nowhere did a v1 fragment of the raced key get
    # (re)installed after the new version was acknowledged.
    for iid, rec in tim.instances.items():
        inst = rec.instance
        for idx in range(4):
            frecord = inst.meta.get_record(fragment_key(raced_key, idx))
            if frecord is None or not frecord.has_version(1):
                continue
            meta = frecord.versions[1]
            assert meta.last_modified <= t_put_done, (
                f"{iid} resurrected {raced_key}#ecf{idx} v1 at "
                f"{meta.last_modified} (write acked at {t_put_done})")
        # The manifest's latest version is the new write everywhere the
        # record exists on a live host.
        if not inst.host.down:
            record = inst.meta.get_record(raced_key)
            if record is not None:
                assert record.latest_version == 2, iid
