"""Tests for the Table 4 cost model and runtime ledger."""

import pytest

from repro import (GlobalPolicySpec, RegionPlacement, build_deployment)
from repro.net import US_EAST, US_WEST
from repro.sim import Simulator
from repro.storage import CostLedger, make_tier, monthly_storage_cost
from repro.tiera.policy import memory_only_policy
from repro.storage.cost import (
    HOURS_PER_MONTH,
    migration_savings,
    network_cost,
    price_for,
    request_cost,
)
from repro.util.units import GB, HOUR


@pytest.fixture
def sim():
    return Simulator()


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


COLD_8TB = 8000 * GB  # the paper's arithmetic uses decimal terabytes


class TestStaticArithmetic:
    def test_paper_sec53_ssd_saving(self):
        """8 TB from EBS SSD to S3-IA saves $700/month (the paper's number)."""
        assert migration_savings(COLD_8TB, "ebs_ssd", "s3_ia") == pytest.approx(
            8000 * (0.10 - 0.0125))
        assert migration_savings(COLD_8TB, "ebs_ssd", "s3_ia") == pytest.approx(
            700.0, abs=1.0)

    def test_paper_sec53_hdd_saving(self):
        assert migration_savings(COLD_8TB, "ebs_hdd", "s3_ia") == pytest.approx(
            300.0, abs=1.0)

    def test_centralization_saving(self):
        """Dropping 3 of 4 cold replicas saves ~$100/region (paper §5.3)."""
        per_region = monthly_storage_cost("s3_ia", COLD_8TB)
        assert per_region == pytest.approx(100.0, abs=0.5)

    def test_request_cost(self):
        assert request_cost("s3_ia", puts=20_000) == pytest.approx(0.2)
        assert request_cost("ebs_ssd", puts=10**6, gets=10**6) == 0.0

    def test_network_cost_scopes(self):
        assert network_cost(10 * GB, "intra_dc") == 0.0
        assert network_cost(10 * GB, "inter_region") == pytest.approx(0.2)
        assert network_cost(10 * GB, "internet") == pytest.approx(0.9)
        with pytest.raises(KeyError):
            network_cost(1, "interplanetary")

    def test_unknown_tier(self):
        with pytest.raises(KeyError):
            price_for("tape")


class TestLedger:
    def test_storage_integration(self, sim):
        ledger = CostLedger(sim)
        tier = make_tier(sim, "ebs_ssd", 10 * GB, ledger=ledger,
                         region="us-east")
        tier.preload("k", b"x" * GB)
        sim.run(until=HOURS_PER_MONTH * HOUR)  # one billing month
        ledger.finalize([tier])
        # 1 GB on SSD for one month = $0.10
        assert ledger.storage_dollars() == pytest.approx(0.10, rel=0.01)

    def test_requests_billed(self, sim):
        ledger = CostLedger(sim)
        tier = make_tier(sim, "s3", None, ledger=ledger)
        for i in range(100):
            run(sim, tier.write(f"k{i}", b"x"))
        for i in range(100):
            run(sim, tier.read(f"k{i}"))
        expected = 0.05 * 100 / 10_000 + 0.004 * 100 / 10_000
        assert ledger.request_dollars() == pytest.approx(expected)

    def test_network_accounting(self, sim):
        ledger = CostLedger(sim)
        ledger.record_network(5 * GB, "inter_region")
        ledger.record_network(1 * GB, "internet")
        assert ledger.network_dollars() == pytest.approx(0.02 * 5 + 0.09)

    def test_breakdown_totals(self, sim):
        ledger = CostLedger(sim)
        ledger.record_network(1 * GB, "internet")
        breakdown = ledger.breakdown()
        assert breakdown["total"] == pytest.approx(
            breakdown["storage"] + breakdown["requests"]
            + breakdown["network"])

    def test_network_egress_billed_by_deployment(self):
        """Replication fan-out across regions shows up as inter-region
        egress dollars on the deployment ledger."""
        dep = build_deployment([US_EAST, US_WEST], with_ledger=True, seed=5)
        spec = GlobalPolicySpec(
            name="bill",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),
                        RegionPlacement(US_WEST, memory_only_policy())),
            consistency="eventual")
        instances = dep.start_wiera_instance("bill", spec)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            for i in range(4):
                yield from client.put(f"k{i}", b"x" * 65536)
        dep.drive(app())
        dep.sim.run(until=dep.sim.now + 5)
        assert dep.ledger.network_dollars() > 0

    def test_chunked_egress_parity(self):
        """Satellite: WAN chunking is a scheduling knob, not a billing one
        — egress dollars must be identical with chunking on or off."""
        def egress(chunk_bytes):
            dep = build_deployment([US_EAST, US_WEST], with_ledger=True,
                                   seed=5, chunk_bytes=chunk_bytes)
            spec = GlobalPolicySpec(
                name="bill",
                placements=(RegionPlacement(US_EAST, memory_only_policy()),
                            RegionPlacement(US_WEST, memory_only_policy())),
                consistency="eventual")
            instances = dep.start_wiera_instance("bill", spec)
            client = dep.add_client(US_EAST, instances=instances)

            def app():
                for i in range(4):
                    yield from client.put(f"k{i}", b"x" * 65536)
                    yield from client.get(f"k{i}")
            dep.drive(app())
            dep.sim.run(until=dep.sim.now + 5)
            return dep.ledger.network_dollars()

        unchunked = egress(0.0)
        chunked = egress(8192)
        assert unchunked > 0
        assert chunked == pytest.approx(unchunked)

    def test_migration_lowers_bill(self, sim):
        """Moving bytes SSD -> S3-IA mid-period reduces the ongoing rate."""
        ledger = CostLedger(sim)
        ssd = make_tier(sim, "ebs_ssd", 10 * GB, ledger=ledger)
        ia = make_tier(sim, "s3_ia", None, ledger=ledger)
        ssd.preload("k", b"x" * GB)
        sim.run(until=100 * HOUR)
        ledger.record_usage(ssd)
        first_period = ledger.storage_dollars()

        def migrate():
            data = yield from ssd.read("k")
            yield from ia.write("k", data)
            yield from ssd.delete("k")
        run(sim, migrate())
        sim.run(until=200 * HOUR)
        ledger.finalize([ssd, ia])
        second_period = ledger.storage_dollars() - first_period
        assert second_period < first_period * 0.2
