"""Unit tests + property tests for quantity parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    MS,
    TB,
    UnitParseError,
    format_duration,
    format_size,
    parse_bandwidth,
    parse_duration,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("5G", 5 * GB),
        ("5GB", 5 * GB),
        ("4 KB", 4 * KB),
        ("10M", 10 * MB),
        ("2T", 2 * TB),
        ("128", 128),
        ("1.5K", int(1.5 * KB)),
        (4096, 4096),
    ])
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["5X", "G5", "", "5 G B"])
    def test_invalid(self, text):
        with pytest.raises(UnitParseError):
            parse_size(text)


class TestParseDuration:
    @pytest.mark.parametrize("text,expected", [
        ("800 ms", 0.8),
        ("800ms", 0.8),
        ("30 seconds", 30.0),
        ("120 hours", 120 * HOUR),
        ("7.5 minutes", 7.5 * MINUTE),
        ("2 d", 2 * 24 * HOUR),
        ("15", 15.0),
        (0.25, 0.25),
    ])
    def test_valid(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_invalid_suffix(self):
        with pytest.raises(UnitParseError):
            parse_duration("5 parsecs")


class TestParseBandwidth:
    @pytest.mark.parametrize("text,expected", [
        ("40KB/s", 40 * KB),
        ("100KB/s", 100 * KB),
        ("1MB/s", 1 * MB),
        ("500Mbps", 500 * MB / 8),
        (1000, 1000.0),
    ])
    def test_valid(self, text, expected):
        assert parse_bandwidth(text) == pytest.approx(expected)

    def test_per_minute_rejected(self):
        with pytest.raises(UnitParseError):
            parse_bandwidth("40KB/min")


class TestFormatting:
    def test_format_size(self):
        assert format_size(512) == "512B"
        assert format_size(4 * KB) == "4.0KB"
        assert format_size(3 * GB) == "3.0GB"

    def test_format_duration(self):
        assert format_duration(0.0015) == "1.5ms"
        assert format_duration(42.0) == "42.0s"
        assert format_duration(90 * MINUTE) == "1.5h"


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**15))
    def test_size_identity_on_ints(self, n):
        assert parse_size(n) == n

    @given(st.floats(min_value=0.001, max_value=10**6,
                     allow_nan=False, allow_infinity=False))
    def test_duration_bare_number_is_seconds(self, x):
        assert parse_duration(str(x)) == pytest.approx(x)

    @given(st.integers(min_value=1, max_value=1000),
           st.sampled_from(["KB", "MB", "GB"]))
    def test_size_monotone_in_unit(self, n, unit):
        order = ["KB", "MB", "GB"]
        idx = order.index(unit)
        if idx + 1 < len(order):
            assert parse_size(f"{n}{unit}") < parse_size(f"{n}{order[idx+1]}")

    @given(st.integers(min_value=1, max_value=10**6))
    def test_ms_is_thousandth(self, n):
        assert parse_duration(f"{n} ms") == pytest.approx(n * MS)
