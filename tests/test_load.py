"""Tests for repro.load: arrival models, cohorts, engine, scenarios."""

import numpy as np
import pytest

from repro.load import (
    CohortSpec,
    LoadEngine,
    MmppProcess,
    PoissonProcess,
    ShiftingHotspot,
    TraceReplay,
    constant_rate,
    diurnal_rate,
    flash_crowd_rate,
    modeled_users_rate,
    poisson_trace,
    ramp_rate,
)
from repro.load.cohort import ClientCohort
from repro.load.scenarios import (
    SCENARIOS,
    diurnal,
    failover_storm,
    flash_crowd,
    hotspot_shift,
)
from repro.sim.kernel import Simulator
from repro.util.rng import (
    RngRegistry,
    exponential_interarrival,
    interarrival_times,
)
from repro.workloads.clients import GeoClientPopulation
from repro.workloads.ycsb import YcsbWorkload


# -- util/rng satellite ------------------------------------------------------

class TestRngHelpers:
    def test_substream_determinism(self):
        a = RngRegistry(7).substream("load.cohort", 3)
        b = RngRegistry(7).substream("load.cohort", 3)
        assert a.random() == b.random()

    def test_substream_independence(self):
        reg = RngRegistry(7)
        a = reg.substream("load.cohort", 0)
        b = reg.substream("load.cohort", 1)
        assert [a.random() for _ in range(4)] != [b.random()
                                                  for _ in range(4)]

    def test_substream_no_crosstalk(self):
        """Draining one substream never perturbs a sibling."""
        solo = RngRegistry(9).substream("s", "x")
        expected = [solo.random() for _ in range(8)]
        reg = RngRegistry(9)
        noisy = reg.substream("s", "y")
        target = reg.substream("s", "x")
        for _ in range(1000):
            noisy.random()
        assert [target.random() for _ in range(8)] == expected

    def test_substream_is_cached(self):
        reg = RngRegistry(1)
        assert reg.substream("s", 5) is reg.substream("s", 5)

    def test_exponential_interarrival_mean(self):
        rng = np.random.default_rng(0)
        gaps = [exponential_interarrival(rng, 4.0) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)

    def test_exponential_interarrival_rejects_bad_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            exponential_interarrival(rng, 0.0)
        with pytest.raises(ValueError):
            exponential_interarrival(rng, -1.0)

    def test_interarrival_times_within_horizon(self):
        rng = np.random.default_rng(2)
        offsets = list(interarrival_times(rng, 10.0, 50.0))
        assert offsets == sorted(offsets)
        assert all(0 < t < 50.0 for t in offsets)
        assert len(offsets) == pytest.approx(500, rel=0.2)


# -- rate shapes -------------------------------------------------------------

class TestRateShapes:
    def test_constant(self):
        fn, peak = constant_rate(42.0)
        assert fn(0.0) == fn(1e6) == 42.0 and peak == 42.0
        with pytest.raises(ValueError):
            constant_rate(-1.0)

    def test_ramp(self):
        fn, peak = ramp_rate(10.0, 110.0, t0=100.0, t1=200.0)
        assert fn(0.0) == 10.0
        assert fn(150.0) == pytest.approx(60.0)
        assert fn(1e9) == 110.0
        assert peak == 110.0
        with pytest.raises(ValueError):
            ramp_rate(0, 1, t0=5.0, t1=5.0)

    def test_flash_crowd_shape(self):
        fn, peak = flash_crowd_rate(100.0, 10.0, at=60.0,
                                    rise=10.0, hold=20.0, fall=10.0)
        assert peak == 1000.0
        assert fn(0.0) == 100.0          # before
        assert fn(65.0) == pytest.approx(550.0)   # mid-rise
        assert fn(75.0) == 1000.0        # held
        assert fn(95.0) == pytest.approx(550.0)   # mid-fall
        assert fn(200.0) == 100.0        # after
        with pytest.raises(ValueError):
            flash_crowd_rate(100.0, 0.5, at=0.0)

    def test_diurnal_follows_activity_curve(self):
        pop = GeoClientPopulation.staggered(
            ["asia", "us"], first_peak=100.0, stagger=200.0, sigma=30.0,
            max_clients=1000, min_clients=10)
        fn, peak = diurnal_rate(pop, "asia", rate_per_user=0.5)
        assert fn(100.0) == pytest.approx(500.0)
        assert fn(1e6) == pytest.approx(5.0)   # min_clients floor
        assert peak == 500.0

    def test_modeled_users_identity(self):
        fn, peak = modeled_users_rate(10_000, 0.25)
        assert fn(3.0) == peak == 2500.0
        with pytest.raises(ValueError):
            modeled_users_rate(0, 1.0)
        with pytest.raises(ValueError):
            modeled_users_rate(10, 0.0)


# -- arrival processes -------------------------------------------------------

def _drain(process, horizon: float) -> list[float]:
    """Collect arrival instants in [0, horizon)."""
    t, out = 0.0, []
    while True:
        dt, arrived = process.next_event(t)
        if dt is None:
            break
        t += dt
        if t >= horizon:
            break
        if arrived:
            out.append(t)
    return out


class TestPoissonProcess:
    def test_rate_accuracy(self):
        p = PoissonProcess()
        fn, peak = constant_rate(50.0)
        p.bind(np.random.default_rng(0), fn, peak)
        arrivals = _drain(p, 200.0)
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_deterministic_per_seed(self):
        fn, peak = constant_rate(20.0)
        a, b = PoissonProcess(), PoissonProcess()
        a.bind(np.random.default_rng(3), fn, peak)
        b.bind(np.random.default_rng(3), fn, peak)
        assert _drain(a, 50.0) == _drain(b, 50.0)

    def test_thinning_tracks_ramp(self):
        fn, peak = ramp_rate(0.0, 100.0, t0=0.0, t1=100.0)
        p = PoissonProcess()
        p.bind(np.random.default_rng(1), fn, peak)
        arrivals = np.array(_drain(p, 100.0))
        early = np.sum(arrivals < 50.0)     # integral: 1250 expected
        late = np.sum(arrivals >= 50.0)     # integral: 3750 expected
        assert late / max(early, 1) == pytest.approx(3.0, rel=0.25)

    def test_zero_rate_yields_no_arrival_but_advances(self):
        fn, _ = constant_rate(0.0)
        p = PoissonProcess()
        p.bind(np.random.default_rng(0), fn, 10.0)
        dt, arrived = p.next_event(0.0)
        assert dt > 0 and arrived is False

    def test_bind_rejects_nonpositive_peak(self):
        fn, _ = constant_rate(1.0)
        with pytest.raises(ValueError):
            PoissonProcess().bind(np.random.default_rng(0), fn, 0.0)


class TestMmppProcess:
    def test_mean_factor(self):
        m = MmppProcess(burst_factor=8.0, mean_normal=20.0, mean_burst=2.0)
        assert m.mean_factor() == pytest.approx((20 + 16) / 22)

    def test_burstier_than_poisson(self):
        """Index of dispersion of windowed counts: ~1 for Poisson,
        substantially more for the modulated process."""
        fn, peak = constant_rate(5.0)

        def dispersion(process, seed):
            process.bind(np.random.default_rng(seed), fn, peak)
            arrivals = _drain(process, 2000.0)
            counts = np.bincount(np.array(arrivals).astype(int),
                                 minlength=2000)
            return counts.var() / counts.mean()

        poisson = dispersion(PoissonProcess(), 4)
        bursty = dispersion(MmppProcess(burst_factor=8.0, mean_normal=10.0,
                                        mean_burst=5.0), 4)
        assert poisson < 1.5
        assert bursty > 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MmppProcess(burst_factor=0.5)
        with pytest.raises(ValueError):
            MmppProcess(mean_normal=0.0)


class TestTraceReplay:
    def test_replays_exact_offsets(self):
        trace = TraceReplay([0.5, 1.0, 1.0, 4.0])
        trace.bind(np.random.default_rng(0), lambda t: 0.0, 0.0, start=10.0)
        assert _drain(trace, 100.0) == [10.5, 11.0, 11.0, 14.0]

    def test_exhaustion_and_loop(self):
        t1 = TraceReplay([1.0, 2.0])
        t1.bind(None, None, 0.0)
        assert len(_drain(t1, 100.0)) == 2
        assert t1.next_event(100.0) == (None, False)
        t2 = TraceReplay([1.0, 2.0], loop=True)
        t2.bind(None, None, 0.0)
        assert _drain(t2, 9.0) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplay([2.0, 1.0])
        with pytest.raises(ValueError):
            TraceReplay([], loop=True)
        with pytest.raises(ValueError):
            TraceReplay([0.0], loop=True)

    def test_poisson_trace_roundtrip(self):
        rng = np.random.default_rng(6)
        offsets = poisson_trace(rng, 20.0, 50.0)
        assert offsets == sorted(offsets)
        assert len(offsets) == pytest.approx(1000, rel=0.15)
        trace = TraceReplay(offsets)
        trace.bind(None, None, 0.0)
        assert _drain(trace, 50.0) == offsets


# -- cohorts against a fake store --------------------------------------------

class FakeStore:
    """Minimal WieraClient stand-in: fixed service time, optional errors."""

    def __init__(self, sim, service_time=0.001, fail_every=0):
        self.sim = sim
        self.service_time = service_time
        self.fail_every = fail_every
        self.calls = 0

    def _op(self):
        self.calls += 1
        if self.fail_every and self.calls % self.fail_every == 0:
            yield self.sim.timeout(self.service_time / 2)
            if self.calls % (2 * self.fail_every) == 0:
                raise TimeoutError("slow store")
            raise RuntimeError("lock lost")
        yield self.sim.timeout(self.service_time)
        return {"latency": self.service_time, "version": 1}

    def get(self, key):
        return (yield from self._op())

    def put(self, key, data):
        return (yield from self._op())


def make_cohort(sim, spec, seed=0, **store_kw) -> ClientCohort:
    store = FakeStore(sim, **store_kw)
    rng = RngRegistry(seed).substream("load.cohort", spec.name)
    return ClientCohort(sim, store, spec, rng)


WORKLOAD = YcsbWorkload.workload_b(record_count=50, value_size=64,
                                   distribution="uniform")


class TestClientCohort:
    def test_unsaturated_achieves_offered(self):
        sim = Simulator()
        cohort = make_cohort(sim, CohortSpec(
            name="c", region="r", users=10_000, rate_per_user=0.02,
            workload=WORKLOAD))
        cohort.start()
        sim.run(until=30.0)
        report = cohort.report()
        # offered tracks the configured 200/s within Poisson noise, and
        # an unsaturated store achieves what is offered
        assert report["offered_rate"] == pytest.approx(200.0, rel=0.05)
        assert report["shed"] == 0
        assert cohort.stats.achieved >= cohort.stats.offered - \
            cohort.spec.max_in_flight

    def test_saturation_sheds_and_queues(self):
        sim = Simulator()
        cohort = make_cohort(sim, CohortSpec(
            name="sat", region="r", users=1000, rate_per_user=0.1,
            workload=WORKLOAD, max_in_flight=4, queue_limit=10),
            service_time=0.5)
        cohort.start()
        sim.run(until=20.0)
        stats = cohort.stats
        # capacity is max_in_flight / service_time = 8 ops/s vs 100/s in
        assert stats.achieved == pytest.approx(8 * 20, rel=0.15)
        assert stats.shed > 0
        assert stats.peak_queue == 10
        assert stats.peak_in_flight == 4
        report = cohort.report()
        assert report["queue_delay"]["p95"] > 0.5

    def test_error_classification(self):
        sim = Simulator()
        cohort = make_cohort(sim, CohortSpec(
            name="err", region="r", users=100, rate_per_user=1.0,
            workload=WORKLOAD), fail_every=5)
        cohort.start()
        sim.run(until=10.0)
        by_type = cohort.stats.errors_by_type
        assert set(by_type) == {"TimeoutError", "RuntimeError"}
        assert sum(by_type.values()) == cohort.stats.errors
        assert cohort.stats.errors > 0

    def test_deterministic(self):
        def one_run():
            sim = Simulator()
            cohort = make_cohort(sim, CohortSpec(
                name="d", region="r", users=500, rate_per_user=0.1,
                workload=WORKLOAD), seed=5)
            cohort.start()
            sim.run(until=10.0)
            return (cohort.stats.offered, cohort.stats.achieved,
                    sim.events_processed, sim.now)

        assert one_run() == one_run()

    def test_stop_freezes_window(self):
        sim = Simulator()
        cohort = make_cohort(sim, CohortSpec(
            name="s", region="r", users=100, rate_per_user=1.0,
            workload=WORKLOAD))
        cohort.start()
        sim.run(until=5.0)
        cohort.stop()
        offered = cohort.stats.offered
        sim.run(until=10.0)
        assert cohort.stats.offered == offered     # no arrivals after stop
        assert cohort.elapsed() == pytest.approx(5.0)

    def test_stop_counts_discarded_queue_entries(self):
        """Regression: queued arrivals thrown away by stop() used to
        vanish from the ledger, so offered != dispatched + shed at
        scenario end."""
        sim = Simulator()
        cohort = make_cohort(sim, CohortSpec(
            name="disc", region="r", users=1000, rate_per_user=0.1,
            workload=WORKLOAD, max_in_flight=2, queue_limit=50),
            service_time=5.0)   # slow store: the queue fills, nothing drains
        cohort.start()
        sim.run(until=4.0)
        queued = cohort.queued
        assert queued > 0, "setup failed to build a backlog"
        assert cohort.stats.reconciles(queued=queued)
        cohort.stop()
        stats = cohort.stats
        assert stats.discarded == queued
        assert cohort.queued == 0
        # The invariant closes with no queue remaining.
        assert stats.offered == stats.dispatched + stats.shed + \
            stats.discarded
        report = cohort.report()
        assert report["discarded"] == stats.discarded

    def test_reconciliation_invariant_all_regimes(self):
        """offered == dispatched + shed + discarded (+ queued mid-run)
        holds whether the store is fast, saturated, or failing."""
        for kw in ({}, {"service_time": 0.5}, {"fail_every": 3}):
            sim = Simulator()
            cohort = make_cohort(sim, CohortSpec(
                name="inv", region="r", users=1000, rate_per_user=0.1,
                workload=WORKLOAD, max_in_flight=4, queue_limit=10), **kw)
            cohort.start()
            sim.run(until=15.0)
            assert cohort.stats.reconciles(queued=cohort.queued), kw
            cohort.stop()
            sim.run(until=30.0)   # drain in-flight stragglers
            assert cohort.stats.reconciles(), kw

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CohortSpec(name="x", region="r", max_in_flight=0)
        with pytest.raises(ValueError):
            CohortSpec(name="x", region="r", queue_limit=-1)
        spec = CohortSpec(name="x", region="r",
                          rate_fn=lambda t: 1.0)   # peak_rate missing
        with pytest.raises(ValueError):
            spec.shape()


class TestLoadEngine:
    def test_aggregates_across_cohorts(self):
        sim = Simulator()
        engine = LoadEngine(sim)
        for i in range(4):
            engine.add(make_cohort(sim, CohortSpec(
                name=f"c{i}", region="r", users=2500, rate_per_user=0.02,
                workload=WORKLOAD), seed=i))
        report = engine.run(20.0)
        assert report["cohorts"] == 4
        assert report["modeled_users"] == 10_000
        assert report["offered"] == sum(c.stats.offered
                                        for c in engine.cohorts)
        assert report["offered_rate"] == pytest.approx(200.0, rel=0.05)

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        engine = LoadEngine(sim)
        engine.add(make_cohort(sim, CohortSpec(name="a", region="r",
                                               workload=WORKLOAD)))
        with pytest.raises(ValueError):
            engine.add(make_cohort(sim, CohortSpec(name="a", region="r",
                                                   workload=WORKLOAD)))

    def test_lookup_and_len(self):
        sim = Simulator()
        engine = LoadEngine(sim)
        cohort = engine.add(make_cohort(sim, CohortSpec(
            name="a", region="r", workload=WORKLOAD)))
        assert engine["a"] is cohort and len(engine) == 1


# -- scenarios ---------------------------------------------------------------

class TestScenarios:
    def test_registry(self):
        assert set(SCENARIOS) == {"flash_crowd", "diurnal", "hotspot_shift",
                                  "failover_storm"}

    def test_flash_crowd_specs(self):
        sc = flash_crowd(["us", "eu"], users_per_region=1000,
                         rate_per_user=0.1, multiplier=5.0, at=30.0)
        assert sc.name == "flash_crowd" and len(sc.specs) == 2
        by_region = {s.region: s for s in sc.specs}
        # the crowd region's peak is multiplier x base; bystanders flat
        assert by_region["us"].peak_rate == pytest.approx(500.0)
        assert by_region["eu"].peak_rate == pytest.approx(100.0)
        assert by_region["eu"].rate_fn(1e6) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            flash_crowd(["us"], crowd_region="mars")

    def test_diurnal_specs_stagger(self):
        sc = diurnal(["asia", "eu", "us"], users_per_region=1000,
                     rate_per_user=0.1, first_peak=50.0, stagger=100.0,
                     sigma=20.0)
        assert len(sc.specs) == 3
        asia, eu, us = sc.specs
        assert asia.rate_fn(50.0) > asia.rate_fn(150.0)
        assert eu.rate_fn(150.0) > eu.rate_fn(50.0)
        assert us.rate_fn(250.0) == pytest.approx(100.0)

    def test_shifting_hotspot_moves(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        hs = ShiftingHotspot(rng, sim, record_count=1000, hot_size=10,
                             hot_frac=0.9, shift_every=60.0)
        assert hs.hot_base(0.0) == 0
        assert hs.hot_base(61.0) == 10
        assert hs.hot_base(60.0 * 100) == 0    # wraps
        draws = [hs.next() for _ in range(2000)]
        in_hot = sum(1 for d in draws if 0 <= d < 10)
        assert in_hot / len(draws) == pytest.approx(0.9, abs=0.05)

    def test_hotspot_scenario_chooser(self):
        sc = hotspot_shift(["us"], workload=WORKLOAD, hot_frac=0.7,
                           shift_every=30.0)
        sim = Simulator()
        chooser = sc.specs[0].chooser_factory(np.random.default_rng(1), sim)
        assert isinstance(chooser, ShiftingHotspot)
        assert 0 <= chooser.next() < WORKLOAD.record_count

    def test_failover_storm_spec(self):
        sc = failover_storm(["us", "eu"], crash_at=10.0, crash_duration=5.0)
        assert sc.faults is not None and len(sc.specs) == 2
        with pytest.raises(ValueError):
            failover_storm(["us"], victim_region="mars")


# -- harness integration -----------------------------------------------------

class TestHarnessIntegration:
    def test_load_engine_off_by_default(self):
        from repro.bench.harness import build_deployment
        from repro.net.topology import US_EAST
        dep = build_deployment([US_EAST])
        assert dep.load is None

    def test_add_cohort_drives_real_deployment(self):
        from repro.bench.openloop import build_scaleout_deployment
        dep, handle, workload = build_scaleout_deployment(shards=1)
        cohort = dep.add_cohort(
            CohortSpec(name="it", region=dep.servers[
                next(iter(dep.servers))].region, users=1000,
                rate_per_user=0.05, workload=workload),
            sharded=handle)
        report = dep.load.run(10.0, grace=1.0)
        assert dep.load["it"] is cohort
        assert report["offered_rate"] == pytest.approx(50.0, rel=0.15)
        assert report["errors"] == 0
        assert report["achieved"] > 0.9 * report["offered"]

    def test_servers_per_region_spreads_shards(self):
        from repro.bench.harness import build_deployment
        from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
        from repro.net.topology import US_EAST, US_WEST
        from repro.tiera.policy import memory_only_policy
        dep = build_deployment([US_EAST, US_WEST], shards=4,
                               servers_per_region=4)
        assert len(dep.servers) == 8
        spec = GlobalPolicySpec(
            name="spread",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),
                        RegionPlacement(US_WEST, memory_only_policy())),
            consistency="eventual")
        dep.start_sharded_instance("spread", spec)
        # least-loaded placement: every server hosts exactly one shard
        counts = [len(s.instances) for s in dep.servers.values()]
        assert counts == [1] * 8

    def test_single_server_layout_unchanged(self):
        """servers_per_region=1 keeps the historical host names/keys."""
        from repro.bench.harness import build_deployment
        from repro.net.topology import US_EAST
        dep = build_deployment([US_EAST])
        assert list(dep.servers) == [(US_EAST, "aws")]
        server = dep.servers[(US_EAST, "aws")]
        assert server.host.name == f"tsrv-host-{US_EAST}-aws"

    def test_failover_storm_scenario_runs(self):
        from repro.bench.openloop import build_scaleout_deployment
        from repro.net.topology import US_EAST, US_WEST
        dep, handle, workload = build_scaleout_deployment(shards=1)
        sc = failover_storm([US_EAST, US_WEST], users_per_region=100,
                            rate_per_user=0.1, crash_at=1.0,
                            crash_duration=2.0, victim_region=US_WEST,
                            workload=workload)
        dep.add_scenario(sc, sharded=handle)
        report = dep.load.run(6.0, grace=1.0)
        kinds = [kind for _, kind, _ in dep.faults.applied]
        assert kinds == ["crash", "restart"]
        assert report["offered"] > 0
        assert report["cohorts"] == 2
