"""Tests for the Tiera instance: policies, versions, transforms, tiers."""

import pytest

from repro.net import Network, US_EAST
from repro.sim import Simulator
from repro.storage.backend import ObjectMissingError
from repro.tiera import (
    ColdDataEvent,
    CompressResponse,
    CopyResponse,
    DeleteResponse,
    EncryptResponse,
    FilledEvent,
    GrowResponse,
    InsertEvent,
    LocalPolicy,
    MoveResponse,
    ObjectSelector,
    Rule,
    StoreResponse,
    TieraError,
    TieraInstance,
    TierSpec,
)
from repro.tiera.policy import (
    memory_only_policy,
    write_back_policy,
    write_through_policy,
)
from repro.util.rng import RngRegistry
from repro.util.units import GB, HOUR, KB, MS


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("h", US_EAST, vm="aws.t2_micro")
    return sim, net, host


def make_instance(world, policy, iid="i1"):
    sim, net, host = world
    inst = TieraInstance(sim, net, host, iid, US_EAST, policy,
                         rng=RngRegistry(1))
    inst.start()
    return inst


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestWriteBack:
    def test_put_lands_in_memory_dirty(self, world):
        sim, *_ = world
        inst = make_instance(world, write_back_policy(flush_period=10.0))
        run(sim, inst.local_put("k", b"v" * 100))
        m = inst.meta.get_record("k").latest()
        assert m.locations == {"tier1"}
        assert m.dirty is True

    def test_timer_flush_copies_and_cleans(self, world):
        sim, *_ = world
        inst = make_instance(world, write_back_policy(flush_period=2.0))
        run(sim, inst.local_put("k", b"v" * 100))
        sim.run(until=5.0)
        m = inst.meta.get_record("k").latest()
        assert m.locations == {"tier1", "tier2"}
        assert m.dirty is False
        assert inst.tier("tier2").peek("k#v1") == b"v" * 100

    def test_put_latency_is_memory_speed(self, world):
        sim, *_ = world
        inst = make_instance(world, write_back_policy())
        t0 = sim.now
        run(sim, inst.local_put("k", b"v" * (4 * KB)))
        assert sim.now - t0 < 2 * MS


class TestWriteThrough:
    def test_put_synchronously_persists(self, world):
        sim, *_ = world
        inst = make_instance(world, write_through_policy())
        run(sim, inst.local_put("k", b"v" * 100))
        m = inst.meta.get_record("k").latest()
        assert m.locations == {"tier1", "tier2"}

    def test_put_latency_includes_durable_tier(self, world):
        sim, *_ = world
        inst = make_instance(world, write_through_policy())
        t0 = sim.now
        run(sim, inst.local_put("k", b"v" * (4 * KB)))
        assert sim.now - t0 > 1 * MS  # EBS write on the critical path


class TestFilledBackup:
    def policy(self):
        return LocalPolicy(
            name="backup",
            tiers=(TierSpec("tier1", "memcached", 10 * KB),
                   TierSpec("tier2", "s3", None)),
            rules=(
                Rule(InsertEvent(None), (StoreResponse(to="tier1"),)),
                Rule(FilledEvent(tier="tier1", fraction=0.5),
                     (CopyResponse(what=ObjectSelector(location="tier1"),
                                   to="tier2"),)),
            ))

    def test_fill_triggers_backup_once(self, world):
        sim, *_ = world
        inst = make_instance(world, self.policy())
        for i in range(3):
            run(sim, inst.local_put(f"k{i}", b"z" * (2 * KB)))
        assert len(inst.tier("tier2")) >= 3  # crossed 50% -> backed up
        # The rule is edge-triggered: it fired exactly when crossing.
        first_count = inst.tier("tier2").writes
        run(sim, inst.local_put("k9", b"z" * 100))
        assert inst.tier("tier2").writes >= first_count  # new object only


class TestColdData:
    def policy(self):
        return LocalPolicy(
            name="cold",
            tiers=(TierSpec("tier1", "ebs_ssd", 1 * GB),
                   TierSpec("tier2", "s3_ia", None)),
            rules=(
                Rule(InsertEvent(None), (StoreResponse(to="tier1"),)),
                Rule(ColdDataEvent(age=2 * HOUR, check_interval=600.0),
                     (MoveResponse(
                         what=ObjectSelector(location="tier1",
                                             min_idle=2 * HOUR),
                         to="tier2", from_tier="tier1"),)),
            ))

    def test_idle_objects_move_hot_stay(self, world):
        sim, *_ = world
        inst = make_instance(world, self.policy())
        run(sim, inst.local_put("cold", b"c" * 100))
        run(sim, inst.local_put("hot", b"h" * 100))

        def keep_hot():
            for _ in range(5):
                yield sim.timeout(30 * 60)
                yield from inst.read_version("hot")
        run(sim, keep_hot())
        sim.run(until=4 * HOUR)
        cold_meta = inst.meta.get_record("cold").latest()
        hot_meta = inst.meta.get_record("hot").latest()
        assert cold_meta.locations == {"tier2"}
        assert "tier1" in hot_meta.locations


class TestVersioning:
    def test_put_creates_increasing_versions(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        v1 = run(sim, inst.local_put("k", b"one"))
        v2 = run(sim, inst.local_put("k", b"two"))
        assert (v1, v2) == (1, 2)
        data, m, rec = run(sim, inst.read_version("k"))
        assert data == b"two"
        data, m, rec = run(sim, inst.read_version("k", version=1))
        assert data == b"one"

    def test_duplicate_version_rejected(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"one", version=4))
        with pytest.raises(TieraError):
            run(sim, inst.local_put("k", b"again", version=4))

    def test_gc_keeps_last_n(self, world):
        sim, *_ = world
        policy = memory_only_policy()
        from dataclasses import replace
        policy = replace(policy, keep_versions=2)
        inst = make_instance(world, policy)
        for i in range(5):
            run(sim, inst.local_put("k", f"v{i}".encode()))
        rec = inst.meta.get_record("k")
        assert rec.version_list() == [4, 5]

    def test_remove_all_and_specific(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"one"))
        run(sim, inst.local_put("k", b"two"))
        removed = run(sim, inst.local_remove("k", version=1))
        assert removed == 1
        assert inst.meta.get_record("k").version_list() == [2]
        removed = run(sim, inst.local_remove("k"))
        assert removed == 1
        assert inst.meta.get_record("k") is None

    def test_read_missing_raises(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        with pytest.raises(ObjectMissingError):
            run(sim, inst.read_version("ghost"))


class TestConflictResolution:
    def test_newer_version_applies(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"local"))
        result = run(sim, inst.apply_replica_update(
            "k", version=2, last_modified=sim.now + 1, data=b"remote",
            origin="peer"))
        assert result["applied"]
        data, *_ = run(sim, inst.read_version("k"))
        assert data == b"remote"

    def test_same_version_lww_by_mtime(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"local"))
        rec = inst.meta.get_record("k")
        local_mtime = rec.latest().last_modified
        # older write loses
        result = run(sim, inst.apply_replica_update(
            "k", version=1, last_modified=local_mtime - 5, data=b"old",
            origin="peer"))
        assert not result["applied"]
        # newer write wins and replaces the contents
        result = run(sim, inst.apply_replica_update(
            "k", version=1, last_modified=local_mtime + 5, data=b"new",
            origin="peer"))
        assert result["applied"]
        data, *_ = run(sim, inst.read_version("k"))
        assert data == b"new"
        assert inst.conflicts_resolved == 1


class TestTransformsViaPolicy:
    def test_compress_and_read_back(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        payload = b"A" * 10_000
        run(sim, inst.local_put("k", payload))
        run(sim, CompressResponse(what=ObjectSelector(location="tier1"))
            .execute(inst, _ctx()))
        m = inst.meta.get_record("k").latest()
        assert m.encodings == ("zlib",)
        assert m.stored_size < len(payload) / 10
        data, *_ = run(sim, inst.read_version("k"))
        assert data == payload

    def test_encrypt_then_compress_chain(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        payload = b"secret" * 100
        run(sim, inst.local_put("k", payload))
        run(sim, EncryptResponse(what=ObjectSelector(location="tier1"))
            .execute(inst, _ctx()))
        run(sim, CompressResponse(what=ObjectSelector(location="tier1"))
            .execute(inst, _ctx()))
        m = inst.meta.get_record("k").latest()
        assert m.encodings == ("xor:default", "zlib")
        stored = inst.tier("tier1").peek("k#v1")
        assert payload not in stored
        data, *_ = run(sim, inst.read_version("k"))
        assert data == payload

    def test_grow_response(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy(size="1K"))
        run(sim, GrowResponse(tier="tier1", amount=10 * KB)
            .execute(inst, _ctx()))
        run(sim, inst.local_put("k", b"z" * (5 * KB)))
        assert inst.tier("tier1").used_bytes == 5 * KB


class TestMisc:
    def test_unknown_tier_raises(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        with pytest.raises(TieraError):
            inst.tier("tier99")

    def test_request_window_counts(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        inst.note_request("app")
        inst.note_request("app")
        inst.note_request("peer-1")
        counts = inst.requests_in_window(60.0)
        assert counts == {"app": 2, "peer-1": 1}

    def test_read_preference_fastest_first(self, world):
        sim, *_ = world
        policy = LocalPolicy(
            name="two",
            tiers=(TierSpec("slow", "s3", None),
                   TierSpec("fast", "memcached", 1 * GB)),
            rules=(Rule(InsertEvent(None), (StoreResponse(to="slow"),)),))
        inst = make_instance(world, policy)
        assert inst.read_preference(["slow", "fast"]) == ["fast", "slow"]

    def test_host_crash_wipes_volatile_only(self, world):
        sim, *_ = world
        inst = make_instance(world, write_through_policy())
        run(sim, inst.local_put("k", b"v"))
        inst.on_host_crash()
        m = inst.meta.get_record("k").latest()
        assert m.locations == {"tier2"}  # memcached copy gone, EBS kept
        data, *_ = run(sim, inst.read_version("k"))
        assert data == b"v"

    def test_delete_response_purges(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"v"))
        run(sim, DeleteResponse(what=ObjectSelector(location="tier1"))
            .execute(inst, _ctx()))
        assert inst.meta.get_record("k") is None

    def test_tags_stored(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("k", b"v", tags=("tmp",)))
        assert inst.meta.get_record("k").tags == {"tmp"}

    def test_selector_by_tag(self, world):
        sim, *_ = world
        inst = make_instance(world, memory_only_policy())
        run(sim, inst.local_put("a", b"v", tags=("tmp",)))
        run(sim, inst.local_put("b", b"v"))
        sel = ObjectSelector(tags=frozenset({"tmp"}))
        hits = DeleteResponse(what=sel)._targets(inst, sel, _ctx())
        assert [r.key for r, _ in hits] == ["a"]


def _ctx():
    from repro.tiera.responses import ResponseContext
    return ResponseContext()
