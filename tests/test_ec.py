"""Integration tests for the erasure-coded redundancy plane (repro.ec)."""

import pytest

from repro import (GlobalPolicySpec, RedundancySpec, RegionPlacement,
                   build_deployment)
from repro.ec.optimizer import RedundancyOptimizer
from repro.ec.protocol import decode_manifest, fragment_key
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def deploy(redundancy, regions=REGIONS, seed=7, **build_kwargs):
    dep = build_deployment(list(regions), seed=seed, **build_kwargs)
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in regions),
        consistency="eventual",
        redundancy=redundancy)
    instances = dep.start_wiera_instance("ec", spec)
    return dep, instances


class TestSpecValidation:
    def test_defaults_are_replication(self):
        spec = RedundancySpec()
        assert (spec.k, spec.m) == (1, 2)

    def test_invalid_schemes_rejected(self):
        with pytest.raises(ValueError):
            RedundancySpec(k=0)
        with pytest.raises(ValueError):
            RedundancySpec(m=-1)
        with pytest.raises(ValueError):
            RedundancySpec(k=200, m=100)
        with pytest.raises(ValueError):
            RedundancySpec(overrides=(("hot/", 0, 2),))
        with pytest.raises(ValueError):
            RedundancySpec(repair_interval=0.0)

    def test_needs_enough_placements(self):
        with pytest.raises(ValueError, match="needs 4 placements"):
            GlobalPolicySpec(
                name="x",
                placements=(RegionPlacement(US_EAST, memory_only_policy()),),
                redundancy=RedundancySpec(k=2, m=2))

    def test_incompatible_combinations(self):
        placements = tuple(RegionPlacement(r, memory_only_policy(),
                                           primary=(r == US_EAST))
                           for r in REGIONS)
        with pytest.raises(ValueError, match="primary_backup"):
            GlobalPolicySpec(name="x", placements=placements,
                             consistency="primary_backup",
                             redundancy=RedundancySpec())


class TestRedundancyNoneBitIdentical:
    def test_none_matches_default_run(self):
        """redundancy=None must construct nothing: a run with the explicit
        None and a run without the kwarg are event-for-event identical."""
        def one(explicit_none):
            regions = REGIONS[:2]
            build_kwargs = {"redundancy": None} if explicit_none else {}
            dep = build_deployment(list(regions), seed=7, **build_kwargs)
            spec = GlobalPolicySpec(
                name="ec",
                placements=tuple(RegionPlacement(r, memory_only_policy())
                                 for r in regions),
                consistency="eventual",
                redundancy=None)
            instances = dep.start_wiera_instance("ec", spec)
            client = dep.add_client(US_EAST, instances=instances)

            def app():
                for i in range(10):
                    yield from client.put(f"k{i}", bytes([i]) * 64)
                    yield from client.get(f"k{i}")
            dep.drive(app())
            dep.sim.run(until=dep.sim.now + 5)
            return (dep.sim.now, dep.sim.events_processed,
                    dep.metric_total("net.messages"),
                    dep.metric_total("net.bytes"))

        assert one(False) == one(True)

    def test_no_ec_metrics_without_spec(self):
        dep, instances = deploy(None, regions=REGIONS[:2])
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("k", b"v"))
        assert dep.metric_total("ec.puts") == 0
        assert dep.metric_total("ec.fragments_written") == 0


class TestECDataPath:
    def test_round_trip_all_regions(self):
        dep, instances = deploy(RedundancySpec(k=2, m=2))
        payloads = {f"obj{i}": bytes([i]) * (50 + 31 * i) for i in range(6)}
        writer = dep.add_client(US_EAST, instances=instances)
        reader = dep.add_client(EU_WEST, instances=instances)

        def app():
            for key, value in payloads.items():
                yield from writer.put(key, value)
            for key, value in payloads.items():
                res = yield from reader.get(key)
                assert res["data"] == value
                assert not res["degraded"]
        dep.drive(app())
        assert dep.metric_total("ec.puts") == 6
        assert dep.metric_total("ec.fragments_written") == 24
        assert dep.metric_total("ec.degraded_reads") == 0

    def test_fragments_on_distinct_instances(self):
        dep, instances = deploy(RedundancySpec(k=2, m=2))
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("obj", b"z" * 400))
        tim = dep.tim("ec")
        inst = dep.instance("ec", US_EAST, "aws")
        data = dep.drive(inst.read_version("obj", run_rules=False))[0]
        manifest = decode_manifest(data)
        assert manifest["k"] == 2 and manifest["m"] == 2
        holders = list(manifest["frags"].values())
        assert len(holders) == 4 and len(set(holders)) == 4
        # each holder actually stores its fragment bytes
        for idx, iid in manifest["frags"].items():
            holder = tim.instances[iid].instance
            frag, _, _ = dep.drive(holder.read_version(
                fragment_key("obj", idx), run_rules=False))
            assert len(frag) == 200  # ceil(400 / k=2)

    def test_stored_bytes_shrink_vs_replication(self):
        """EC(2,2) stores n/k = 2x the payload; EC(1,2) (3x replication)
        stores 3x — the whole point of the plane."""
        def stored(spec):
            dep, instances = deploy(spec, seed=3)
            client = dep.add_client(US_EAST, instances=instances)

            def app():
                for i in range(8):
                    yield from client.put(f"k{i}", b"x" * 4096)
            dep.drive(app())
            tim = dep.tim("ec")
            total = 0
            for rec in tim.instances.values():
                for backend in rec.instance.tiers.values():
                    total += backend.used_bytes
            return total

        rep = stored(RedundancySpec(k=1, m=2))
        ec = stored(RedundancySpec(k=2, m=2))
        # manifests add a small constant per object; fragment payloads
        # dominate: 3x vs 2x within a 10% manifest allowance
        assert ec < rep * 0.75

    def test_scheme_override_per_prefix(self):
        dep, instances = deploy(
            RedundancySpec(k=2, m=2, overrides=(("hot/", 1, 2),)))
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            r1 = yield from client.put("hot/a", b"h" * 300)
            r2 = yield from client.put("cold/a", b"c" * 300)
            assert tuple(r1["scheme"]) == (1, 2)
            assert tuple(r2["scheme"]) == (2, 2)
            res = yield from client.get("hot/a")
            assert res["data"] == b"h" * 300
        dep.drive(app())

    def test_remove_cleans_fragments(self):
        dep, instances = deploy(RedundancySpec(k=2, m=2))
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("victim", b"v" * 256)
            yield from client.remove("victim")
        dep.drive(app())
        dep.sim.run(until=dep.sim.now + 2)  # let oneway removes land
        tim = dep.tim("ec")
        for rec in tim.instances.values():
            meta = rec.instance.meta
            assert meta.get_record("victim") is None
            for idx in range(4):
                assert meta.get_record(fragment_key("victim", idx)) is None

    def test_manifest_replicated_to_all_instances(self):
        """Every instance gets a manifest copy, so any of them can
        coordinate a read even if it holds no fragment itself."""
        dep, instances = deploy(RedundancySpec(k=2, m=2))
        client = dep.add_client(US_EAST, instances=instances)
        dep.drive(client.put("obj", b"q" * 128))
        # every instance got the manifest
        tim = dep.tim("ec")
        for rec in tim.instances.values():
            data = dep.drive(rec.instance.read_version(
                "obj", run_rules=False))[0]
            assert decode_manifest(data) is not None


class TestChaos:
    def test_single_host_crash_zero_acked_loss(self):
        """Acceptance: crash any single fragment host mid-run — every
        acked write stays readable (degraded), and repair re-establishes
        all n fragments afterwards."""
        dep, instances = deploy(
            RedundancySpec(k=2, m=2, repair_interval=2.0), seed=13)
        tim = dep.tim("ec")
        writer = dep.add_client(US_EAST, instances=instances)
        reader = dep.add_client(US_WEST, instances=instances)

        # background YCSB noise so the crash lands mid-traffic
        workload = YcsbWorkload.workload_a(record_count=20, value_size=128)
        noise = YcsbClient(dep.sim, dep.add_client(EU_WEST,
                                                   instances=instances),
                           workload, dep.rng.stream("noise"),
                           think_time=0.05)
        dep.drive(noise.load())
        noise.start()

        acked = {}

        def write(tag, count):
            def app():
                for i in range(count):
                    key, value = f"{tag}-{i}", bytes([i % 256]) * 200
                    yield from writer.put(key, value)
                    acked[key] = value
            dep.drive(app())

        write("pre", 5)

        # crash the holder of fragment 1 of the first object
        inst = dep.instance("ec", US_EAST, "aws")
        manifest = decode_manifest(dep.drive(
            inst.read_version("pre-0", run_rules=False))[0])
        victim_id = manifest["frags"][1]
        victim_host = tim.instances[victim_id].instance.host
        faults = dep.fault_schedule("chaos")
        faults.crash(at=dep.sim.now + 0.5, host=victim_host.name,
                     duration=6.0)
        faults.start()
        dep.sim.run(until=dep.sim.now + 1.0)  # inside the crash window

        # degraded writes succeed and degraded reads return correct bytes
        write("during", 3)

        def read_all(expect_clean=False):
            def app():
                for key, value in sorted(acked.items()):
                    res = yield from reader.get(key)
                    assert res["data"] == value, key
                    if expect_clean:
                        assert not res["degraded"], key
            dep.drive(app())

        read_all()
        assert dep.metric_total("ec.degraded_reads") > 0

        # restart + repair: converge, then verify full redundancy is back
        dep.sim.run(until=dep.sim.now + 20.0)
        noise.stop()
        assert dep.metric_total("ec.fragments_rebuilt") > 0
        read_all(expect_clean=True)
        for key in acked:
            data = dep.drive(inst.read_version(key, run_rules=False))[0]
            manifest = decode_manifest(data)
            n = manifest["k"] + manifest["m"]
            assert len(manifest["frags"]) == n, key
            for idx, iid in manifest["frags"].items():
                holder = tim.instances[iid].instance
                frag, _, _ = dep.drive(holder.read_version(
                    fragment_key(key, idx), run_rules=False))
                assert frag is not None


class TestOptimizer:
    RTT = {
        frozenset((US_EAST, US_WEST)): 0.08,
        frozenset((US_EAST, EU_WEST)): 0.09,
        frozenset((US_EAST, ASIA_EAST)): 0.23,
        frozenset((US_WEST, EU_WEST)): 0.15,
        frozenset((US_WEST, ASIA_EAST)): 0.12,
        frozenset((EU_WEST, ASIA_EAST)): 0.28,
    }

    def rtt(self, a, b):
        if a == b:
            return 0.0
        return self.RTT[frozenset((a, b))]

    def optimizer(self, **spec_kwargs):
        spec = RedundancySpec(**spec_kwargs)
        return RedundancyOptimizer(spec, REGIONS, self.rtt, tier="s3")

    def test_ec_beats_replication_on_storage(self):
        opt = self.optimizer()
        rep = opt.evaluate(1, 2, 1 << 20, 1000, 100, US_EAST)
        ec = opt.evaluate(2, 2, 1 << 20, 1000, 100, US_EAST)
        assert ec.durability == rep.durability == 2
        assert ec.storage_dollars < rep.storage_dollars
        assert ec.storage_dollars == pytest.approx(
            rep.storage_dollars * (4 / 2) / 3)

    def test_choose_prefers_cheap_ec_for_cold_data(self):
        """Rarely-read data: storage dominates, so EC's lower overhead
        beats replication despite remote fragment reads."""
        opt = self.optimizer(durability_floor=2, read_budget=0.5)
        plan = opt.choose(size=1 << 20, reads_per_month=1,
                          writes_per_month=1, reader_region=US_EAST)
        assert not plan.is_replication
        assert plan.chosen.durability >= 2

    def test_tight_read_budget_forces_replication(self):
        """With a budget below every inter-region RTT, only schemes whose
        k fragments sit in the reader region fit — i.e. k=1 replication
        with the data shard local."""
        opt = self.optimizer(durability_floor=1, read_budget=0.01)
        plan = opt.choose(size=4096, reads_per_month=1e6,
                          writes_per_month=10, reader_region=US_EAST)
        assert plan.is_replication
        assert plan.chosen.read_latency <= 0.01

    def test_durability_floor_filters(self):
        opt = self.optimizer(durability_floor=2)
        plan = opt.choose(size=4096, reads_per_month=100,
                          writes_per_month=10, reader_region=US_EAST)
        assert plan.chosen.durability >= 2
        assert all(e.durability >= 2 or e in plan.rejected
                   for e in (plan.chosen,) + plan.rejected)

    def test_plan_for_monitor(self):
        class FakeMonitor:
            def demand_by_region(self):
                return {US_WEST: 90, US_EAST: 10}

            def read_fraction(self):
                return 0.9

        plan = self.optimizer().plan_for_monitor(FakeMonitor(), 1 << 16,
                                                 elapsed=3600.0)
        assert plan.chosen.sites[0] == US_WEST  # reader-local first
