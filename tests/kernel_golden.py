"""Golden determinism workload for the kernel fast path.

Runs a fixed sharded YCSB-A deployment under fault injection (partition +
heal + latency spike, timeout racing enabled) and fingerprints everything
an application could observe: the exact per-request latency sequences, the
final simulation clock, the kernel event count, the shared metric totals,
and a digest of the final store state across every shard.

``tests/golden/kernel_golden.json`` was captured from the pre-optimization
kernel (heap-only scheduling, poke-event resumes); the pin test asserts the
optimized kernel reproduces it bit-for-bit.  Regenerate only when the
*workload* changes, never to paper over a kernel behavior change:

    PYTHONPATH=src python -m tests.kernel_golden
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.harness import build_deployment
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.faults.retry import RetryPolicy
from repro.net.topology import US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent
               / "golden" / "kernel_golden.json")

#: metric names whose deployment-wide totals are part of the fingerprint
PINNED_METRICS = (
    "net.messages",
    "net.bytes",
    "rpc.requests_served",
    "rpc.dropped_oneways",
    "rpc.timeouts",
    "client.failovers",
    "client.retries",
    "retry.attempts",
    "faults.injected",
    "replication.send_failures",
    "storage.ops",
)


def _store_digest(dep, shard_map) -> str:
    """The canonical store digest in the fixture's historical framing:
    version-only rows (detail=False) in nested shard/instance/key order
    (sort=False), exactly the byte stream the fixture was captured from."""
    return dep.store_digest(namespaces=sorted(shard_map.shards),
                            detail=False, sort=False)


def _advance(sim, until: float, window) -> None:
    """Advance to ``until`` — in one ``run`` call, or in bounded
    ``run(until=...)`` windows of at most ``window`` sim-seconds (the
    parallel runner's stepping mode, which must be event-for-event
    identical to one big run)."""
    if window is None:
        sim.run(until=until)
        return
    t = sim.now
    while t < until:
        t = min(t + window, until)
        sim.run(until=t)


def golden_run(window=None) -> dict:
    """The reference chaos run; returns the observable fingerprint.

    ``window`` switches every simulation advance to small bounded
    ``run(until=...)`` steps; the fingerprint must not change.
    """
    dep = build_deployment([US_EAST, US_WEST], seed=29, shards=4)
    spec = GlobalPolicySpec(
        name="gold",
        placements=(RegionPlacement(US_EAST, write_back_policy()),
                    RegionPlacement(US_WEST, write_back_policy())),
        consistency="multi_primaries")
    handle = dep.start_sharded_instance("gold", spec)

    workload = YcsbWorkload.workload_a(record_count=80, value_size=128)
    retry = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.5,
                        jitter=0.2)
    drivers = []
    for i, region in enumerate((US_WEST, US_EAST)):
        client = dep.add_client(region, sharded=handle,
                                request_timeout=1.5, retry_policy=retry)
        rng = dep.rng.stream(f"gold{i}")
        drivers.append(YcsbClient(dep.sim, client, workload, rng,
                                  think_time=0.02))
    dep.drive(drivers[0].load())

    # Faults land inside the measured phase (the drivers absorb op errors).
    t0 = dep.sim.now
    schedule = dep.fault_schedule()
    schedule.partition(t0 + 5.0, US_EAST, US_WEST, duration=4.0)
    # Big enough that cross-region calls overrun request_timeout, so the
    # call_with_timeout racing path (fired deadlines, cancelled timers,
    # interrupts) is part of the pinned behavior.
    schedule.latency_spike(t0 + 12.0, 1.0, regions=(US_EAST, US_WEST),
                           duration=3.0)
    schedule.start()
    for driver in drivers:
        driver.start()
    _advance(dep.sim, dep.sim.now + 20.0, window)
    for driver in drivers:
        driver.stop()
    _advance(dep.sim, dep.sim.now + 10.0, window)   # replication settles

    latencies = {}
    for i, driver in enumerate(drivers):
        latencies[f"client{i}.read"] = driver.stats.read_latencies
        latencies[f"client{i}.update"] = driver.stats.update_latencies
    return {
        "final_clock": dep.sim.now,
        "events_processed": dep.sim.events_processed,
        "latencies": latencies,
        "metric_totals": {name: dep.metric_total(name)
                          for name in PINNED_METRICS},
        "store_digest": _store_digest(dep, handle.map),
        "faults_applied": [[t, kind, list(target)]
                           for t, kind, target in dep.faults.applied],
    }


def main() -> None:
    fingerprint = golden_run()
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(fingerprint, indent=2) + "\n")
    ops = sum(len(v) for v in fingerprint["latencies"].values())
    print(f"wrote {GOLDEN_PATH} ({ops} request latencies, "
          f"{fingerprint['events_processed']} kernel events)")


if __name__ == "__main__":
    main()
