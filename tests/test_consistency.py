"""Tests for the three consistency protocols over a live deployment."""


from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.util.units import MS

REGIONS = (US_EAST, US_WEST, EU_WEST)


def make(consistency, *, primary=None, sync=True, queue_interval=1.0,
         get_from=None, regions=REGIONS, **kwargs):
    dep = build_deployment(regions, seed=5)
    spec = GlobalPolicySpec(
        name="t",
        placements=tuple(
            RegionPlacement(r, write_back_policy(),
                            primary=(r == primary)) for r in regions),
        consistency=consistency, sync_replication=sync,
        queue_interval=queue_interval, get_from=get_from, **kwargs)
    instances = dep.start_wiera_instance("t", spec)
    return dep, instances


class TestMultiPrimaries:
    def test_put_replicates_synchronously(self):
        dep, instances = make("multi_primaries")
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            result = yield from client.put("k", b"value")
            return result
        result = dep.drive(app())
        assert result["version"] == 1
        # At ack time every replica already has the version.
        for region in REGIONS:
            inst = dep.instance("t", region)
            assert inst.meta.get_record("k").latest_version == 1

    def test_put_pays_lock_and_broadcast(self):
        dep, instances = make("multi_primaries")
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            result = yield from client.put("k", b"v")
            return result["latency"]
        latency = dep.drive(app())
        # lock in US East (2 RTT) + widest replica RTT (US West<->EU 140ms)
        assert latency > 250 * MS

    def test_gets_are_strong_everywhere(self):
        dep, instances = make("multi_primaries")
        writer = dep.add_client(US_WEST, instances=instances)
        reader = dep.add_client(EU_WEST, instances=instances)

        def app():
            yield from writer.put("k", b"v1")
            yield from writer.put("k", b"v2")
            got = yield from reader.get("k")
            return got
        got = dep.drive(app())
        assert got["version"] == 2 and got["data"] == b"v2"

    def test_concurrent_writers_serialized_by_lock(self):
        dep, instances = make("multi_primaries")
        c1 = dep.add_client(US_WEST, instances=instances)
        c2 = dep.add_client(EU_WEST, instances=instances)
        results = []

        def writer(client, payload):
            result = yield from client.put("hotkey", payload)
            results.append(result["version"])

        p1 = dep.sim.process(writer(c1, b"a"))
        p2 = dep.sim.process(writer(c2, b"b"))
        dep.sim.run(until=dep.sim.all_of([p1, p2]))
        assert sorted(results) == [1, 2]  # distinct versions, no conflict
        for region in REGIONS:
            inst = dep.instance("t", region)
            assert inst.conflicts_resolved == 0


class TestPrimaryBackup:
    def test_forwarding_to_primary(self):
        dep, instances = make("primary_backup", primary=US_EAST)
        client = dep.add_client(EU_WEST, instances=instances)

        def app():
            result = yield from client.put("k", b"v")
            return result
        result = dep.drive(app())
        assert result["primary"].endswith(US_EAST)
        primary = dep.instance("t", US_EAST)
        assert primary.requests_in_window(60.0)  # saw the forwarded put

    def test_sync_mode_keeps_backups_fresh(self):
        dep, instances = make("primary_backup", primary=US_EAST, sync=True)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
        dep.drive(app())
        for region in REGIONS:
            assert dep.instance("t", region).meta.get_record("k") is not None

    def test_async_mode_lags_then_converges(self):
        dep, instances = make("primary_backup", primary=US_EAST, sync=False,
                              queue_interval=5.0)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
        dep.drive(app())
        backup = dep.instance("t", EU_WEST)
        assert backup.meta.get_record("k") is None  # not yet
        dep.sim.run(until=dep.sim.now + 10.0)
        assert backup.meta.get_record("k").latest_version == 1

    def test_get_from_other_instance(self):
        dep, instances = make("primary_backup", primary=US_EAST, sync=True,
                              get_from=US_WEST)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            got = yield from client.get("k")
            return got
        got = dep.drive(app())
        assert got["data"] == b"v"
        # the read went over the wire to US West and back
        assert got["latency"] > 60 * MS

    def test_queue_coalesces_updates(self):
        dep, instances = make("primary_backup", primary=US_EAST, sync=False,
                              queue_interval=30.0)
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            for i in range(5):
                yield from client.put("k", f"v{i}".encode())
        dep.drive(app())
        tim = dep.tim("t")
        primary_id = tim.protocol.config.primary_id
        queue = tim.protocol.queue_for(tim.instances[primary_id].instance)
        assert queue.coalesced == 4
        assert len(queue.pending) == 1


class TestEventual:
    def test_put_is_local_speed(self):
        dep, instances = make("eventual", queue_interval=1.0)
        client = dep.add_client(ASIA_EAST, instances=instances,
                                vm="generic")

        def app():
            result = yield from client.put("k", b"v")
            return result["latency"]
        # client in Asia, closest instance EU West (no Asia placement);
        # use a same-region client instead for a clean local measure:
        dep2, instances2 = make("eventual", regions=(US_EAST, US_WEST))
        local_client = dep2.add_client(US_EAST, instances=instances2)

        def app2():
            result = yield from local_client.put("k", b"v")
            return result["latency"]
        latency = dep2.drive(app2())
        assert latency < 10 * MS  # paper: <10 ms in eventual mode

    def test_lazy_convergence(self):
        dep, instances = make("eventual", queue_interval=2.0)
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            yield from client.put("k", b"v")
        dep.drive(app())
        remote = dep.instance("t", EU_WEST)
        assert remote.meta.get_record("k") is None
        dep.sim.run(until=dep.sim.now + 6.0)
        assert remote.meta.get_record("k").latest_version == 1

    def test_concurrent_conflict_resolved_lww_everywhere(self):
        dep, instances = make("eventual", queue_interval=1.0)
        c1 = dep.add_client(US_WEST, instances=instances)
        c2 = dep.add_client(EU_WEST, instances=instances)

        def writer(client, payload, delay):
            yield dep.sim.timeout(delay)
            yield from client.put("k", payload)

        p1 = dep.sim.process(writer(c1, b"west", 0.0))
        p2 = dep.sim.process(writer(c2, b"europe", 0.010))
        dep.sim.run(until=dep.sim.all_of([p1, p2]))
        dep.sim.run(until=dep.sim.now + 10.0)
        # Both created version 1 concurrently; LWW must converge all
        # replicas to the same winner (the later write, "europe").
        finals = []
        for region in REGIONS:
            inst = dep.instance("t", region)

            def read(inst=inst):
                data, m, _ = yield from inst.read_version("k")
                return data
            finals.append(dep.drive(read()))
        assert len(set(finals)) == 1
        assert finals[0] == b"europe"

    def test_remove_propagates(self):
        dep, instances = make("eventual", queue_interval=1.0)
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            yield dep.sim.timeout(5.0)   # let replication land
            yield from client.remove("k")
        dep.drive(app())
        dep.sim.run(until=dep.sim.now + 5.0)
        for region in REGIONS:
            assert dep.instance("t", region).meta.get_record("k") is None


class TestVersioningApi:
    def test_table2_surface(self):
        dep, instances = make("multi_primaries")
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"one")
            yield from client.put("k", b"two")
            versions = yield from client.get_version_list("k")
            old = yield from client.get_version("k", 1)
            yield from client.update("k", 1, b"one-rewritten")
            rewritten = yield from client.get_version("k", 1)
            yield from client.remove_version("k", 1)
            remaining = yield from client.get_version_list("k")
            return versions, old, rewritten, remaining

        versions, old, rewritten, remaining = dep.drive(app())
        assert versions == [1, 2]
        assert old["data"] == b"one"
        assert rewritten["data"] == b"one-rewritten"
        assert remaining == [2]
