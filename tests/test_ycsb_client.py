"""Behavioural tests for the YCSB client driver."""

import numpy as np
import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.net import US_EAST
from repro.tiera.policy import memory_only_policy
from repro.workloads import StalenessOracle, YcsbClient, YcsbWorkload


@pytest.fixture
def world():
    dep = build_deployment([US_EAST], seed=43)
    spec = GlobalPolicySpec(
        name="y",
        placements=(RegionPlacement(US_EAST, memory_only_policy()),),
        consistency="local")
    instances = dep.start_wiera_instance("y", spec)
    client = dep.add_client(US_EAST, instances=instances)
    return dep, client


def test_load_phase_populates_records(world):
    dep, client = world
    workload = YcsbWorkload(record_count=25, value_size=128)
    yc = YcsbClient(dep.sim, client, workload, np.random.default_rng(0))

    def load():
        yield from yc.load()
    dep.drive(load())
    inst = dep.instance("y", US_EAST)
    assert inst.meta.record_count() == 25
    data, meta, _ = dep.drive(inst.read_version("user0"))
    assert len(data) == 128


def test_mix_ratio_respected(world):
    dep, client = world
    workload = YcsbWorkload.workload_b(record_count=10, value_size=64)
    yc = YcsbClient(dep.sim, client, workload, np.random.default_rng(1),
                    think_time=0.01)

    def load():
        yield from yc.load()
    dep.drive(load())
    yc.start()
    dep.sim.run(until=dep.sim.now + 30.0)
    yc.stop()
    assert yc.stats.ops > 500
    read_fraction = yc.stats.reads / yc.stats.ops
    assert 0.90 <= read_fraction <= 0.99   # nominal 0.95


def test_activity_gate_pauses_client(world):
    dep, client = world
    workload = YcsbWorkload(record_count=5, value_size=64)
    active = {"on": False}
    yc = YcsbClient(dep.sim, client, workload, np.random.default_rng(2),
                    think_time=0.05, is_active=lambda: active["on"],
                    activity_poll=0.5)

    def load():
        yield from yc.load()
    dep.drive(load())
    yc.start()
    dep.sim.run(until=dep.sim.now + 10.0)
    assert yc.stats.ops == 0           # inactive: no operations
    active["on"] = True
    dep.sim.run(until=dep.sim.now + 10.0)
    yc.stop()
    assert yc.stats.ops > 50           # woke up and worked


def test_errors_counted_not_fatal(world):
    dep, client = world
    workload = YcsbWorkload(record_count=5, value_size=64)
    yc = YcsbClient(dep.sim, client, workload, np.random.default_rng(3),
                    think_time=0.05)
    # no load phase: every get hits a missing key
    yc.start()
    dep.sim.run(until=dep.sim.now + 5.0)
    yc.stop()
    assert yc.stats.errors > 0
    assert yc.stats.updates > 0        # puts still succeed


def test_oracle_integration(world):
    dep, client = world
    workload = YcsbWorkload.workload_a(record_count=5, value_size=64)
    oracle = StalenessOracle()
    yc = YcsbClient(dep.sim, client, workload, np.random.default_rng(4),
                    think_time=0.02, oracle=oracle)

    def load():
        yield from yc.load()
    dep.drive(load())
    yc.start()
    dep.sim.run(until=dep.sim.now + 20.0)
    yc.stop()
    assert oracle.total_reads == yc.stats.reads
    # single replica: every read is trivially the latest
    assert oracle.outdated_reads == 0
