"""Tests for the client library, deployment harness, and reporting."""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.bench.harness import preload_object
from repro.bench.reporting import (
    ExperimentReport,
    all_reports,
    clear_reports,
    dump_reports,
    register_report,
    render_all,
)
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


@pytest.fixture
def dep():
    d = build_deployment(REGIONS, seed=2)
    spec = GlobalPolicySpec(
        name="cl",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="multi_primaries")
    instances = d.start_wiera_instance("cl", spec)
    return d, instances


class TestClientProximity:
    def test_attach_orders_by_latency(self, dep):
        d, instances = dep
        client = d.add_client(EU_WEST, instances=instances)
        regions = [i["region"] for i in client.instances]
        assert regions[0] == EU_WEST
        assert regions[-1] == US_WEST  # farthest from EU West

    def test_client_from_unplaced_region_picks_nearest(self, dep):
        d, instances = dep
        client = d.add_client(ASIA_EAST, instances=instances)
        # Asia East has no instance; US West is the closest at 55 ms
        assert client.closest["region"] == US_WEST

    def test_latency_recorded_with_region_label(self, dep):
        d, instances = dep
        client = d.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            yield from client.get("k")
        d.drive(app())
        assert client.put_latency.labels == [US_EAST]
        assert client.get_latency.labels == [US_EAST]


class TestHarness:
    def test_deployment_shape(self, dep):
        d, _ = dep
        assert set(d.servers) == {(r, "aws") for r in REGIONS}
        assert d.wiera.host.region == US_EAST
        # heartbeats are running
        assert d.wiera.tsm._hb_proc is not None

    def test_instance_lookup(self, dep):
        d, _ = dep
        inst = d.instance("cl", US_WEST)
        assert inst.region == US_WEST
        with pytest.raises(KeyError):
            d.instance("cl", ASIA_EAST)

    def test_drive_propagates_failures(self, dep):
        d, _ = dep

        def boom():
            yield d.sim.timeout(1.0)
            raise ValueError("inner")
        with pytest.raises(ValueError, match="inner"):
            d.drive(boom())

    def test_preload_object(self, dep):
        d, _ = dep
        targets = [d.instance("cl", r) for r in REGIONS]
        preload_object(targets, "seed", b"data" * 100)
        for inst in targets:
            record = inst.meta.get_record("seed")
            assert record.latest_version == 1
            assert inst.tier("tier1").peek("seed#v1") == b"data" * 100

    def test_preload_duplicate_version_rejected(self, dep):
        d, _ = dep
        inst = d.instance("cl", US_EAST)
        preload_object([inst], "k", b"x")
        with pytest.raises(ValueError):
            preload_object([inst], "k", b"y")

    def test_providers_map(self):
        d = build_deployment([US_EAST],
                             providers={US_EAST: ("aws", "azure")})
        assert (US_EAST, "aws") in d.servers
        assert (US_EAST, "azure") in d.servers
        assert d.server(US_EAST, "azure").host.provider == "azure"

    def test_deterministic_deployments(self):
        def run_once():
            d = build_deployment(REGIONS, seed=33)
            spec = GlobalPolicySpec(
                name="det",
                placements=tuple(RegionPlacement(r, memory_only_policy())
                                 for r in REGIONS),
                consistency="multi_primaries")
            instances = d.start_wiera_instance("det", spec)
            client = d.add_client(US_WEST, instances=instances)

            def app():
                out = []
                for i in range(5):
                    result = yield from client.put(f"k{i}", b"v" * 64)
                    out.append(round(result["latency"], 9))
                return out
            return d.drive(app())
        assert run_once() == run_once()


class TestReporting:
    def setup_method(self):
        clear_reports()

    def teardown_method(self):
        clear_reports()

    def test_report_render(self):
        report = ExperimentReport(
            exp_id="x", title="Demo", columns=["a", "b"],
            paper_claim="claim", notes="note")
        report.add_row("row", 1.2345)
        text = report.render()
        assert "Demo" in text and "claim" in text and "note" in text
        assert "1.23" in text

    def test_row_arity_checked(self):
        report = ExperimentReport(exp_id="x", title="t", columns=["a"])
        with pytest.raises(ValueError):
            report.add_row(1, 2)

    def test_registry_and_dump(self, tmp_path):
        report = ExperimentReport(exp_id="dumpme", title="t", columns=["a"])
        report.add_row(42)
        register_report(report)
        assert all_reports() == [report]
        assert "dumpme" in render_all()
        combined = dump_reports(tmp_path)
        assert combined.exists()
        assert (tmp_path / "dumpme.txt").read_text().startswith("== dumpme")

    def test_dump_empty_registry(self, tmp_path):
        assert dump_reports(tmp_path) is None
