"""Golden determinism pin for the kernel fast path.

``tests/golden/kernel_golden.json`` fingerprints a sharded YCSB-A run with
fault injection as executed by the *pre-optimization* kernel (heap-only
scheduling, poke-event resumes).  This test replays the identical workload
on the current kernel and asserts every observable — per-request latency
sequences, final clock, kernel event count, metric totals, store digest,
applied faults — matches bit-for-bit.  Any scheduling-order change the
fast path introduced (run-queue vs heap, deferred resumes, tombstoned
interrupts) would scramble the retry jitter and latency streams and show
up here immediately.
"""

import json

from tests.kernel_golden import GOLDEN_PATH, PINNED_METRICS, golden_run


def test_fast_path_kernel_matches_seed_kernel_fingerprint():
    want = json.loads(GOLDEN_PATH.read_text())
    got = golden_run()

    # Compare piecewise first so a mismatch names the drifting observable.
    assert got["final_clock"] == want["final_clock"]
    assert got["events_processed"] == want["events_processed"]
    assert got["faults_applied"] == want["faults_applied"]
    for name in PINNED_METRICS:
        assert got["metric_totals"][name] == want["metric_totals"][name], name
    for stream, values in want["latencies"].items():
        assert got["latencies"][stream] == values, stream
    assert got["store_digest"] == want["store_digest"]
    # ...and wholesale, in case the fixture ever grows new fields.
    assert got == want


def test_windowed_stepping_is_event_for_event_identical():
    """``run(until=...)`` in small bounded windows — how the parallel
    runner (repro.par) advances each worker between barriers — must
    reproduce the exact fingerprint of one uninterrupted run: same
    latency streams, same event count, same clock, same store digest."""
    want = json.loads(GOLDEN_PATH.read_text())
    got = golden_run(window=0.3)
    assert got == want


def test_fixture_is_nontrivial():
    """Guard against an accidentally regenerated-empty fixture."""
    want = json.loads(GOLDEN_PATH.read_text())
    ops = sum(len(v) for v in want["latencies"].values())
    assert ops > 200
    assert want["events_processed"] > 10_000
    assert want["metric_totals"]["rpc.timeouts"] > 0      # racing path pinned
    assert want["metric_totals"]["client.failovers"] > 0  # fault path pinned
