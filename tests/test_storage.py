"""Tests for the storage-tier substrate."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.storage import (
    ArchivalTier,
    BlockTier,
    CapacityExceededError,
    MemoryTier,
    NotYetRestoredError,
    ObjectMissingError,
    ObjectStoreTier,
    TIER_PROFILES,
    get_tier_profile,
    make_tier,
)
from repro.util.units import GB, HOUR, MB


@pytest.fixture
def sim():
    return Simulator()


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def timed(sim, gen):
    proc = sim.process(gen)
    start = sim.now
    sim.run(until=proc)
    return sim.now - start


class TestProfiles:
    def test_aliases(self):
        assert get_tier_profile("Memcached").name == "memcached"
        assert get_tier_profile("LocalDisk").name == "ebs_ssd"
        assert get_tier_profile("S3-IA").name == "s3_ia"
        assert get_tier_profile("CheapestArchival").name == "glacier"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_tier_profile("floppy")

    def test_fig9_ordering(self):
        """Cheaper tiers are slower — the premise of Fig. 9 / Table 4."""
        ssd = TIER_PROFILES["ebs_ssd"]
        hdd = TIER_PROFILES["ebs_hdd"]
        s3 = TIER_PROFILES["s3"]
        ia = TIER_PROFILES["s3_ia"]
        assert ssd.read_latency < hdd.read_latency < s3.read_latency
        assert s3.read_latency <= ia.read_latency
        assert ssd.storage_price > hdd.storage_price > s3.storage_price
        assert s3.storage_price > ia.storage_price


class TestBackendBasics:
    def test_write_read_roundtrip(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        run(sim, tier.write("k", b"hello"))
        assert run(sim, tier.read("k")) == b"hello"
        assert tier.used_bytes == 5
        assert "k" in tier and len(tier) == 1

    def test_overwrite_updates_usage(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        run(sim, tier.write("k", b"x" * 100))
        run(sim, tier.write("k", b"y" * 40))
        assert tier.used_bytes == 40
        assert run(sim, tier.read("k")) == b"y" * 40

    def test_capacity_enforced(self, sim):
        tier = make_tier(sim, "ebs_ssd", 100)
        with pytest.raises(CapacityExceededError):
            run(sim, tier.write("k", b"z" * 101))
        assert "k" not in tier

    def test_missing_key(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        with pytest.raises(ObjectMissingError):
            run(sim, tier.read("nope"))
        with pytest.raises(ObjectMissingError):
            run(sim, tier.delete("nope"))

    def test_delete_frees_space(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        run(sim, tier.write("k", b"d" * 10))
        run(sim, tier.delete("k"))
        assert tier.used_bytes == 0 and "k" not in tier

    def test_grow(self, sim):
        tier = make_tier(sim, "ebs_ssd", 100)
        tier.grow(100)
        run(sim, tier.write("k", b"z" * 150))
        assert tier.used_bytes == 150

    def test_write_latency_size_dependent(self, sim):
        tier = make_tier(sim, "s3", None)
        small = timed(sim, tier.write("a", b"x" * 1024))
        large = timed(sim, tier.write("b", b"x" * (8 * MB)))
        assert large > small + 0.1

    def test_jitter_deterministic(self):
        def one_run():
            sim = Simulator()
            tier = make_tier(sim, "ebs_ssd", 1 * GB,
                             rng=np.random.default_rng(42))
            times = []
            for i in range(5):
                times.append(timed(sim, tier.write(f"k{i}", b"x" * 4096)))
            return times

        assert one_run() == one_run()

    def test_preload_is_instant_and_counted(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        tier.preload("k", b"fast" * 100)
        assert sim.now == 0.0
        assert tier.used_bytes == 400
        assert run(sim, tier.read("k")) == b"fast" * 100

    def test_non_bytes_rejected(self, sim):
        tier = make_tier(sim, "ebs_ssd", 1 * GB)
        with pytest.raises(TypeError):
            run(sim, tier.write("k", "a string"))


class TestIopsCap:
    def test_completion_rate_capped(self, sim):
        tier = make_tier(sim, "azure_disk", 10 * GB)
        tier.preload("k", b"x" * 4096)
        ops = 200

        def reader():
            for _ in range(ops):
                yield from tier.read("k")

        elapsed = timed(sim, reader())
        iops = ops / elapsed
        assert 450 <= iops <= 505

    def test_concurrency_does_not_exceed_cap(self, sim):
        tier = make_tier(sim, "azure_disk", 10 * GB)
        tier.preload("k", b"x" * 4096)
        done = []

        def reader(n):
            for _ in range(n):
                yield from tier.read("k")
            done.append(sim.now)

        for _ in range(8):
            sim.process(reader(50))
        sim.run()
        iops = 400 / max(done)
        assert iops <= 505


class TestMemoryTier:
    def test_requires_volatile_profile(self, sim):
        with pytest.raises(ValueError):
            MemoryTier(sim, get_tier_profile("ebs_ssd"), 1 * GB)

    def test_crash_wipes(self, sim):
        tier = make_tier(sim, "memcached", 1 * GB)
        run(sim, tier.write("k", b"gone"))
        tier.on_host_crash()
        assert "k" not in tier and tier.used_bytes == 0

    def test_lru_eviction(self, sim):
        tier = make_tier(sim, "memcached", 3000, evict_lru=True)
        run(sim, tier.write("a", b"x" * 1000))
        run(sim, tier.write("b", b"x" * 1000))
        run(sim, tier.write("c", b"x" * 1000))
        run(sim, tier.read("a"))             # a is now most recent
        run(sim, tier.write("d", b"x" * 1000))
        assert "b" not in tier               # LRU victim
        assert "a" in tier and "c" in tier and "d" in tier
        assert tier.evictions == 1

    def test_oversized_object_rejected(self, sim):
        tier = make_tier(sim, "memcached", 1000, evict_lru=True)
        with pytest.raises(CapacityExceededError):
            run(sim, tier.write("k", b"x" * 2000))


class TestBlockTier:
    def test_buffer_cache_accelerates_reread(self, sim):
        tier = BlockTier(sim, get_tier_profile("ebs_hdd"), 1 * GB,
                         direct_io=False)
        run(sim, tier.write("k", b"x" * 4096))
        cold = None
        tier._cache.clear()
        tier._cache_used = 0
        cold = timed(sim, tier.read("k"))
        warm = timed(sim, tier.read("k"))
        assert warm < cold / 10
        assert tier.cache_hits == 1

    def test_direct_io_never_caches(self, sim):
        tier = BlockTier(sim, get_tier_profile("ebs_hdd"), 1 * GB,
                         direct_io=True)
        run(sim, tier.write("k", b"x" * 4096))
        t1 = timed(sim, tier.read("k"))
        t2 = timed(sim, tier.read("k"))
        assert tier.cache_hits == 0
        assert t2 > t1 / 10  # both reads hit the device


class TestObjectStore:
    def test_unbounded_by_default(self, sim):
        tier = ObjectStoreTier(sim, get_tier_profile("s3"))
        run(sim, tier.write("k", b"x" * (64 * MB)))
        assert tier.fill_fraction < 1e-6

    def test_wrong_profile_kind(self, sim):
        with pytest.raises(ValueError):
            ObjectStoreTier(sim, get_tier_profile("ebs_ssd"), 1 * GB)


class TestArchival:
    def test_blocking_read_waits_for_restore(self, sim):
        tier = make_tier(sim, "glacier", None)
        tier.preload("k", b"frozen")
        elapsed = timed(sim, tier.read("k"))
        assert elapsed >= tier.profile.retrieval_delay

    def test_nonblocking_read_raises_with_ready_time(self, sim):
        tier = make_tier(sim, "glacier", None)
        tier.preload("k", b"frozen")

        def attempt():
            yield from tier.read("k", blocking=False)

        p = sim.process(attempt())
        with pytest.raises(NotYetRestoredError) as err:
            sim.run(until=p)
        assert err.value.ready_at == pytest.approx(
            tier.profile.retrieval_delay)

    def test_restored_window_allows_fast_reads(self, sim):
        tier = make_tier(sim, "glacier", None)
        tier.preload("k", b"frozen")
        run(sim, tier.read("k"))      # waits out the restore
        fast = timed(sim, tier.read("k"))
        assert fast < 1.0             # already restored
        assert tier.restores_started == 1

    def test_restore_window_expires(self, sim):
        tier = ArchivalTier(sim, get_tier_profile("glacier"),
                            restore_window=1 * HOUR)
        tier.preload("k", b"frozen")
        run(sim, tier.read("k"))
        sim.run(until=sim.now + 2 * HOUR)
        assert not tier.is_restored("k")
