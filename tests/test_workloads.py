"""Tests for workload generators: Zipfian, YCSB, geo populations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    GeoClientPopulation,
    RegionActivity,
    ScrambledZipfian,
    StalenessOracle,
    YcsbWorkload,
    Zipfian,
)
from repro.workloads.zipf import Uniform, ZipfianCDF, fnv1a_64


class TestZipfian:
    def test_range(self):
        z = Zipfian(1000, 0.99, np.random.default_rng(0))
        samples = z.sample(5000)
        assert samples.min() >= 0 and samples.max() < 1000

    def test_skew(self):
        """Rank-0 items dominate under high theta."""
        z = Zipfian(1000, 0.99, np.random.default_rng(0))
        samples = z.sample(20_000)
        top = np.mean(samples == 0)
        assert top > 0.10   # >10% of draws hit the hottest key

    def test_lower_theta_less_skewed(self):
        hot_high = np.mean(
            Zipfian(100, 0.99, np.random.default_rng(1)).sample(20_000) == 0)
        hot_low = np.mean(
            Zipfian(100, 0.5, np.random.default_rng(1)).sample(20_000) == 0)
        assert hot_high > hot_low

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Zipfian(0)
        with pytest.raises(ValueError):
            Zipfian(10, theta=1.5)

    def test_scrambled_spreads_hot_keys(self):
        z = ScrambledZipfian(1000, 0.99, np.random.default_rng(0))
        samples = z.sample(20_000)
        counts = np.bincount(samples, minlength=1000)
        hottest = int(np.argmax(counts))
        # scrambling moves the hottest item away from id 0 (w.h.p.)
        assert counts[hottest] > 0.10 * len(samples)
        assert hottest == fnv1a_64(0) % 1000

    def test_deterministic_given_seed(self):
        a = ScrambledZipfian(100, 0.9, np.random.default_rng(5)).sample(100)
        b = ScrambledZipfian(100, 0.9, np.random.default_rng(5)).sample(100)
        assert (a == b).all()

    @given(st.integers(min_value=0, max_value=2**62))
    @settings(max_examples=50)
    def test_fnv_is_deterministic_and_64bit(self, n):
        h = fnv1a_64(n)
        assert 0 <= h < 2**64
        assert h == fnv1a_64(n)

    def test_exact_cdf_matches_analytic_probabilities(self):
        n, theta = 50, 0.99
        z = ZipfianCDF(n, theta, np.random.default_rng(0))
        samples = z.sample(100_000)
        weights = 1.0 / np.arange(1, n + 1) ** theta
        probs = weights / weights.sum()
        counts = np.bincount(samples, minlength=n)
        # Exact sampler: empirical top-rank mass tracks the true pmf.
        for rank in range(5):
            assert counts[rank] / len(samples) == pytest.approx(
                probs[rank], rel=0.1)

    def test_exact_cdf_accepts_theta_ge_1(self):
        z = ZipfianCDF(100, 1.2, np.random.default_rng(0))
        samples = z.sample(5000)
        assert samples.min() >= 0 and samples.max() < 100
        with pytest.raises(ValueError):
            ZipfianCDF(100, 0.0)
        with pytest.raises(ValueError):
            ZipfianCDF(0)

    def test_exact_cdf_next_matches_sample_stream(self):
        a = ZipfianCDF(200, 0.9, np.random.default_rng(3))
        b = ZipfianCDF(200, 0.9, np.random.default_rng(3))
        assert [a.next() for _ in range(100)] == list(b.sample(100))

    def test_scrambled_exact_flag(self):
        z = ScrambledZipfian(1000, 0.99, np.random.default_rng(0),
                             exact=True)
        assert isinstance(z._zipf, ZipfianCDF)
        samples = z.sample(20_000)
        counts = np.bincount(samples, minlength=1000)
        assert counts[fnv1a_64(0) % 1000] > 0.10 * len(samples)

    def test_uniform_chooser(self):
        u = Uniform(10, np.random.default_rng(0))
        samples = u.sample(1000)
        assert set(np.unique(samples)) <= set(range(10))
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 50  # roughly uniform


class TestYcsbWorkload:
    def test_mixes(self):
        a = YcsbWorkload.workload_a()
        b = YcsbWorkload.workload_b()
        assert a.read_prop == 0.5 and b.read_prop == 0.95

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            YcsbWorkload(read_prop=0.9, update_prop=0.9)

    def test_key_and_value(self):
        wl = YcsbWorkload(value_size=64)
        assert wl.key(7) == "user7"
        assert len(wl.value(np.random.default_rng(0))) == 64

    def test_chooser_kinds(self):
        rng = np.random.default_rng(0)
        assert isinstance(YcsbWorkload().chooser(rng), ScrambledZipfian)
        assert isinstance(
            YcsbWorkload(distribution="uniform").chooser(rng), Uniform)
        exact = YcsbWorkload(distribution="zipfian_exact").chooser(rng)
        assert isinstance(exact, ScrambledZipfian)
        assert isinstance(exact._zipf, ZipfianCDF)
        with pytest.raises(ValueError):
            YcsbWorkload(distribution="pareto")


class TestStalenessOracle:
    def test_latest_read_counted(self):
        oracle = StalenessOracle()
        oracle.note_put("k", 1, ack_time=10.0)
        assert oracle.judge_get("k", 1, started_at=11.0) is True
        assert oracle.latest_reads == 1

    def test_outdated_read_counted(self):
        oracle = StalenessOracle()
        oracle.note_put("k", 1, ack_time=10.0)
        oracle.note_put("k", 2, ack_time=20.0)
        assert oracle.judge_get("k", 1, started_at=25.0) is False
        assert oracle.outdated_fraction == 1.0

    def test_racing_put_not_counted_stale(self):
        oracle = StalenessOracle()
        oracle.note_put("k", 1, ack_time=10.0)
        oracle.note_put("k", 2, ack_time=20.0)
        # get started before the v2 ack: v1 is the latest it must see
        assert oracle.judge_get("k", 1, started_at=15.0) is True

    def test_unknown_key_is_fresh(self):
        oracle = StalenessOracle()
        assert oracle.judge_get("ghost", 0, started_at=0.0) is True

    def test_fraction_empty(self):
        assert StalenessOracle().outdated_fraction == 0.0


class TestGeoPopulation:
    def test_gaussian_peaks(self):
        act = RegionActivity("r", peak_time=100.0, sigma=20.0,
                             max_clients=10)
        assert act.active_clients(100.0) == 10
        assert act.active_clients(100.0 + 3 * 20.0) <= 1
        assert act.active_clients(0.0) <= act.active_clients(100.0)

    def test_min_clients_floor(self):
        act = RegionActivity("r", peak_time=0.0, sigma=1.0,
                             max_clients=10, min_clients=2)
        assert act.active_clients(1e6) == 2

    def test_staggered_order(self):
        pop = GeoClientPopulation.staggered(
            ["asia", "eu", "us"], first_peak=100.0, stagger=50.0,
            sigma=10.0, max_clients=10)
        assert pop.busiest_region(100.0) == "asia"
        assert pop.busiest_region(150.0) == "eu"
        assert pop.busiest_region(200.0) == "us"

    def test_client_activation_order(self):
        pop = GeoClientPopulation.staggered(
            ["r"], first_peak=0.0, stagger=0.0, sigma=10.0, max_clients=10)
        # at the peak everyone is active; far away only low indices
        assert pop.is_active("r", 9, 0.0)
        assert not pop.is_active("r", 9, 40.0)

    @given(st.floats(min_value=0, max_value=10_000,
                     allow_nan=False))
    @settings(max_examples=50)
    def test_active_count_bounded(self, t):
        act = RegionActivity("r", peak_time=500.0, sigma=60.0,
                             max_clients=10, min_clients=1)
        count = act.active_clients(t)
        assert 1 <= count <= 10

    def test_active_clients_deterministic_over_time(self):
        """Pure function of t: re-evaluation and fresh instances agree."""
        def make():
            return RegionActivity("r", peak_time=300.0, sigma=45.0,
                                  max_clients=25, min_clients=2)
        a, b = make(), make()
        times = [0.0, 150.0, 299.9, 300.0, 412.5, 1e4]
        first = [a.active_clients(t) for t in times]
        assert first == [a.active_clients(t) for t in times]
        assert first == [b.active_clients(t) for t in times]

    def test_bell_is_symmetric_and_monotone(self):
        act = RegionActivity("r", peak_time=200.0, sigma=30.0,
                             max_clients=100)
        for dt in (10.0, 50.0, 90.0):
            assert act.active_clients(200.0 - dt) == \
                act.active_clients(200.0 + dt)
        levels = [act.active_clients(200.0 + dt)
                  for dt in (0.0, 30.0, 60.0, 90.0, 120.0)]
        assert levels == sorted(levels, reverse=True)

    def test_staggered_parameters(self):
        pop = GeoClientPopulation.staggered(
            ["a", "b", "c"], first_peak=60.0, stagger=90.0, sigma=15.0,
            max_clients=40, min_clients=4)
        assert list(pop.activities) == ["a", "b", "c"]
        assert [act.peak_time for act in pop.activities.values()] == \
            [60.0, 150.0, 240.0]
        for act in pop.activities.values():
            assert act.sigma == 15.0
            assert act.max_clients == 40 and act.min_clients == 4

    def test_busiest_region_tie_break_deterministic(self):
        # identical curves: the lexicographically last region wins the
        # (count, name) max, and it must win consistently
        pop = GeoClientPopulation.staggered(
            ["x", "y"], first_peak=0.0, stagger=0.0, sigma=10.0,
            max_clients=10)
        assert pop.busiest_region(0.0) == "y"
        assert pop.busiest_region(0.0) == pop.busiest_region(0.0)

    def test_activity_gate_tracks_sim_clock(self):
        from repro.sim.kernel import Simulator
        sim = Simulator()
        pop = GeoClientPopulation.staggered(
            ["r"], first_peak=100.0, stagger=0.0, sigma=10.0,
            max_clients=10)
        gate = pop.activity_gate(sim, "r", client_index=9)
        assert not gate()                # t=0: far from the peak
        sim.run(until=100.0)
        assert gate()                    # at the peak everyone is active
