"""Tests for repro.shard: ring properties, routing, live rebalancing.

Covers the acceptance bar for the sharded namespace: consistent-hash
load spread and minimal movement, exact-owner routing under YCSB-A,
zero acknowledged-write loss during a live 3→4 rebalance (including
with a partition mid-migration), and bit-identical ``shards=1`` runs.
"""

import pytest

from repro import (
    GlobalPolicySpec,
    RegionPlacement,
    RetryPolicy,
    ShardSpec,
    build_deployment,
)
from repro.net import US_EAST, US_WEST
from repro.shard.rebalance import Rebalancer
from repro.shard.ring import HashRing, hash_point
from repro.shard.map import WrongShardError
from repro.tiera.policy import memory_only_policy, write_back_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

KEYS = [f"user{i}" for i in range(10_000)]


class TestHashRing:
    def test_load_spread_within_20pct_at_128_vnodes(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=128)
        counts = {sid: 0 for sid in ring.shard_ids}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        mean = len(KEYS) / 4
        for sid, count in counts.items():
            assert abs(count - mean) <= 0.20 * mean, (sid, count)

    def test_add_moves_about_k_over_n_keys_to_newcomer_only(self):
        old = HashRing([f"s{i}" for i in range(4)], vnodes=128)
        new = old.copy()
        new.add("s4")
        moved = [k for k in KEYS if old.owner(k) != new.owner(k)]
        # ~K/N keys move (N = new shard count), none elsewhere.
        expected = len(KEYS) / 5
        assert 0.5 * expected <= len(moved) <= 1.5 * expected
        assert all(new.owner(k) == "s4" for k in moved)

    def test_remove_moves_only_the_removed_shards_keys(self):
        old = HashRing([f"s{i}" for i in range(4)], vnodes=128)
        new = old.copy()
        new.remove("s2")
        for key in KEYS:
            if old.owner(key) == "s2":
                assert new.owner(key) != "s2"
            else:
                assert new.owner(key) == old.owner(key)

    def test_placement_is_deterministic(self):
        # Placement derives from sha256 only: no RNG, no insertion order,
        # no process-level state.  Different construction orders and a
        # rebuilt ring agree on every owner.
        a = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        b = HashRing(["s3", "s1", "s0", "s2"], vnodes=64)
        c = HashRing(vnodes=64)
        for sid in ("s2", "s0", "s3", "s1"):
            c.add(sid)
        sample = KEYS[:2000]
        owners = [a.owner(k) for k in sample]
        assert owners == [b.owner(k) for k in sample]
        assert owners == [c.owner(k) for k in sample]
        # Pin a few well-known placements so a silent hash change fails.
        assert hash_point("user0") == int.from_bytes(
            __import__("hashlib").sha256(b"user0").digest()[:8], "big")

    def test_ring_errors(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add("s0")
        with pytest.raises(ValueError):
            ring.remove("s0")
        with pytest.raises(ValueError):
            HashRing().owner("k")


def _sharded_dep(shards, seed=7, policy=write_back_policy,
                 client_kwargs=None):
    dep = build_deployment([US_EAST, US_WEST], seed=seed, shards=shards)
    spec = GlobalPolicySpec(
        name="sh",
        placements=(RegionPlacement(US_EAST, policy()),
                    RegionPlacement(US_WEST, policy())),
        consistency="multi_primaries")
    handle = dep.start_sharded_instance("sh", spec)
    client = dep.add_client(US_WEST, sharded=handle,
                            **(client_kwargs or {}))
    return dep, handle, client


def _owner_instances_with(dep, shard_map, key):
    """Shard ids whose instances hold a metadata record for ``key``."""
    holders = set()
    for sid in shard_map.shards:
        tim = dep.wiera.tim(sid)
        for rec in tim.instances.values():
            record = rec.instance.meta.get_record(key)
            if record is not None and record.versions:
                holders.add(sid)
                break
    return holders


class TestShardedRouting:
    def test_ycsb_a_routes_every_key_to_exactly_one_owning_shard(self):
        dep, handle, client = _sharded_dep(shards=4)
        workload = YcsbWorkload.workload_a(record_count=60, value_size=128)
        rng = dep.rng.stream("ycsb")
        ycsb = YcsbClient(dep.sim, client, workload, rng)
        dep.drive(ycsb.load())
        ycsb.start()
        dep.sim.run(until=dep.sim.now + 30.0)
        ycsb.stop()
        dep.sim.run(until=dep.sim.now + 10.0)   # let replication settle
        assert ycsb.stats.ops > 100
        # stop() may interrupt one in-flight op, which counts as an error
        assert ycsb.stats.errors <= 1
        shard_map = handle.map
        for i in range(workload.record_count):
            key = workload.key(i)
            holders = _owner_instances_with(dep, shard_map, key)
            assert holders == {shard_map.owner(key)}, (key, holders)

    def test_spec_sharding_overrides_deployment_default(self):
        dep = build_deployment([US_EAST, US_WEST], seed=1)
        spec = GlobalPolicySpec(
            name="sp",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),
                        RegionPlacement(US_WEST, memory_only_policy())),
            consistency="multi_primaries",
            sharding=ShardSpec(shards=2, vnodes=32))
        handle = dep.start_sharded_instance("sp", spec)
        assert handle.sharded
        assert sorted(handle.map.shards) == ["sp-s0", "sp-s1"]

    def test_guard_redirects_stale_direct_call(self):
        dep, handle, client = _sharded_dep(shards=2)
        shard_map = handle.map
        key = next(k for k in KEYS if shard_map.owner(k) == "sh-s0")
        wrong = shard_map.shards["sh-s1"][0]

        def direct():
            yield client.node.call(wrong["node"], "get", {"key": key})
        with pytest.raises(WrongShardError) as err:
            dep.drive(direct())
        assert err.value.owner == "sh-s0"
        assert err.value.epoch == shard_map.epoch


class TestRebalance:
    def test_add_shard_moves_only_remapped_ranges(self):
        dep, handle, client = _sharded_dep(shards=3)

        def load():
            for i in range(60):
                yield from client.put(f"user{i}", b"x" * 64)
        dep.drive(load())
        mgr = dep.wiera.shard_manager("sh")
        old_ring = mgr.map.ring.copy()
        rebalancer = Rebalancer(mgr)
        result = dep.drive(rebalancer.add_shard(), name="rebalance")
        assert result["shard"] == "sh-s3"
        assert result["epoch"] == 2
        new_ring = mgr.map.ring
        # Only keys whose owner actually changed were copied.
        assert rebalancer.moved_keys
        for key in rebalancer.moved_keys:
            assert old_ring.owner(key) != new_ring.owner(key)
        # Post-purge, each key lives on exactly its owning shard.
        for i in range(60):
            key = f"user{i}"
            holders = _owner_instances_with(dep, mgr.map, key)
            assert holders == {mgr.map.owner(key)}, (key, holders)

    def test_stale_client_redirected_after_rebalance(self):
        dep, handle, client = _sharded_dep(shards=3)

        def load():
            for i in range(60):
                yield from client.put(f"user{i}", b"x" * 64)
        dep.drive(load())
        mgr = dep.wiera.shard_manager("sh")
        dep.drive(mgr.add_shard(), name="rebalance")
        assert client.router.map.epoch == 1   # still on the stale map

        def verify():
            for i in range(60):
                result = yield from client.get(f"user{i}")
                assert result["data"] == b"x" * 64
        dep.drive(verify())
        assert client.router.map.epoch == 2
        assert client.router.refreshes >= 1

    def test_live_rebalance_loses_no_acked_writes(self):
        self._rebalance_under_traffic(with_partition=False)

    def test_live_rebalance_survives_partition_mid_migration(self):
        self._rebalance_under_traffic(with_partition=True)

    def _rebalance_under_traffic(self, with_partition):
        dep, handle, client = _sharded_dep(
            shards=3,
            client_kwargs=dict(
                request_timeout=2.0,
                retry_policy=RetryPolicy(max_attempts=6, base_delay=0.2,
                                         max_delay=2.0, jitter=0.0)))

        def load():
            for i in range(40):
                yield from client.put(f"user{i}", b"seed" * 16)
        dep.drive(load())

        acked: dict[str, int] = {}
        stop = [False]

        def writer():
            i = 0
            while not stop[0]:
                key = f"user{i % 40}"
                try:
                    result = yield from client.put(key,
                                                   bytes([i % 251]) * 64)
                    acked[key] = max(acked.get(key, 0), result["version"])
                except Exception:
                    pass   # unacknowledged: allowed to be lost
                i += 1
                yield dep.sim.timeout(0.05)
        dep.sim.process(writer(), name="writer")

        if with_partition:
            schedule = dep.fault_schedule()
            schedule.partition(dep.sim.now + 2.0, US_EAST, US_WEST,
                               duration=8.0)
            schedule.start()

        mgr = dep.wiera.shard_manager("sh")
        old_ring = mgr.map.ring.copy()
        rebalancer = Rebalancer(mgr)
        result = dep.drive(rebalancer.add_shard(), name="rebalance")
        assert result["epoch"] == 2
        # Keep traffic flowing on the new map before stopping.
        dep.sim.run(until=dep.sim.now + 5.0)
        stop[0] = True
        dep.sim.run(until=dep.sim.now + 30.0)   # replication settles

        if with_partition:
            kinds = [kind for _, kind, _ in dep.faults.applied]
            assert kinds == ["partition", "heal"]

        assert acked, "traffic never got a write acknowledged"
        new_ring = mgr.map.ring
        for key in rebalancer.moved_keys:
            assert old_ring.owner(key) != new_ring.owner(key)
        lost = []
        for key, version in sorted(acked.items()):
            owner = mgr.map.owner(key)
            best = -1
            for rec in dep.wiera.tim(owner).instances.values():
                record = rec.instance.meta.get_record(key)
                if record is not None and record.latest_version is not None:
                    best = max(best, record.latest_version)
            if best < version:
                lost.append((key, version, best))
        assert lost == []

        def verify_reads():
            for key in sorted(acked):
                result = yield from client.get(key)
                assert result["version"] >= acked[key]
        dep.drive(verify_reads())

    def test_remove_shard_drains_to_survivors(self):
        dep, handle, client = _sharded_dep(shards=4, seed=3)

        def load():
            for i in range(40):
                yield from client.put(f"user{i}", b"seed" * 16)
        dep.drive(load())
        mgr = dep.wiera.shard_manager("sh")
        result = dep.drive(mgr.remove_shard("sh-s1"), name="rm")
        assert result["removed"] == "sh-s1"
        assert "sh-s1" not in mgr.map.shards

        def verify():
            for i in range(40):
                result = yield from client.get(f"user{i}")
                assert result["data"]
        dep.drive(verify())


class TestShardsOneBitIdentical:
    REGIONS = (US_EAST, US_WEST)

    def _run(self, sharded):
        dep = build_deployment(self.REGIONS, seed=33)
        spec = GlobalPolicySpec(
            name="det",
            placements=tuple(RegionPlacement(r, memory_only_policy())
                             for r in self.REGIONS),
            consistency="multi_primaries")
        if sharded:
            handle = dep.start_sharded_instance("det", spec)
            client = dep.add_client(US_WEST, sharded=handle)
            assert not handle.sharded
            assert client.router is None
        else:
            instances = dep.start_wiera_instance("det", spec)
            client = dep.add_client(US_WEST, instances=instances)

        def app():
            out = []
            for i in range(5):
                result = yield from client.put(f"k{i}", b"v" * 64)
                out.append(result["latency"])
            for i in range(5):
                result = yield from client.get(f"k{i}")
                out.append(result["latency"])
            return out
        latencies = dep.drive(app())
        return latencies, dep.sim.now, dep.sim.events_processed

    def test_shards_1_is_bit_identical_to_unsharded(self):
        assert self._run(sharded=False) == self._run(sharded=True)


class TestClientCounters:
    def test_failover_and_retry_registry_counters_match_attributes(self):
        dep, handle, client = _sharded_dep(
            shards=1, client_kwargs=dict(
                retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1,
                                         max_delay=1.0, jitter=0.0)))

        def load():
            yield from client.put("k", b"v")
        dep.drive(load())
        # Kill the client's closest instance host: the sweep fails over.
        client.closest["node"].host.crash()

        def op():
            yield from client.get("k")
        dep.drive(op())
        assert client.failovers > 0
        name = client.node.name
        assert dep.metric_total("client.failovers",
                                client=name) == client.failovers
        assert dep.metric_total("client.retries",
                                client=name) == client.retries


class TestElasticCycles:
    """Satellite: repeated back-to-back grow/shrink cycles stay clean."""

    def _managed_one_shard(self):
        """A managed (ShardManager-backed) namespace at one shard."""
        dep = build_deployment([US_EAST, US_WEST], seed=21,
                               servers_per_region=2)
        spec = GlobalPolicySpec(
            name="cy",
            placements=(RegionPlacement(US_EAST, write_back_policy()),
                        RegionPlacement(US_WEST, write_back_policy())),
            consistency="multi_primaries")
        dep.drive(dep.wiera.start_sharded_instances("cy", spec, 1),
                  name="start:cy")
        mgr = dep.wiera.shard_manager("cy")
        from repro.shard.map import ShardHandle
        handle = ShardHandle(base_id="cy",
                             instances=mgr.map.all_instances(), map=mgr.map)
        client = dep.add_client(
            US_WEST, sharded=handle, request_timeout=2.0,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.2,
                                     max_delay=2.0, jitter=0.0))
        return dep, mgr, client

    def _assert_no_leaked_state(self, dep, mgr):
        """Every live instance: gate open, no dual-write window, and a
        guard at the current epoch for its own shard."""
        for sid in mgr.map.shards:
            for rec in dep.wiera.tim(sid).alive_records():
                inst = rec.instance
                assert inst.gate.is_open, (sid, rec.instance_id)
                assert inst.shard_handoff is None, (sid, rec.instance_id)
                assert inst.shard_guard is not None
                assert inst.shard_guard.shard_id == sid
                assert inst.shard_guard.epoch == mgr.epoch

    def test_grow_1_to_4_and_back_under_live_writes(self):
        dep, mgr, client = self._managed_one_shard()

        def load():
            for i in range(30):
                yield from client.put(f"user{i}", b"seed" * 8)
        dep.drive(load())

        acked: dict[str, int] = {}
        stop = [False]

        def writer():
            i = 0
            while not stop[0]:
                key = f"user{i % 30}"
                try:
                    result = yield from client.put(key,
                                                   bytes([i % 251]) * 64)
                    acked[key] = max(acked.get(key, 0), result["version"])
                except Exception:
                    pass   # unacknowledged: allowed to be lost
                i += 1
                yield dep.sim.timeout(0.05)
        dep.sim.process(writer(), name="writer")

        # Grow 1 -> 4, one rebalance at a time, under live writes.
        for expect in (2, 3, 4):
            result = dep.drive(mgr.add_shard(), name=f"grow{expect}")
            assert len(mgr.map.shards) == expect
            assert result["shard"] in mgr.map.shards
            self._assert_no_leaked_state(dep, mgr)
            dep.sim.run(until=dep.sim.now + 2.0)

        # Shrink 4 -> 1, newest shard first, still under live writes.
        for victim in ("cy-s3", "cy-s2", "cy-s1"):
            result = dep.drive(mgr.remove_shard(victim), name=f"rm:{victim}")
            assert result["removed"] == victim
            assert victim not in mgr.map.shards
            assert victim not in dep.wiera.tims
            self._assert_no_leaked_state(dep, mgr)
            dep.sim.run(until=dep.sim.now + 2.0)

        assert sorted(mgr.map.shards) == ["cy-s0"]
        assert mgr.epoch == 7   # launch + 3 adds + 3 removes

        stop[0] = True
        dep.sim.run(until=dep.sim.now + 30.0)   # replication settles

        # Zero acked-write loss across the whole 1->4->1 cycle.
        assert acked, "writer never got an ack"
        lost = []
        for key, version in sorted(acked.items()):
            best = -1
            for rec in dep.wiera.tim("cy-s0").instances.values():
                record = rec.instance.meta.get_record(key)
                if record is not None and record.latest_version is not None:
                    best = max(best, record.latest_version)
            if best < version:
                lost.append((key, version, best))
        assert lost == []

        def verify_reads():
            for key in sorted(acked):
                result = yield from client.get(key)
                assert result["version"] >= acked[key]
        dep.drive(verify_reads())
