"""Smoke tests for the fast experiment implementations.

The full benchmarks live under ``benchmarks/``; these quick checks make
``pytest tests/`` exercise the experiment code paths too (scaled down
where the full run is long).
"""

import pytest

from repro.bench.experiments.fig9_tier_latency import run_fig9
from repro.bench.experiments.sec53_cold_cost import run_sec53
from repro.bench.experiments.fig10_centralized_cold import run_fig10


class TestFig9Smoke:
    def test_ordering_holds_at_small_scale(self):
        result, report = run_fig9(ops=20)
        assert result.get_ms["ebs_ssd"] < result.get_ms["ebs_hdd"]
        assert result.get_ms["ebs_hdd"] < result.get_ms["s3"]
        assert len(report.rows) == 4

    def test_larger_objects_slower(self):
        small, _ = run_fig9(object_size=4 * 1024, ops=10)
        large, _ = run_fig9(object_size=4 * 1024 * 1024, ops=10)
        for tier in ("ebs_ssd", "s3"):
            assert large.get_ms[tier] > small.get_ms[tier]


class TestSec53Smoke:
    def test_dollar_arithmetic(self):
        result, report = run_sec53()
        assert result.ssd_saving == pytest.approx(700.0, abs=1.0)
        assert result.hdd_saving == pytest.approx(300.0, abs=1.0)
        assert result.centralize_saving == pytest.approx(300.0, abs=1.0)
        assert result.demoted == 80


class TestFig10Smoke:
    def test_regions_ordered_by_distance(self):
        result, report = run_fig10(ops=10)
        assert (result.get_ms["us-east"] < result.get_ms["us-west"]
                < result.get_ms["asia-east"])
        assert len(report.rows) == 4


class TestDeterminism:
    def test_fig9_bitwise_reproducible(self):
        a, _ = run_fig9(ops=15, seed=5)
        b, _ = run_fig9(ops=15, seed=5)
        assert a.put_ms == b.put_ms
        assert a.get_ms == b.get_ms

    def test_fig9_seed_changes_jitter(self):
        a, _ = run_fig9(ops=15, seed=5)
        b, _ = run_fig9(ops=15, seed=6)
        assert a.put_ms != b.put_ms
