"""Tests for the versioned object data model and metadata store."""

import pytest

from repro.tiera import MetadataStore, ObjectRecord, VersionMeta, storage_key


def meta(version, mtime=0.0):
    return VersionMeta(version=version, size=10, created_at=0.0,
                       last_modified=mtime, last_accessed=0.0)


class TestVersionMeta:
    def test_lww_higher_version_wins(self):
        assert meta(2, 0.0).newer_than(meta(1, 99.0))
        assert not meta(1, 99.0).newer_than(meta(2, 0.0))

    def test_lww_same_version_newer_mtime_wins(self):
        assert meta(3, 5.0).newer_than(meta(3, 4.0))
        assert not meta(3, 4.0).newer_than(meta(3, 5.0))

    def test_lww_identical_is_not_newer(self):
        assert not meta(3, 5.0).newer_than(meta(3, 5.0))

    def test_touch(self):
        m = meta(1)
        m.touch(42.0)
        m.touch(43.0)
        assert m.last_accessed == 43.0
        assert m.access_count == 2

    def test_roundtrip_dict(self):
        m = VersionMeta(version=2, size=100, created_at=1.0,
                        last_modified=2.0, last_accessed=3.0,
                        access_count=7, dirty=True,
                        locations={"tier1", "tier2"},
                        encodings=("zlib",), stored_size=60, origin="i1")
        again = VersionMeta.from_dict(m.to_dict())
        assert again == m


class TestObjectRecord:
    def test_add_and_latest(self):
        rec = ObjectRecord(key="k")
        rec.add_version(meta(1))
        rec.add_version(meta(3))
        rec.add_version(meta(2))
        assert rec.latest_version == 3
        assert rec.latest().version == 3
        assert rec.version_list() == [1, 2, 3]

    def test_drop_latest_falls_back(self):
        rec = ObjectRecord(key="k")
        for v in (1, 2, 3):
            rec.add_version(meta(v))
        rec.drop_version(3)
        assert rec.latest_version == 2
        rec.drop_version(2)
        rec.drop_version(1)
        assert rec.latest() is None

    def test_next_version_monotonic(self):
        rec = ObjectRecord(key="k")
        assert rec.next_version() == 1
        rec.add_version(meta(5))
        assert rec.next_version() == 6

    def test_roundtrip_dict(self):
        rec = ObjectRecord(key="k", tags={"tmp"})
        rec.add_version(meta(1))
        again = ObjectRecord.from_dict(rec.to_dict())
        assert again.key == "k" and again.tags == {"tmp"}
        assert again.version_list() == [1]

    def test_storage_key_format(self):
        assert storage_key("photo", 3) == "photo#v3"


class TestMetadataStore:
    def test_basic_kv(self):
        store = MetadataStore()
        store.put("a", 1)
        assert store.get("a") == 1
        assert "a" in store and len(store) == 1
        store.delete("a")
        assert store.get("a") is None

    def test_cursor_prefix_order(self):
        store = MetadataStore()
        for key in ("b/2", "a/1", "b/1", "c/9"):
            store.put(key, key)
        assert [k for k, _ in store.cursor("b/")] == ["b/1", "b/2"]
        assert [k for k, _ in store.cursor()] == ["a/1", "b/1", "b/2", "c/9"]

    def test_records_api(self):
        store = MetadataStore()
        rec = ObjectRecord(key="photo")
        rec.add_version(meta(1))
        store.put_record(rec)
        assert store.get_record("photo") is rec
        assert store.record_count() == 1
        assert list(store.records()) == [rec]
        store.delete_record("photo")
        assert store.get_record("photo") is None

    def test_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "meta.json"
        store = MetadataStore(path)
        rec = ObjectRecord(key="k", tags={"t"})
        rec.add_version(meta(2, mtime=9.0))
        store.put_record(rec)
        store.put("config/x", {"a": 1})
        store.checkpoint()

        fresh = MetadataStore(path)
        again = fresh.get_record("k")
        assert again.tags == {"t"}
        assert again.versions[2].last_modified == 9.0
        assert fresh.get("config/x") == {"a": 1}

    def test_checkpoint_without_path_raises(self):
        with pytest.raises(ValueError):
            MetadataStore().checkpoint()

    def test_cursor_tolerates_deletion(self):
        store = MetadataStore()
        for i in range(5):
            store.put(f"k{i}", i)
        seen = []
        for key, _ in store.cursor():
            seen.append(key)
            store.delete("k3")
        assert "k3" not in seen or seen.count("k3") == 1
