"""Tests for the policy DSL: lexer, parser, compiler, built-ins."""

import pytest

from repro.core.global_policy import GlobalPolicySpec
from repro.policydsl import (
    BUILTIN_POLICIES,
    CompileError,
    LexerError,
    ParseError,
    ast,
    builtin_policy,
    compile_policy,
    parse_policy,
)
from repro.policydsl.lexer import tokenize
from repro.tiera.events import (
    FilledEvent,
    TimerEvent,
)
from repro.tiera.policy import LocalPolicy
from repro.tiera.responses import (
    CopyResponse,
    MoveResponse,
    SetAttrResponse,
    StoreResponse,
)
from repro.util.units import GB, HOUR, KB


class TestLexer:
    def test_quantities(self):
        kinds = [(t.kind, t.value) for t in tokenize("5G 40KB/s 50% 800")]
        assert kinds[:4] == [("QUANTITY", "5G"), ("QUANTITY", "40KB/s"),
                             ("QUANTITY", "50%"), ("NUMBER", "800")]

    def test_comment_to_eol(self):
        toks = tokenize("a % this is a comment\nb")
        assert [t.value for t in toks[:-1]] == ["a", "b"]

    def test_percent_suffix_not_comment(self):
        toks = tokenize("filled == 50% }")
        assert [t.value for t in toks[:-1]] == ["filled", "==", "50%", "}"]

    def test_dashed_identifiers(self):
        toks = tokenize("region: US-West")
        assert toks[2].value == "US-West"

    def test_operators(self):
        toks = tokenize("a == b && c >= d || e != f")
        ops = [t.value for t in toks if t.kind == "PUNCT"]
        assert ops == ["==", "&&", ">=", "||", "!="]

    def test_string_literal(self):
        toks = tokenize('x: "hello world"')
        assert toks[2].kind == "STRING" and toks[2].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('x: "oops')

    def test_position_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestParser:
    def test_tiera_structure(self):
        doc = parse_policy(BUILTIN_POLICIES["LowLatencyInstance"][1])
        assert doc.scope == "tiera"
        assert doc.name == "LowLatencyInstance"
        assert [p.name for p in doc.params] == ["t"]
        assert [t.name for t in doc.tiers] == ["tier1", "tier2"]
        assert len(doc.rules) == 2

    def test_wiera_regions_with_overrides(self):
        doc = parse_policy(BUILTIN_POLICIES["MultiPrimariesConsistency"][1])
        assert doc.scope == "wiera"
        assert len(doc.regions) == 3
        region1 = doc.regions[0]
        assert "tier1" in region1.tiers
        assert str(region1.props["region"]) == "US-West"

    def test_if_else_parses(self):
        doc = parse_policy(BUILTIN_POLICIES["PrimaryBackupConsistency"][1])
        rule = doc.rules[0]
        assert isinstance(rule.body[0], ast.If)
        assert len(rule.body[0].orelse) == 1

    def test_options(self):
        doc = parse_policy(BUILTIN_POLICIES["ChangePrimary"][1])
        assert "queue_interval" in doc.options

    def test_bad_scope(self):
        with pytest.raises(ParseError):
            parse_policy("Storage X() {}")

    def test_unterminated_body(self):
        with pytest.raises(ParseError):
            parse_policy("Tiera X() { tier1: {name: S3};")

    def test_event_requires_response_keyword(self):
        with pytest.raises(ParseError):
            parse_policy("Tiera X() { tier1: {name: S3}; "
                         "event(insert.into) : action { } }")


class TestCompilerTiera:
    def test_low_latency_semantics(self):
        policy = builtin_policy("LowLatencyInstance", params={"t": 7.0})
        assert isinstance(policy, LocalPolicy)
        tiers = {t.name: t for t in policy.tiers}
        assert tiers["tier1"].profile.lower() == "memcached"
        assert tiers["tier1"].capacity == 5 * GB
        insert = policy.insert_rules(None)[0]
        assert isinstance(insert.responses[0], SetAttrResponse)
        assert isinstance(insert.responses[1], StoreResponse)
        timer = policy.timer_rules()[0]
        assert isinstance(timer.event, TimerEvent)
        assert timer.event.period == 7.0
        copy = timer.responses[0]
        assert isinstance(copy, CopyResponse)
        assert copy.what.location == "tier1" and copy.what.dirty is True
        assert copy.clear_dirty

    def test_persistent_semantics(self):
        policy = builtin_policy("PersistentInstance")
        wt = policy.insert_rules("tier1")[0]
        assert isinstance(wt.responses[0], CopyResponse)
        filled = policy.filled_rules()[0]
        assert isinstance(filled.event, FilledEvent)
        assert filled.event.fraction == 0.5
        assert filled.responses[0].bandwidth == 40 * KB

    def test_missing_timer_param_raises(self):
        with pytest.raises(CompileError):
            compile_policy(BUILTIN_POLICIES["LowLatencyInstance"][1],
                           params={})

    def test_unknown_tier_profile_fails_fast(self):
        text = """
        Tiera X() {
            tier1: {name: QuantumStorage, size: 5G};
            event(insert.into) : response {
                store(what: insert.object, to: tier1);
            }
        }
        """
        with pytest.raises(KeyError):
            compile_policy(text)


class TestCompilerWiera:
    def test_multi_primaries_inferred(self):
        spec = builtin_policy("MultiPrimariesConsistency")
        assert isinstance(spec, GlobalPolicySpec)
        assert spec.consistency == "multi_primaries"
        assert spec.regions() == ["us-west", "us-east", "eu-west"]

    def test_primary_backup_inferred_with_primary(self):
        spec = builtin_policy("PrimaryBackupConsistency")
        assert spec.consistency == "primary_backup"
        assert spec.sync_replication is True
        assert spec.primary_placement().region == "us-west"

    def test_eventual_inferred(self):
        spec = builtin_policy("EventualConsistency")
        assert spec.consistency == "eventual"
        assert spec.sync_replication is False

    def test_dynamic_consistency_thresholds(self):
        spec = builtin_policy("DynamicConsistency")
        assert spec.dynamic is not None
        assert spec.dynamic.latency_threshold == pytest.approx(0.8)
        assert spec.dynamic.period == pytest.approx(30.0)
        assert spec.dynamic.weak == "eventual"
        assert spec.dynamic.strong == "multi_primaries"

    def test_change_primary_async_queue(self):
        spec = builtin_policy("ChangePrimary")
        assert spec.consistency == "primary_backup"
        assert spec.sync_replication is False
        assert spec.queue_interval == 60.0
        assert spec.change_primary is not None
        assert spec.change_primary.period == pytest.approx(15.0)

    def test_tier_overrides_applied(self):
        spec = builtin_policy("MultiPrimariesConsistency")
        local = spec.placements[0].local_policy
        tiers = {t.name: t for t in local.tiers}
        assert tiers["tier1"].profile.lower() == "localmemory"
        assert tiers["tier2"].profile.lower() == "localdisk"

    def test_reduced_cost_cold_rule_attached(self):
        spec = builtin_policy("ReducedCostPolicy")
        local = spec.placements[0].local_policy
        cold = local.cold_rules()
        assert len(cold) == 1
        assert cold[0].event.age == pytest.approx(120 * HOUR)
        move = cold[0].responses[0]
        assert isinstance(move, MoveResponse)
        assert move.what.min_idle == pytest.approx(120 * HOUR)
        assert spec.consistency == "local"  # single replica

    def test_simpler_consistency_subregions(self):
        spec = builtin_policy("SimplerConsistency")
        assert spec.regions() == ["us-west-1", "us-west-2", "us-west-3"]
        assert spec.primary_placement().region == "us-west-1"

    def test_unknown_local_policy_in_region(self):
        text = """
        Wiera X() {
            Region1 = {name: MysteryInstance, region: US-East};
            event(insert.into) : response {
                store(what: insert.object, to: local_instance);
                queue(what: insert.object, to: all_regions);
            }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text, env={})

    def test_every_builtin_compiles(self):
        for name in BUILTIN_POLICIES:
            assert builtin_policy(name) is not None
