"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvents:
    def test_event_lifecycle(self, sim):
        ev = sim.event()
        assert not ev.triggered and not ev.processed
        ev.succeed(42)
        assert ev.triggered
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_event_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_stops_simulation(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()  # no raise

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        t = sim.timeout(3.5, value="done")
        sim.run()
        assert sim.now == 3.5
        assert t.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until_time_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestProcesses:
    def test_simple_process(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "finished"

        p = sim.process(proc())
        result = sim.run(until=p)
        assert result == "finished"
        assert trace == [0.0, 1.0, 3.0]

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        assert sim.run(until=p) == 8

    def test_process_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("lost")

        def parent():
            try:
                yield sim.process(child())
            except KeyError:
                return "caught"
            return "not caught"

        p = sim.process(parent())
        assert sim.run(until=p) == "caught"

    def test_unwaited_process_failure_raises(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yield_non_event_raises_in_process(self, sim):
        def bad():
            yield 42

        p = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_wait_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()

        def late():
            value = yield ev
            return value

        p = sim.process(late())
        assert sim.run(until=p) == "early"

    def test_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as exc:
                return f"interrupted:{exc.cause}"

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(1.0)
            p.interrupt("wakeup")

        sim.process(killer())
        assert sim.run(until=p) == "interrupted:wakeup"
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run(until=p)
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_collects_values(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")

        def waiter():
            values = yield sim.all_of([t1, t2])
            return values

        p = sim.process(waiter())
        assert sim.run(until=p) == ["a", "b"]
        assert sim.now == 2.0

    def test_any_of_returns_first(self, sim):
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(1.0, value="fast")

        def waiter():
            index, value = yield sim.any_of([t1, t2])
            return index, value

        p = sim.process(waiter())
        assert sim.run(until=p) == (1, "fast")

    def test_all_of_empty_fires_immediately(self, sim):
        def waiter():
            values = yield sim.all_of([])
            return values

        p = sim.process(waiter())
        assert sim.run(until=p) == []

    def test_all_of_failure_propagates(self, sim):
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("child died"))

        def waiter():
            try:
                yield sim.all_of([bad, sim.timeout(10.0)])
            except ValueError:
                return "failed"
            return "ok"

        sim.process(failer())
        p = sim.process(waiter())
        assert sim.run(until=p) == "failed"


class TestDeterminism:
    def test_fifo_tie_breaking(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            def proc(t=tag):
                yield sim.timeout(1.0)
                order.append(t)
            sim.process(proc())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_repeat_run_identical(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(n):
                for i in range(n):
                    yield sim.timeout(0.5 * n)
                    trace.append((sim.now, n, i))

            for n in (1, 2, 3):
                sim.process(worker(n))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestFastPath:
    """Behavior pinned for the run-queue/deferred-resume fast path."""

    def test_runq_and_heap_interleave_in_seq_order(self, sim):
        """Zero-delay and equal-timestamp heap events keep creation order."""
        order = []

        def starter():
            yield sim.timeout(1.0)
            # At t=1.0, alternate heap entries (timeout stamped for now+0 is
            # runq; a 0-delay succeed is runq; events succeeded with delay
            # land on the heap at the same timestamp after runq stamps).
            for tag in ("a", "b", "c", "d"):
                ev = sim.event()
                ev.succeed(tag)
                ev.subscribe(lambda e: order.append(e.value))
            late = sim.event()
            late.succeed("via-heap", delay=0.0)
            late.subscribe(lambda e: order.append(e.value))

        sim.process(starter())
        sim.run()
        assert order == ["a", "b", "c", "d", "via-heap"]

    def test_heap_preempts_runq_when_seq_is_older(self, sim):
        """An equal-time heap entry created *earlier* fires first."""
        order = []

        def proc():
            t = sim.timeout(1.0, value="heap-old")   # heap, seq N
            t.subscribe(lambda e: order.append(e.value))
            yield sim.timeout(1.0)                   # heap, seq N+1 -> now=1
            ev = sim.event()
            ev.succeed("runq-new")                   # runq, seq N+2
            ev.subscribe(lambda e: order.append(e.value))

        sim.process(proc())
        sim.run()
        assert order == ["heap-old", "runq-new"]

    def test_subscribe_to_processed_event_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        sim.run()
        with pytest.raises(SimulationError):
            ev.subscribe(lambda e: None)

    def test_subscribe_overflow_preserves_order(self, sim):
        """First subscriber takes the waiter slot; the rest keep order."""
        ev = sim.event()
        order = []
        for i in range(5):
            ev.subscribe(lambda e, i=i: order.append(i))
        ev.succeed()
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_any_of_duplicate_event_reports_first_index(self, sim):
        t = sim.timeout(1.0, value="x")

        def waiter():
            index, value = yield sim.any_of([t, t, sim.timeout(9.0)])
            return index, value

        p = sim.process(waiter())
        assert sim.run(until=p) == (0, "x")

    def test_interrupt_storm_leaves_tombstones_harmless(self, sim):
        """Many processes interrupted off one hot event: the dead
        subscriptions must not fire and the survivors must all resume."""
        hot = sim.event()
        results = []

        def sleeper(i):
            try:
                value = yield hot
                results.append(("woke", i, value))
            except Interrupt:
                results.append(("interrupted", i, None))

        procs = [sim.process(sleeper(i)) for i in range(20)]
        sim.run(until=sim.now)  # let everyone park on `hot`

        def killer():
            yield sim.timeout(1.0)
            for p in procs[::2]:
                p.interrupt()
            hot.succeed("fire")

        sim.process(killer())
        sim.run()
        assert len(results) == 20
        interrupted = sorted(i for kind, i, _ in results
                             if kind == "interrupted")
        woke = sorted(i for kind, i, _ in results if kind == "woke")
        assert interrupted == list(range(0, 20, 2))
        assert woke == list(range(1, 20, 2))
        assert all(v == "fire" for kind, _, v in results if kind == "woke")

    def test_interrupted_process_can_wait_again(self, sim):
        """After an interrupt the process re-parks cleanly (timeout racing
        does this on every retry)."""
        def sleeper():
            for _ in range(3):
                try:
                    yield sim.timeout(100.0)
                except Interrupt:
                    pass
            yield sim.timeout(0.5)
            return sim.now

        p = sim.process(sleeper())

        def killer():
            for _ in range(3):
                yield sim.timeout(1.0)
                p.interrupt()

        sim.process(killer())
        assert sim.run(until=p) == pytest.approx(3.5)

    def test_events_processed_counts_every_dispatch(self, sim):
        """events_processed semantics are unchanged: one increment per
        processed event, including process-finish and deferred resumes."""
        done = sim.event()
        done.succeed()
        sim.run()
        base = sim.events_processed
        assert base == 1  # the `done` event itself

        def waiter():
            yield done          # deferred resume: counts as one event
            yield sim.timeout(1.0)

        p = sim.process(waiter())
        sim.run(until=p)
        # bootstrap + deferred resume + timeout + process-finish
        assert sim.events_processed == base + 4

    def test_cancel_in_runq_is_skipped(self, sim):
        ev = sim.event()
        ev.succeed("never")
        fired = []
        ev.subscribe(lambda e: fired.append(e.value))
        ev.cancel()
        sim.run()
        assert fired == []
        assert not ev.processed
