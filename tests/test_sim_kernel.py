"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvents:
    def test_event_lifecycle(self, sim):
        ev = sim.event()
        assert not ev.triggered and not ev.processed
        ev.succeed(42)
        assert ev.triggered
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_event_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_stops_simulation(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()  # no raise

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        t = sim.timeout(3.5, value="done")
        sim.run()
        assert sim.now == 3.5
        assert t.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until_time_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestProcesses:
    def test_simple_process(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "finished"

        p = sim.process(proc())
        result = sim.run(until=p)
        assert result == "finished"
        assert trace == [0.0, 1.0, 3.0]

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        assert sim.run(until=p) == 8

    def test_process_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("lost")

        def parent():
            try:
                yield sim.process(child())
            except KeyError:
                return "caught"
            return "not caught"

        p = sim.process(parent())
        assert sim.run(until=p) == "caught"

    def test_unwaited_process_failure_raises(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yield_non_event_raises_in_process(self, sim):
        def bad():
            yield 42

        p = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_wait_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()

        def late():
            value = yield ev
            return value

        p = sim.process(late())
        assert sim.run(until=p) == "early"

    def test_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as exc:
                return f"interrupted:{exc.cause}"

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(1.0)
            p.interrupt("wakeup")

        sim.process(killer())
        assert sim.run(until=p) == "interrupted:wakeup"
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run(until=p)
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_collects_values(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")

        def waiter():
            values = yield sim.all_of([t1, t2])
            return values

        p = sim.process(waiter())
        assert sim.run(until=p) == ["a", "b"]
        assert sim.now == 2.0

    def test_any_of_returns_first(self, sim):
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(1.0, value="fast")

        def waiter():
            index, value = yield sim.any_of([t1, t2])
            return index, value

        p = sim.process(waiter())
        assert sim.run(until=p) == (1, "fast")

    def test_all_of_empty_fires_immediately(self, sim):
        def waiter():
            values = yield sim.all_of([])
            return values

        p = sim.process(waiter())
        assert sim.run(until=p) == []

    def test_all_of_failure_propagates(self, sim):
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("child died"))

        def waiter():
            try:
                yield sim.all_of([bad, sim.timeout(10.0)])
            except ValueError:
                return "failed"
            return "ok"

        sim.process(failer())
        p = sim.process(waiter())
        assert sim.run(until=p) == "failed"


class TestDeterminism:
    def test_fifo_tie_breaking(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            def proc(t=tag):
                yield sim.timeout(1.0)
                order.append(t)
            sim.process(proc())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_repeat_run_identical(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(n):
                for i in range(n):
                    yield sim.timeout(0.5 * n)
                    trace.append((sim.now, n, i))

            for n in (1, 2, 3):
                sim.process(worker(n))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()
