"""Error-path and robustness tests for the policy DSL."""

import pytest

from repro.policydsl import (
    CompileError,
    ParseError,
    compile_policy,
    parse_policy,
)
from repro.policydsl.lexer import LexerError, tokenize


class TestLexerErrors:
    def test_stray_character(self):
        with pytest.raises(LexerError):
            tokenize("tier1 @ {}")

    def test_error_reports_position(self):
        with pytest.raises(LexerError) as err:
            tokenize("ok\nok @")
        assert err.value.line == 2


class TestParserErrors:
    def test_missing_policy_name(self):
        with pytest.raises(ParseError):
            parse_policy("Tiera () {}")

    def test_missing_paren_in_params(self):
        with pytest.raises(ParseError):
            parse_policy("Tiera X(time t {}")

    def test_bad_property_separator(self):
        with pytest.raises(ParseError):
            parse_policy("Tiera X() { tier1: {name ; S3}; }")

    def test_action_args_need_keywords(self):
        with pytest.raises(ParseError):
            parse_policy("""
            Tiera X() {
                tier1: {name: S3};
                event(insert.into) : response { store(tier1); }
            }
            """)

    def test_nested_tiers_only_in_regions(self):
        with pytest.raises(ParseError):
            parse_policy("""
            Tiera X() {
                tier1: {name: S3, inner = {name: EBS}};
            }
            """)

    def test_empty_policy_parses_but_fails_compile(self):
        doc = parse_policy("Tiera Empty() { }")
        with pytest.raises(ValueError):
            compile_policy(doc)


class TestCompilerErrors:
    def test_unknown_response(self):
        text = """
        Tiera X() {
            tier1: {name: S3};
            event(insert.into) : response {
                teleport(what: insert.object, to: tier1);
            }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text)

    def test_store_requires_target(self):
        text = """
        Tiera X() {
            tier1: {name: S3};
            event(insert.into) : response { store(what: insert.object); }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text)

    def test_unknown_event_path(self):
        text = """
        Tiera X() {
            tier1: {name: S3};
            event(moon.phase == full) : response {
                store(what: insert.object, to: tier1);
            }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text)

    def test_selector_unknown_attribute(self):
        text = """
        Tiera X() {
            tier1: {name: S3};
            event(insert.into) : response {
                store(what: insert.object, to: tier1);
            }
            event(time = 5) : response {
                copy(what: object.mood == grumpy, to: tier1);
            }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text)

    def test_wiera_without_regions(self):
        text = """
        Wiera X() {
            event(insert.into) : response {
                store(what: insert.object, to: local_instance);
                queue(what: insert.object, to: all_regions);
            }
        }
        """
        with pytest.raises(CompileError):
            compile_policy(text, env={})

    def test_uninferrable_consistency(self):
        text = """
        Wiera X() {
            Region1 = {name: M, region: US-East};
            Region2 = {name: M, region: US-West};
            event(insert.into) : response {
                encrypt(what: insert.object);
            }
        }
        """
        from repro.tiera.policy import memory_only_policy
        with pytest.raises(CompileError):
            compile_policy(text, env={"M": memory_only_policy()})

    def test_unknown_consistency_target_name(self):
        text = """
        Wiera X() {
            Region1 = {name: M, region: US-East};
            Region2 = {name: M, region: US-West};
            event(insert.into) : response {
                lock(what: insert.key);
                store(what: insert.object, to: local_instance);
                copy(what: insert.object, to: all_regions);
                release(what: insert.key);
            }
            event(threshold.type == put) : response {
                if (threshold.latency > 800 ms && threshold.period > 30 seconds)
                    change_policy(what: consistency, to: QuantumConsistency);
            }
        }
        """
        from repro.tiera.policy import memory_only_policy
        with pytest.raises(CompileError):
            compile_policy(text, env={"M": memory_only_policy()})


class TestDslRobustness:
    def test_figure_typo_tolerated(self):
        """The paper's Figure 4 literally writes 'insert.oject'."""
        text = """
        Wiera Typo() {
            Region1 = {name: M, region: US-East};
            Region2 = {name: M, region: US-West};
            event(insert.into) : response {
                store(what: insert.oject, to: local_instance);
                queue(what: insert.object, to: all_regions);
            }
        }
        """
        from repro.tiera.policy import memory_only_policy
        spec = compile_policy(text, env={"M": memory_only_policy()})
        assert spec.consistency == "eventual"

    def test_comments_everywhere(self):
        text = """
        % leading comment
        Tiera C() {   % trailing comment
            tier1: {name: S3};  % on a declaration
            % a whole line
            event(insert.into) : response {
                store(what: insert.object, to: tier1); % after a statement
            }
        }
        """
        policy = compile_policy(text)
        assert policy.name == "C"

    def test_flexible_separators_in_regions(self):
        """Figures mix ':' and '=' inside region property maps."""
        text = """
        Wiera Mixed() {
            Region1 = {name: M, region = US-East, primary: True};
            Region2 = {name = M, region: US-West};
            event(insert.into) : response {
                if (local_instance.isPrimary == True) {
                    store(what: insert.object, to: local_instance);
                    copy(what: insert.object, to: all_regions);
                } else
                    forward(what: insert.object, to: primary_instance);
            }
        }
        """
        from repro.tiera.policy import memory_only_policy
        spec = compile_policy(text, env={"M": memory_only_policy()})
        assert spec.primary_placement().region == "us-east"
