"""Golden fixture scenario for the serial EC repairer.

``tests/golden/ec_repair_serial.json`` fingerprints a site-crash repair
as executed by the *pre-pipeline* (seed) ``ECRepairer``: six sites,
EC(2,2), eight objects, one fragment-holder host crashed and left down,
then two driven repair rounds on the leader (the first re-homes every
lost fragment onto a spare site, the second verifies and is a no-op).

The fixture pins every kernel-visible observable — final clock, event
count, network message/byte totals, fragments rebuilt, and the detailed
store digest — so the pipelined rewrite's ``repair_concurrency=1`` path
can be asserted bit-identical to the seed repairer.

Regenerate (only when intentionally re-pinning) with::

    PYTHONPATH=src python tests/ec_repair_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.core.global_policy import (GlobalPolicySpec, RedundancySpec,
                                      RegionPlacement)
from repro.ec.protocol import decode_manifest
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / \
    "ec_repair_serial.json"

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)
#: six (region, provider) sites: n=4 fragment holders + two spares
SITES = ((US_EAST, "aws"), (US_WEST, "aws"), (EU_WEST, "aws"),
         (ASIA_EAST, "aws"), (US_EAST, "gcp"), (US_WEST, "gcp"))
PROVIDERS = {US_EAST: ("aws", "gcp"), US_WEST: ("aws", "gcp"),
             EU_WEST: ("aws",), ASIA_EAST: ("aws",)}

OBJECTS = 8
VALUE_SIZE = 4096

#: metric totals pinned by the fixture (kernel-visible quantities only:
#: the seed repairer and the rewrite must move the same messages/bytes)
PINNED_METRICS = ("net.messages", "net.bytes", "ec.fragments_rebuilt",
                  "ec.repair_rounds")


def golden_run(repair_concurrency: int | None = None) -> dict:
    """Execute the pinned scenario and return its fingerprint.

    ``repair_concurrency`` is forwarded to :class:`RedundancySpec` when
    given (the seed spec has no such field, so the generator passes
    None); the fixture asserts concurrency=1 reproduces the seed run.
    """
    dep = build_deployment(list(REGIONS), providers=PROVIDERS, seed=17)
    spec_kwargs = dict(k=2, m=2, repair_interval=1000.0)
    if repair_concurrency is not None:
        spec_kwargs["repair_concurrency"] = repair_concurrency
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(
            RegionPlacement(region, memory_only_policy(), provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        redundancy=RedundancySpec(**spec_kwargs))
    instances = dep.start_wiera_instance("ec", spec)
    tim = dep.tim("ec")
    client = dep.add_client(US_EAST, instances=instances)

    payloads = {f"obj{i}": bytes([i + 1]) * VALUE_SIZE
                for i in range(OBJECTS)}

    def write_phase():
        for key, value in payloads.items():
            yield from client.put(key, value)
    dep.drive(write_phase())

    # Crash the holder of fragment 1 of obj0 and leave it down for the
    # whole repair, so every object's lost fragment is re-homed.
    coordinator = dep.instance("ec", US_EAST)
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("obj0", run_rules=False))[0])
    victim_id = manifest["frags"][1]
    victim_host = tim.instances[victim_id].instance.host
    faults = dep.fault_schedule("golden")
    faults.crash(at=dep.sim.now + 0.25, host=victim_host.name,
                 duration=500.0)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.5)

    # The repair leader is the first alive holder in fragment-index
    # order: the holder of fragment 0 (the coordinator of every put).
    leader_id = manifest["frags"][0]
    leader = tim.instances[leader_id].instance
    repairer = leader.protocol._repairers[leader_id]

    # Round 1 re-homes the lost fragments; round 2 must be a no-op.
    dep.drive(repairer.repair_round(), name="repair-round-1")
    rebuilt_after_round1 = repairer.fragments_rebuilt
    dep.drive(repairer.repair_round(), name="repair-round-2")

    # Post-repair readback: every object decodes cleanly.
    def read_phase():
        for key, value in payloads.items():
            res = yield from client.get(key)
            assert res["data"] == value, key
    dep.drive(read_phase())

    return {
        "final_clock": repr(dep.sim.now),
        "events_processed": dep.sim.events_processed,
        "rebuilt_after_round1": rebuilt_after_round1,
        "metric_totals": {name: dep.metric_total(name)
                          for name in PINNED_METRICS},
        "store_digest": dep.store_digest(detail=True),
    }


if __name__ == "__main__":
    fingerprint = golden_run()
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(fingerprint, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    print(json.dumps(fingerprint, indent=2))
