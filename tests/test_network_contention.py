"""Bandwidth contention and throughput-limit behaviours."""

import pytest

from repro.net import Network, US_EAST, US_WEST
from repro.sim import Simulator
from repro.sim.rpc import RpcNode
from repro.util.units import KB, MB


@pytest.fixture
def sim():
    return Simulator()


class TestEgressContention:
    def test_bulk_transfer_delays_foreground_rpc(self, sim):
        """A big replication transfer queues behind the same egress link,
        delaying a small foreground message — the physical reason the
        paper caps policy copies with ``bandwidth:`` limits."""
        net = Network(sim)
        src = net.add_host("src", US_EAST, vm="aws.t2_micro")
        dst = net.add_host("dst", US_WEST, vm="aws.t2_micro")
        src.egress.rate = 1 * MB  # easy arithmetic
        a = RpcNode(sim, net, src, name="a")
        b = RpcNode(sim, net, dst, name="b")

        def noop(msg):
            yield sim.timeout(0.0)
        b.register("noop", noop)

        done = {}

        def bulk():
            yield from net.transmit(src, dst, 2 * MB)  # 2 s on the wire
            done["bulk"] = sim.now

        def ping():
            yield sim.timeout(0.01)  # starts while bulk is transmitting
            yield a.call(b, "noop")
            done["ping"] = sim.now

        sim.process(bulk())
        sim.process(ping())
        sim.run()
        # the ping's request waited for the bulk transfer's serialization
        assert done["ping"] > 2.0
        assert done["bulk"] > 2.0

    def test_transfers_on_different_hosts_independent(self, sim):
        net = Network(sim)
        a1 = net.add_host("a1", US_EAST, vm="aws.t2_micro")
        a2 = net.add_host("a2", US_EAST, vm="aws.t2_micro")
        dst = net.add_host("d", US_WEST)
        a1.egress.rate = 1 * MB
        a2.egress.rate = 1 * MB
        done = {}

        def send(tag, host):
            yield from net.transmit(host, dst, 1 * MB)
            done[tag] = sim.now

        sim.process(send("one", a1))
        sim.process(send("two", a2))
        sim.run()
        # parallel links: both finish ~1 s + propagation, not 2 s
        assert done["one"] < 1.2 and done["two"] < 1.2


class TestThroughputCaps:
    def test_sustained_rate_limited_by_egress(self, sim):
        net = Network(sim)
        src = net.add_host("s", US_EAST)
        dst = net.add_host("d", US_WEST)
        src.egress.rate = 512 * KB

        def sender():
            for _ in range(16):
                yield from net.transmit(src, dst, 64 * KB)
        proc = sim.process(sender())
        sim.run(until=proc)
        # 1 MB at 512 KB/s = 2 s of serialization, plus 16 sequential
        # propagation delays (the sender waits for each delivery)
        assert sim.now == pytest.approx(2.0 + 16 * 0.035, rel=0.05)
        assert net.bytes_transferred == 16 * 64 * KB

    def test_message_counter(self, sim):
        net = Network(sim)
        src = net.add_host("s", US_EAST)
        dst = net.add_host("d", US_WEST)

        def sender():
            yield from net.transmit(src, dst, 10)
            yield from net.transmit(src, dst, 10)
        proc = sim.process(sender())
        sim.run(until=proc)
        assert net.messages_sent == 2
