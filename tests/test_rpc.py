"""Tests for the RPC layer (the Thrift substitute)."""

import pytest

from repro.net import HostDownError, Network, US_EAST, US_WEST
from repro.sim import Simulator
from repro.sim.rpc import (
    NoSuchMethodError,
    RpcNode,
    call_with_timeout,
)
from repro.util.units import MS


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    a = RpcNode(sim, net, net.add_host("a", US_EAST), name="a")
    b = RpcNode(sim, net, net.add_host("b", US_WEST), name="b")
    return sim, net, a, b


def test_round_trip_latency_and_result(world):
    sim, net, a, b = world

    def echo(msg):
        yield sim.timeout(0.001)
        return {"echo": msg.args["x"]}

    b.register("echo", echo)

    def main():
        t0 = sim.now
        result = yield a.call(b, "echo", {"x": 5})
        return result, sim.now - t0

    p = sim.process(main())
    result, elapsed = sim.run(until=p)
    assert result == {"echo": 5}
    assert elapsed == pytest.approx(2 * 35 * MS + 0.001)


def test_handler_must_be_generator(world):
    _, _, _, b = world
    with pytest.raises(TypeError):
        b.register("bad", lambda msg: 42)


def test_no_such_method(world):
    sim, net, a, b = world

    def main():
        yield a.call(b, "missing")

    p = sim.process(main())
    with pytest.raises(NoSuchMethodError):
        sim.run(until=p)


def test_remote_exception_propagates(world):
    sim, net, a, b = world

    def boom(msg):
        yield sim.timeout(0.0)
        raise ValueError("remote failure")

    b.register("boom", boom)

    def main():
        try:
            yield a.call(b, "boom")
        except ValueError as exc:
            return str(exc)

    p = sim.process(main())
    assert sim.run(until=p) == "remote failure"


def test_down_destination_raises(world):
    sim, net, a, b = world
    def noop(msg):
        yield sim.timeout(0.0)

    b.register("noop", noop)
    b.host.crash()

    def main():
        yield a.call(b, "noop")

    p = sim.process(main())
    with pytest.raises(HostDownError):
        sim.run(until=p)


def test_oneway_swallows_errors(world):
    sim, net, a, b = world
    b.host.crash()
    a.send_oneway(b, "anything")
    sim.run()  # must not raise
    assert a.dropped_oneways == 1


def test_oneway_executes_handler(world):
    sim, net, a, b = world
    seen = []

    def note(msg):
        yield sim.timeout(0.0)
        seen.append(msg.args["v"])

    b.register("note", note)
    a.send_oneway(b, "note", {"v": 9})
    sim.run()
    assert seen == [9]


def test_register_service_prefix(world):
    sim, net, a, b = world

    class Service:
        def rpc_ping(self, msg):
            yield sim.timeout(0.0)
            return "pong"

        def not_rpc(self):
            pass

    b.register_service(Service())

    def main():
        result = yield a.call(b, "ping")
        return result

    p = sim.process(main())
    assert sim.run(until=p) == "pong"


def test_payload_size_affects_latency(world):
    sim, net, a, b = world
    a.host.egress.rate = 1024 * 1024  # 1 MB/s

    def sink(msg):
        yield sim.timeout(0.0)
        return None

    b.register("sink", sink)

    def timed(size):
        def main():
            t0 = sim.now
            yield a.call(b, "sink", {"data": b"x"}, size=size)
            return sim.now - t0
        return main

    p1 = sim.process(timed(1024)())
    small = sim.run(until=p1)
    p2 = sim.process(timed(1024 * 512)())
    large = sim.run(until=p2)
    assert large > small + 0.4  # 512 KB at 1 MB/s adds ~0.5 s


def test_call_with_timeout_success(world):
    sim, net, a, b = world

    def quick(msg):
        yield sim.timeout(0.001)
        return "fast"

    b.register("quick", quick)

    def main():
        result = yield from call_with_timeout(sim, a.call(b, "quick"), 10.0)
        return result

    p = sim.process(main())
    assert sim.run(until=p) == "fast"


def test_call_with_timeout_expires(world):
    sim, net, a, b = world

    def slow(msg):
        yield sim.timeout(60.0)
        return "late"

    b.register("slow", slow)

    def main():
        try:
            yield from call_with_timeout(sim, a.call(b, "slow"), 1.0)
        except TimeoutError:
            return "timed out"

    p = sim.process(main())
    assert sim.run(until=p) == "timed out"
    sim.run()  # the late reply must not crash the simulation


def test_requests_served_counter(world):
    sim, net, a, b = world
    def noop(msg):
        yield sim.timeout(0.0)

    b.register("noop", noop)

    def main():
        for _ in range(3):
            yield a.call(b, "noop")

    p = sim.process(main())
    sim.run(until=p)
    assert b.requests_served == 3
