"""Property-based tests (hypothesis) on core invariants.

Covered invariants:
* simulation determinism and causal ordering of the kernel;
* last-write-wins convergence: any interleaving of the same update set
  converges every replica to the same winner;
* transform chains always decode to the original bytes;
* the storage backend never exceeds capacity nor loses committed bytes;
* the DSL round-trips structural content for generated policies.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import Simulator
from repro.storage import make_tier
from repro.tiera import transforms
from repro.tiera.objects import ObjectRecord, VersionMeta


# ---------------------------------------------------------------------------
# kernel determinism & ordering
# ---------------------------------------------------------------------------

@st.composite
def schedules(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (draw(st.floats(min_value=0, max_value=100, allow_nan=False)),
         draw(st.integers(min_value=0, max_value=5)))
        for _ in range(n)
    ]


class TestKernelProperties:
    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_time_order(self, plan):
        sim = Simulator()
        fired = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        for i, (delay, _) in enumerate(plan):
            sim.process(proc(delay, i))
        sim.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(plan)

    @given(schedules())
    @settings(max_examples=30, deadline=None)
    def test_same_plan_same_trace(self, plan):
        def run_once():
            sim = Simulator()
            trace = []

            def proc(delay, tag):
                yield sim.timeout(delay)
                trace.append((sim.now, tag))

            for i, (delay, _) in enumerate(plan):
                sim.process(proc(delay, i))
            sim.run()
            return trace
        assert run_once() == run_once()

    @given(st.lists(st.floats(min_value=0.001, max_value=10,
                              allow_nan=False),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_sequential_timeouts_accumulate(self, delays):
        sim = Simulator()

        def proc():
            for d in delays:
                yield sim.timeout(d)
            return sim.now
        p = sim.process(proc())
        assert sim.run(until=p) == pytest.approx(sum(delays))


# ---------------------------------------------------------------------------
# last-write-wins convergence
# ---------------------------------------------------------------------------

@st.composite
def update_sets(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    updates = []
    for i in range(n):
        updates.append({
            "version": draw(st.integers(min_value=1, max_value=4)),
            "last_modified": draw(st.floats(min_value=0, max_value=100,
                                            allow_nan=False)),
            "data": bytes([i]),
            "origin": f"o{i}",
        })
    return updates


def lww_apply(state, update):
    """Reference LWW merge on a single-slot state dict."""
    current = state.get(update["version"])
    if current is None or (update["last_modified"]
                           > current["last_modified"]):
        state[update["version"]] = update


class TestLwwProperties:
    @given(update_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_order_independent_convergence(self, updates, rnd):
        """Applying the same updates in any order yields the same visible
        latest version on a real instance (ties broken identically)."""
        from repro.net import Network, US_EAST
        from repro.tiera import TieraInstance
        from repro.tiera.policy import memory_only_policy
        from repro.util.rng import RngRegistry

        # de-duplicate exact (version, mtime) ties: LWW cannot order them
        seen = set()
        unique = []
        for u in updates:
            key = (u["version"], u["last_modified"])
            if key not in seen:
                seen.add(key)
                unique.append(u)

        def final_state(order):
            sim = Simulator()
            net = Network(sim)
            host = net.add_host("h", US_EAST)
            inst = TieraInstance(sim, net, host, "i", US_EAST,
                                 memory_only_policy(), rng=RngRegistry(0))

            def apply_all():
                for u in order:
                    yield from inst.apply_replica_update(
                        "k", u["version"], u["last_modified"], u["data"],
                        u["origin"])
            proc = sim.process(apply_all())
            sim.run(until=proc)
            record = inst.meta.get_record("k")
            meta = record.latest()
            data = inst.tier("tier1").peek(f"k#v{meta.version}")
            return meta.version, data

        shuffled = list(unique)
        rnd.shuffle(shuffled)
        assert final_state(unique) == final_state(shuffled)

    @given(update_sets())
    @settings(max_examples=60, deadline=None)
    def test_reference_model_winner(self, updates):
        """The winner per version slot is always the max-mtime update."""
        state = {}
        for u in updates:
            lww_apply(state, u)
        for version, winner in state.items():
            candidates = [u for u in updates if u["version"] == version]
            assert winner["last_modified"] == max(
                u["last_modified"] for u in candidates)


# ---------------------------------------------------------------------------
# transforms
# ---------------------------------------------------------------------------

class TestTransformProperties:
    KEYRING = {"default": "secret", "alt": "other"}

    @given(st.binary(max_size=4096),
           st.lists(st.sampled_from(["zlib", "xor:default", "xor:alt"]),
                    max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_chain_roundtrip(self, payload, chain):
        data = payload
        for name in chain:
            data = transforms.encode(name, data, self.KEYRING)
        assert transforms.decode_chain(tuple(chain), data,
                                       self.KEYRING) == payload

    @given(st.binary(min_size=1, max_size=1024))
    @settings(max_examples=50, deadline=None)
    def test_xor_changes_bytes(self, payload):
        encoded = transforms.encode("xor:default", payload, self.KEYRING)
        assert len(encoded) == len(payload)
        if len(payload) >= 8:  # overwhelmingly likely to differ
            assert encoded != payload

    def test_unknown_transform(self):
        with pytest.raises(transforms.TransformError):
            transforms.encode("rot13", b"x", self.KEYRING)
        with pytest.raises(transforms.TransformError):
            transforms.decode("zlib", b"not zlib data", self.KEYRING)

    def test_missing_key(self):
        with pytest.raises(transforms.TransformError):
            transforms.encode("xor:nope", b"x", self.KEYRING)


# ---------------------------------------------------------------------------
# storage safety
# ---------------------------------------------------------------------------

@st.composite
def storage_ops(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "overwrite", "delete"]))
        key = f"k{draw(st.integers(min_value=0, max_value=5))}"
        size = draw(st.integers(min_value=0, max_value=3000))
        ops.append((kind, key, size))
    return ops


class TestStorageProperties:
    @given(storage_ops())
    @settings(max_examples=60, deadline=None)
    def test_usage_accounting_exact(self, ops):
        sim = Simulator()
        tier = make_tier(sim, "memcached", 10_000,
                         rng=np.random.default_rng(0))
        shadow = {}

        def apply_all():
            for kind, key, size in ops:
                try:
                    if kind in ("write", "overwrite"):
                        yield from tier.write(key, b"x" * size)
                        shadow[key] = size
                    else:
                        if key in shadow:
                            yield from tier.delete(key)
                            del shadow[key]
                except Exception:
                    continue  # capacity refusals leave state unchanged
        proc = sim.process(apply_all())
        sim.run(until=proc)
        assert tier.used_bytes == sum(shadow.values())
        assert tier.used_bytes <= tier.capacity
        for key, size in shadow.items():
            assert len(tier.peek(key)) == size


# ---------------------------------------------------------------------------
# object records
# ---------------------------------------------------------------------------

class TestRecordProperties:
    @given(st.lists(st.integers(min_value=1, max_value=50),
                    min_size=1, max_size=20, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_latest_is_max(self, versions):
        record = ObjectRecord(key="k")
        for v in versions:
            record.add_version(VersionMeta(
                version=v, size=1, created_at=0, last_modified=0,
                last_accessed=0))
        assert record.latest_version == max(versions)
        assert record.version_list() == sorted(versions)

    @given(st.lists(st.integers(min_value=1, max_value=20),
                    min_size=2, max_size=10, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_drop_preserves_max_invariant(self, versions):
        record = ObjectRecord(key="k")
        for v in versions:
            record.add_version(VersionMeta(
                version=v, size=1, created_at=0, last_modified=0,
                last_accessed=0))
        record.drop_version(max(versions))
        remaining = sorted(versions)[:-1]
        assert record.latest_version == max(remaining)
