"""Tests for the global lock service and Curator-like client."""

import pytest

from repro.coordination import GlobalLockClient, LockService
from repro.coordination.lock_service import LockServiceError
from repro.net import Network, US_EAST, US_WEST
from repro.sim import Simulator
from repro.sim.rpc import RpcNode
from repro.util.units import MS


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    zk_node = RpcNode(sim, net, net.add_host("zk", US_EAST), name="zk")
    service = LockService(sim, zk_node, default_lease=30.0)
    a = RpcNode(sim, net, net.add_host("a", US_WEST), name="a")
    b = RpcNode(sim, net, net.add_host("b", US_WEST), name="b")
    return sim, service, zk_node, a, b


def test_acquire_release(world):
    sim, service, zk, a, b = world
    client = GlobalLockClient(a, zk, handshake=False)

    def main():
        yield from client.acquire("key")
        assert service.held_keys() == ["key"]
        yield from client.release("key")

    sim.run(until=sim.process(main()))
    assert service.held_keys() == []
    assert service.grants == 1 and service.releases == 1


def test_mutual_exclusion_fifo(world):
    sim, service, zk, a, b = world
    ca = GlobalLockClient(a, zk, owner="ca", handshake=False)
    cb = GlobalLockClient(b, zk, owner="cb", handshake=False)
    trace = []

    def worker(client, tag, hold):
        yield from client.acquire("key")
        trace.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        trace.append((tag, "out", sim.now))
        yield from client.release("key")

    sim.process(worker(ca, "a", 2.0))
    sim.process(worker(cb, "b", 1.0))
    sim.run()
    # a entered first (FIFO by arrival) and b waited for a's release.
    assert [t[0] + t[1] for t in trace] == ["ain", "aout", "bin", "bout"]
    b_in = next(t for t in trace if t[0] == "b" and t[1] == "in")[2]
    a_out = next(t for t in trace if t[0] == "a" and t[1] == "out")[2]
    assert b_in >= a_out


def test_reentrant_acquire(world):
    sim, service, zk, a, b = world
    client = GlobalLockClient(a, zk, handshake=False)

    def main():
        yield from client.acquire("key")
        result = yield from client.acquire("key")
        return result

    result = sim.run(until=sim.process(main()))
    assert result.get("reentrant") is True


def test_release_by_non_holder_fails(world):
    sim, service, zk, a, b = world
    ca = GlobalLockClient(a, zk, owner="ca", handshake=False)
    cb = GlobalLockClient(b, zk, owner="cb", handshake=False)

    def main():
        yield from ca.acquire("key")
        cb.held.add("key")  # forged client state
        try:
            yield from cb.release("key")
        except LockServiceError:
            return "denied"

    assert sim.run(until=sim.process(main())) == "denied"


def test_lease_expiry_reclaims_lock(world):
    sim, service, zk, a, b = world
    ca = GlobalLockClient(a, zk, owner="ca", lease=5.0, handshake=False)
    cb = GlobalLockClient(b, zk, owner="cb", handshake=False)
    granted = []

    def crasher():
        yield from ca.acquire("key")
        ca.abandon_all()  # crash without releasing

    def waiter():
        yield sim.timeout(0.5)
        yield from cb.acquire("key")
        granted.append(sim.now)
        yield from cb.release("key")

    sim.process(crasher())
    sim.process(waiter())
    sim.run()
    assert service.expirations == 1
    assert granted and granted[0] >= 5.0


def test_renew_extends_lease(world):
    sim, service, zk, a, b = world
    ca = GlobalLockClient(a, zk, owner="ca", lease=5.0, handshake=False)
    still_held = []

    def holder():
        yield from ca.acquire("key")
        for _ in range(3):
            yield sim.timeout(4.0)
            yield from ca.renew("key")
        still_held.append(service.held_keys())
        yield from ca.release("key")

    sim.run(until=sim.process(holder()))
    assert still_held == [["key"]]
    assert service.expirations == 0


def test_lock_latency_includes_wan_rtt(world):
    """MultiPrimaries pays lock RTTs — the Fig. 7 latency driver."""
    sim, service, zk, a, b = world
    client = GlobalLockClient(a, zk, handshake=True)

    def main():
        t0 = sim.now
        yield from client.acquire("key")
        return sim.now - t0

    elapsed = sim.run(until=sim.process(main()))
    # handshake + acquire = two US West <-> US East round trips (70 ms each)
    assert elapsed >= 2 * 2 * 35 * MS


def test_release_without_hold_is_client_error(world):
    sim, service, zk, a, b = world
    client = GlobalLockClient(a, zk, handshake=False)

    def main():
        yield from client.release("never")

    p = sim.process(main())
    with pytest.raises(RuntimeError):
        sim.run(until=p)
