"""Consistency semantics under partial failure."""


from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


def deploy(consistency, **kwargs):
    dep = build_deployment(REGIONS, seed=53)
    spec = GlobalPolicySpec(
        name="cf",
        placements=tuple(
            RegionPlacement(r, memory_only_policy(),
                            primary=(r == US_EAST)) for r in REGIONS),
        consistency=consistency, **kwargs)
    instances = dep.start_wiera_instance("cf", spec)
    return dep, instances


class TestMultiPrimariesUnderFailure:
    def test_put_fails_when_replica_down(self):
        """Strong consistency cannot silently drop a replica: the put
        surfaces the failure instead of acking a partial write."""
        dep, instances = deploy("multi_primaries")
        dep.instance("cf", EU_WEST).host.down = True
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            try:
                yield from client.put("k", b"v")
            except Exception as exc:
                return type(exc).__name__
            return "acked"
        outcome = dep.drive(app())
        assert outcome != "acked"

    def test_lock_released_after_failed_put(self):
        """A failed broadcast must not wedge the key's global lock."""
        dep, instances = deploy("multi_primaries")
        dep.instance("cf", EU_WEST).host.down = True
        client = dep.add_client(US_EAST, instances=instances)

        def failing():
            try:
                yield from client.put("k", b"v1")
            except Exception:
                pass
        dep.drive(failing())
        assert dep.wiera.lock_service.held_keys() == []
        # recover and write again: the key is usable
        dep.instance("cf", EU_WEST).host.down = False

        def retry():
            result = yield from client.put("k", b"v2")
            return result
        result = dep.drive(retry())
        assert result["version"] >= 1


class TestEventualUnderFailure:
    def test_put_acks_despite_dead_peer(self):
        dep, instances = deploy("eventual", queue_interval=1.0)
        dep.instance("cf", EU_WEST).host.down = True
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            result = yield from client.put("k", b"v")
            return result
        result = dep.drive(app())
        assert result["version"] == 1
        dep.sim.run(until=dep.sim.now + 5.0)
        # the live peer converged; the dead one did not
        assert dep.instance("cf", US_WEST).meta.get_record("k") is not None
        assert dep.instance("cf", EU_WEST).meta.get_record("k") is None

    def test_recovered_peer_catches_up_on_next_write(self):
        dep, instances = deploy("eventual", queue_interval=1.0)
        eu = dep.instance("cf", EU_WEST)
        eu.host.down = True
        client = dep.add_client(US_EAST, instances=instances)

        def app():
            yield from client.put("k", b"v1")
            yield dep.sim.timeout(5.0)
            eu.host.down = False
            yield from client.put("k", b"v2")   # next write re-ships
            yield dep.sim.timeout(5.0)
        dep.drive(app())
        record = eu.meta.get_record("k")
        assert record is not None and record.latest_version == 2


class TestPrimaryBackupUnderFailure:
    def test_forwarding_fails_when_primary_down(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        dep.instance("cf", US_EAST).host.down = True
        client = dep.add_client(EU_WEST, instances=instances)

        def app():
            try:
                yield from client.put("k", b"v")
            except Exception as exc:
                return type(exc).__name__
            return "acked"
        # the EU instance forwards into a dead primary: failure surfaces
        assert dep.drive(app()) != "acked"

    def test_manual_promotion_restores_service(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        tim = dep.tim("cf")
        dep.instance("cf", US_EAST).host.down = True
        new_primary = next(iid for iid, rec in tim.instances.items()
                           if rec.region == EU_WEST)
        # operator (or failure policy) promotes a live backup
        tim.protocol.set_primary(new_primary, dep.sim.now)
        client = dep.add_client(EU_WEST, instances=instances)

        def app():
            try:
                result = yield from client.put("k", b"v")
            except Exception:
                return None
            return result
        result = dep.drive(app())
        # EU instance is now primary; its local put succeeds even though
        # the dead old primary misses the broadcast... unless sync
        # replication makes it fail — either way the primary moved:
        assert tim.protocol.config.primary_id == new_primary
        del result
