"""Tests for instance metadata persistence (the BerkeleyDB role, §4.2)."""

import pytest

from repro.net import Network, US_EAST
from repro.sim import Simulator
from repro.tiera import TieraInstance
from repro.tiera.policy import write_through_policy
from repro.util.rng import RngRegistry


@pytest.fixture
def instance():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("h", US_EAST)
    inst = TieraInstance(sim, net, host, "p1", US_EAST,
                         write_through_policy(), rng=RngRegistry(1))
    inst.start()
    return sim, inst


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def test_checkpoint_restore_roundtrip(instance, tmp_path):
    sim, inst = instance
    run(sim, inst.local_put("a", b"one", tags=("keep",)))
    run(sim, inst.local_put("a", b"two"))
    run(sim, inst.local_put("b", b"bee"))
    path = tmp_path / "meta.json"
    inst.checkpoint_metadata(path)

    # simulate a restart: blow away the metadata, reload it
    inst.meta._data.clear()
    inst.meta._keys_dirty = True
    inst.restore_metadata(path)

    record = inst.meta.get_record("a")
    assert record.latest_version == 2
    assert record.tags == {"keep"}
    # the bytes are still on the durable tiers, so reads work again
    data, meta, _ = run(sim, inst.read_version("a"))
    assert data == b"two"


def test_restore_drops_ghost_locations(instance, tmp_path):
    sim, inst = instance
    run(sim, inst.local_put("k", b"v"))
    path = tmp_path / "meta.json"
    inst.checkpoint_metadata(path)

    # the memory tier loses its contents across the restart
    inst.tier("tier1").wipe()
    inst.restore_metadata(path)
    meta = inst.meta.get_record("k").latest()
    assert meta.locations == {"tier2"}
    data, *_ = run(sim, inst.read_version("k"))
    assert data == b"v"


def test_restore_with_unknown_tier(instance, tmp_path):
    sim, inst = instance
    run(sim, inst.local_put("k", b"v"))
    record = inst.meta.get_record("k")
    record.latest().locations.add("tier_from_old_policy")
    path = tmp_path / "meta.json"
    inst.checkpoint_metadata(path)
    inst.restore_metadata(path)
    assert "tier_from_old_policy" not in \
        inst.meta.get_record("k").latest().locations
