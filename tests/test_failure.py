"""Tests for failure handling (§4.4): heartbeat detection, replica
re-creation, resync, and client failover."""

import pytest

from repro import (
    FailureSpec,
    GlobalPolicySpec,
    RegionPlacement,
    build_deployment,
)
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import write_back_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


def deploy(min_replicas=3, heartbeat=2.0, missed=2, regions=REGIONS,
           spare_in=None):
    dep = build_deployment(regions, heartbeat_interval=heartbeat, seed=13)
    if spare_in:
        # a second server in one region, available as a respawn target
        host = dep.network.add_host(f"spare-{spare_in}", spare_in,
                                    vm="aws.t2_micro")
        from repro.tiera import TieraServer
        spare = TieraServer(dep.sim, dep.network, host, spare_in,
                            rng=dep.rng)
        dep.servers[(spare_in, "aws-spare")] = spare
        dep.drive(spare.connect_to_tsm(dep.wiera.node))
    dep.wiera.tsm.missed_threshold = missed
    spec = GlobalPolicySpec(
        name="ft",
        placements=tuple(RegionPlacement(r, write_back_policy())
                         for r in regions),
        consistency="eventual", queue_interval=0.5,
        failure=FailureSpec(min_replicas=min_replicas,
                            heartbeat_interval=heartbeat,
                            missed_heartbeats=missed))
    instances = dep.start_wiera_instance("ft", spec)
    return dep, instances


class TestHeartbeat:
    def test_death_detected(self):
        dep, instances = deploy()
        server = dep.server(US_WEST)
        server.crash()
        dep.sim.run(until=dep.sim.now + 15.0)
        assert dep.wiera.tsm.deaths_detected == 1
        record = dep.wiera.tsm.servers[server.server_id]
        assert not record.alive

    def test_healthy_servers_stay_alive(self):
        dep, instances = deploy()
        dep.sim.run(until=dep.sim.now + 30.0)
        assert dep.wiera.tsm.deaths_detected == 0


class TestReplicaRecovery:
    def test_replacement_spawned_and_resynced(self):
        dep, instances = deploy(min_replicas=3, spare_in=US_WEST)
        client = dep.add_client(US_EAST, instances=instances)

        def seed():
            for i in range(5):
                yield from client.put(f"k{i}", f"v{i}".encode())
        dep.drive(seed())
        dep.sim.run(until=dep.sim.now + 5.0)  # let replication land

        tim = dep.tim("ft")
        # crash the server actually hosting the US West instance
        hosting_id = next(rec.server_id for rec in tim.instances.values()
                          if rec.region == US_WEST)
        victim = dep.wiera.tsm.servers[hosting_id].server
        victim.crash()
        dep.sim.run(until=dep.sim.now + 40.0)

        live = [rec for rec in tim.instances.values() if not rec.down]
        assert len(live) >= 3, [(r.instance_id, r.down)
                                for r in tim.instances.values()]
        replacements = [rec for rec in live if "-r" in rec.instance_id]
        assert replacements, [r.instance_id for r in live]
        replacement = replacements[0]
        # the replacement pulled all keys from a surviving peer
        for i in range(5):
            record = replacement.instance.meta.get_record(f"k{i}")
            assert record is not None and record.latest_version >= 1

    def test_no_recovery_below_threshold(self):
        dep, instances = deploy(min_replicas=1)
        tim = dep.tim("ft")
        dep.server(US_WEST).crash()
        dep.sim.run(until=dep.sim.now + 30.0)
        # 2 live >= min_replicas=1: no respawn
        assert len(tim.instances) == 3
        assert sum(1 for rec in tim.instances.values() if rec.down) == 1


class TestClientFailover:
    def test_reads_fail_over_to_next_closest(self):
        dep, instances = deploy(min_replicas=1)
        client = dep.add_client(US_WEST, instances=instances)

        def seed():
            yield from client.put("k", b"v")
        dep.drive(seed())
        dep.sim.run(until=dep.sim.now + 5.0)
        assert client.closest["region"] == US_WEST
        dep.server(US_WEST).crash()

        def read():
            result = yield from client.get("k")
            return result
        result = dep.drive(read())
        assert result["data"] == b"v"
        assert client.failovers >= 1

    def test_all_down_raises(self):
        from repro.core.client import NoInstanceAvailableError
        dep, instances = deploy(min_replicas=1)
        client = dep.add_client(US_WEST, instances=instances)
        for region in REGIONS:
            dep.server(region).crash()

        def read():
            yield from client.get("k")
        proc = dep.sim.process(read())
        with pytest.raises(NoInstanceAvailableError):
            dep.sim.run(until=proc)

    def test_client_with_no_instances(self):
        from repro.core.client import NoInstanceAvailableError
        dep, _ = deploy(min_replicas=1)
        client = dep.add_client(US_WEST)
        with pytest.raises(NoInstanceAvailableError):
            client.closest
