"""Tests for repro.autoscale: spec validation, signal windows, and the
three levers (shards, replicas, tier) with hysteresis and cooldown.

The lever tests drive demand synthetically — a pump process increments a
``load.offered`` counter at a controlled rate — so each decision branch
is exercised deterministically without standing up full cohorts; the
end-to-end flash-crowd path (real cohorts, real shed) lives in
``benchmarks/bench_autoscale.py``.
"""

import pytest

from repro import (
    AutoscaleSpec,
    GlobalPolicySpec,
    RegionPlacement,
    ReplicaScaleSpec,
    TierScaleSpec,
    build_deployment,
)
from repro.net import US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy, write_back_policy

REGIONS = (US_EAST, US_WEST)


def _policy_spec(policy=memory_only_policy, autoscale=None):
    return GlobalPolicySpec(
        name="as",
        placements=tuple(RegionPlacement(r, policy()) for r in REGIONS),
        consistency="eventual",
        autoscale=autoscale)


def _autoscaled_dep(aspec, policy=memory_only_policy,
                    servers_per_region=3, seed=5):
    dep = build_deployment(list(REGIONS), seed=seed,
                           servers_per_region=servers_per_region)
    handle = dep.start_sharded_instance("as", _policy_spec(policy),
                                        autoscale=aspec)
    scaler = dep.autoscalers["as"]
    return dep, handle, scaler


def _pump(dep, rate):
    """Background process emitting ``rate[0]`` offered ops per sim-second
    into the metrics registry (the signal the reader watches)."""
    counter = dep.obs.metrics.counter("load.offered", cohort="pump")

    def run():
        while True:
            counter.inc(int(rate[0]))
            yield dep.sim.timeout(1.0)
    dep.sim.process(run(), name="pump")
    return counter


class TestAutoscaleSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, decision_interval=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, low_water=0.9, high_water=0.5)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, min_shards=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, scale_down_windows=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_per_shard=10, max_actions_in_flight=0)
        with pytest.raises(ValueError):
            ReplicaScaleSpec(max_extra=0)
        with pytest.raises(ValueError):
            TierScaleSpec(idle_age=-1, target_tier="tier2")

    def test_defaults_off(self):
        assert _policy_spec().autoscale is None


class TestHarnessWiring:
    def test_no_spec_means_no_controller_and_plain_handle(self):
        dep = build_deployment(list(REGIONS), seed=5)
        handle = dep.start_sharded_instance("as", _policy_spec())
        assert not handle.sharded
        assert dep.autoscalers == {}

    def test_autoscale_none_is_bit_identical_to_unsharded(self):
        def run(managed):
            dep = build_deployment(list(REGIONS), seed=9)
            if managed:
                handle = dep.start_sharded_instance("det", _policy_spec())
                client = dep.add_client(US_WEST, sharded=handle)
            else:
                instances = dep.start_wiera_instance("det", _policy_spec())
                client = dep.add_client(US_WEST, instances=instances)

            def app():
                out = []
                for i in range(5):
                    result = yield from client.put(f"k{i}", b"v" * 64)
                    out.append(result["latency"])
                    result = yield from client.get(f"k{i}")
                    out.append(result["latency"])
                return out
            out = dep.drive(app())
            return out, dep.sim.now, dep.sim.events_processed

        assert run(managed=True) == run(managed=False)

    def test_spec_autoscale_attaches_controller_even_at_one_shard(self):
        aspec = AutoscaleSpec(target_per_shard=100.0)
        dep = build_deployment(list(REGIONS), seed=5)
        handle = dep.start_sharded_instance(
            "as", _policy_spec(autoscale=aspec))
        assert handle.sharded          # managed path forced at 1 shard
        assert "as" in dep.autoscalers
        assert dep.autoscalers["as"].shards == 1


class TestShardLever:
    def test_scale_up_tracks_demand_and_scale_down_needs_calm_streak(self):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0,
                              cooldown=0.0, scale_down_windows=2,
                              max_shards=3)
        dep, handle, scaler = _autoscaled_dep(aspec)
        rate = [0.0]
        _pump(dep, rate)

        # Demand for ~3 shards: ceil(250 / (0.85*100)) = 3.
        rate[0] = 250.0
        dep.sim.run(until=dep.sim.now + 10.0)
        assert scaler.shards == 3
        ups = [d for d in scaler.decisions if d.action == "scale_up"]
        assert ups and ups[0].desired == 3
        assert dep.metric_total("autoscale.scale_ups", namespace="as") == 2

        # One calm window is not enough (hysteresis)...
        rate[0] = 10.0
        first_calm = dep.sim.now
        dep.sim.run(until=first_calm + 3.0)
        assert scaler.shards == 3
        # ...but a sustained streak shrinks one shard at a time.
        dep.sim.run(until=first_calm + 40.0)
        assert scaler.shards == 1
        downs = [d for d in scaler.decisions if d.action == "scale_down"]
        assert len(downs) == 2
        assert dep.metric_total("autoscale.scale_downs", namespace="as") == 2
        # The floor holds: calm forever never drops below min_shards.
        assert all(d.shards > 1 for d in downs)

    def test_shed_forces_scale_up_to_ceiling_even_below_rate_band(self):
        # Shed means the queue overflowed: offered_rate under-reports
        # demand, so the controller jumps to max_shards in one burst.
        aspec = AutoscaleSpec(target_per_shard=1000.0, decision_interval=2.0,
                              cooldown=0.0, shed_tolerance=0, max_shards=2)
        dep, handle, scaler = _autoscaled_dep(aspec)
        shed = dep.obs.metrics.counter("load.shed", cohort="pump")

        def shedder():
            yield dep.sim.timeout(1.0)
            shed.inc(5)
        dep.sim.process(shedder(), name="shedder")
        dep.sim.run(until=dep.sim.now + 5.0)
        assert scaler.shards == 2
        assert [d.action for d in scaler.decisions][0] == "scale_up"

    def test_cooldown_and_in_flight_guard_skip_decisions(self):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0,
                              cooldown=30.0, max_shards=4)
        dep, handle, scaler = _autoscaled_dep(aspec)
        rate = [300.0]
        _pump(dep, rate)
        # The first hot window triggers one scale-up burst (several
        # sim-seconds of rebalancing); every window after that lands in
        # the 30 s cooldown.
        dep.sim.run(until=dep.sim.now + 20.0)
        # One action, then cooldown mutes the loop despite hot signals.
        acted = [d for d in scaler.decisions if d.action == "scale_up"]
        skipped = [d for d in scaler.decisions
                   if d.action == "skip_cooldown"]
        assert len(acted) == 1
        assert skipped, "hot windows during cooldown must be audited"

        # Belt-and-braces guard: a (synthetic) in-flight action blocks
        # every decision regardless of cooldown.
        scaler._cooldown_until = 0.0
        scaler._in_flight = 1
        dep.sim.run(until=dep.sim.now + 3.0)
        assert scaler.decisions[-1].action == "skip_busy"
        scaler._in_flight = 0

    def test_audit_records_carry_signals(self):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0)
        dep, handle, scaler = _autoscaled_dep(aspec)
        dep.sim.run(until=dep.sim.now + 5.0)
        audit = scaler.audit()
        assert audit
        for row in audit:
            assert {"time", "offered_rate", "shed", "queue_depth",
                    "egress_utilization", "shards", "desired", "action",
                    "reason", "took", "detail"} <= set(row)
        assert dep.metric_total("autoscale.decisions",
                                namespace="as") == len(audit)


class TestReplicaLever:
    def test_hot_at_max_shards_grows_then_calm_retires_replicas(self):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0,
                              cooldown=0.0, scale_down_windows=2,
                              max_shards=1,
                              replicas=ReplicaScaleSpec(max_extra=1,
                                                        region=US_EAST))
        dep, handle, scaler = _autoscaled_dep(aspec)
        tim = dep.wiera.tim("as-s0")
        assert len(tim.instances) == 2
        epoch0 = dep.wiera.shard_manager("as").epoch

        rate = [300.0]
        _pump(dep, rate)
        dep.sim.run(until=dep.sim.now + 5.0)
        # Shard lever pinned at max_shards=1 -> replica lever fires.
        assert scaler.shards == 1
        assert tim.elastic_replicas, "no elastic replica added"
        assert len(tim.instances) == 3
        extra = tim.elastic_replicas[0]
        assert tim.instances[extra].region == US_EAST
        mgr = dep.wiera.shard_manager("as")
        assert mgr.epoch > epoch0   # membership republished
        assert any(info["instance_id"] == extra
                   for info in mgr.map.shards["as-s0"])
        adds = [d for d in scaler.decisions if d.action == "replica_add"]
        assert adds and extra in adds[0].detail

        # Hot but both levers exhausted: hold, audited as such.
        dep.sim.run(until=dep.sim.now + 4.0)
        assert any(d.action == "hold" and "exhausted" in d.reason
                   for d in scaler.decisions)

        # Calm retires the replica before anything else.
        rate[0] = 0.0
        dep.sim.run(until=dep.sim.now + 12.0)
        assert tim.elastic_replicas == []
        assert len(tim.instances) == 2
        assert extra not in tim.instances
        removes = [d for d in scaler.decisions
                   if d.action == "replica_remove"]
        assert removes
        assert dep.metric_total("autoscale.replica_removes",
                                namespace="as") == 1

    def test_replica_writes_replicate_to_elastic_instance(self):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0,
                              cooldown=0.0, max_shards=1,
                              replicas=ReplicaScaleSpec(max_extra=1))
        dep, handle, scaler = _autoscaled_dep(aspec)
        client = dep.add_client(US_WEST, sharded=handle)
        rate = [300.0]
        _pump(dep, rate)
        dep.sim.run(until=dep.sim.now + 5.0)
        tim = dep.wiera.tim("as-s0")
        assert tim.elastic_replicas

        def app():
            yield from client.put("after-scale", b"x" * 32)
        dep.drive(app())
        dep.sim.run(until=dep.sim.now + 10.0)   # eventual replication
        extra = tim.instances[tim.elastic_replicas[0]].instance
        record = extra.meta.get_record("after-scale")
        assert record is not None and record.latest_version is not None


class TestTierLever:
    def _calm_dep(self, tier_spec, policy=write_back_policy):
        aspec = AutoscaleSpec(target_per_shard=100.0, decision_interval=2.0,
                              cooldown=0.0, scale_down_windows=2,
                              max_shards=1, tier=tier_spec)
        return _autoscaled_dep(aspec, policy=policy)

    def test_sustained_calm_demotes_idle_data(self):
        dep, handle, scaler = self._calm_dep(
            TierScaleSpec(idle_age=5.0, target_tier="tier2"))
        client = dep.add_client(US_WEST, sharded=handle)

        def app():
            yield from client.put("coldkey", b"z" * 128)
        dep.drive(app())

        dep.sim.run(until=dep.sim.now + 20.0)   # idle + calm streak
        demotes = [d for d in scaler.decisions if d.action == "tier_demote"]
        assert demotes
        assert dep.metric_total("autoscale.tier_demotions",
                                namespace="as") > 0
        inst = dep.wiera.tim("as-s0").alive_records()[0].instance
        record = inst.meta.get_record("coldkey")
        meta = record.versions[record.latest_version]
        assert "tier2" in meta.locations
        assert "tier1" not in meta.locations

    def test_price_aware_skips_non_cheaper_target(self):
        # Demoting tier1 -> tier1 is never cheaper: the price book check
        # must turn the demotion into an audited no-op.
        dep, handle, scaler = self._calm_dep(
            TierScaleSpec(idle_age=5.0, target_tier="tier1",
                          price_aware=True))
        dep.sim.run(until=dep.sim.now + 20.0)
        demotes = [d for d in scaler.decisions if d.action == "tier_demote"]
        assert demotes
        assert all("skipped" in d.detail for d in demotes)
        assert dep.metric_total("autoscale.tier_demotions",
                                namespace="as") == 0
