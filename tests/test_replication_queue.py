"""Unit tests for the lazy-replication queue (the ``queue`` response)."""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core.consistency import ReplicationQueue
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


@pytest.fixture
def world():
    dep = build_deployment(REGIONS, seed=29)
    spec = GlobalPolicySpec(
        name="q",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual", queue_interval=1000.0)  # manual flushing
    instances = dep.start_wiera_instance("q", spec)
    return dep, instances


def make_update(instance, dep, key, payload):
    def put():
        version = yield from instance.local_put(key, payload)
        meta = instance.meta.get_record(key).versions[version]
        return {"key": key, "version": version,
                "last_modified": meta.last_modified,
                "origin": instance.instance_id, "data": payload}
    return dep.drive(put())


class TestCoalescing:
    def test_same_key_coalesces_to_newest(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        u1 = make_update(east, dep, "k", b"v1")
        u2 = make_update(east, dep, "k", b"v2")
        queue.enqueue(u1)
        queue.enqueue(u2)
        assert len(queue.pending) == 1
        assert queue.coalesced == 1
        assert queue.pending["k"]["version"] == u2["version"]

    def test_distinct_keys_kept(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "a", b"1"))
        queue.enqueue(make_update(east, dep, "b", b"2"))
        assert len(queue.pending) == 2
        assert queue.coalesced == 0


class TestFlushAndDrain:
    def test_flush_delivers_to_all_peers(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"payload"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        assert queue.updates_sent == 2  # one per peer
        for region in (US_WEST, EU_WEST):
            peer = dep.instance("q", region)
            assert peer.meta.get_record("k").latest_version >= 1

    def test_flush_tolerates_dead_peer(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        dep.instance("q", EU_WEST).host.down = True
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"payload"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())  # must not raise
        assert queue.send_failures == 1
        assert dep.instance("q", US_WEST).meta.get_record("k") is not None

    def test_drain_empties_even_with_concurrent_enqueue(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "a", b"1"))

        def drain():
            yield from queue.drain()
        dep.drive(drain())
        assert len(queue.pending) == 0

    def test_background_loop_flushes_periodically(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=2.0)
        queue.start()
        queue.enqueue(make_update(east, dep, "k", b"v"))
        dep.sim.run(until=dep.sim.now + 5.0)
        queue.stop()
        assert queue.flushes >= 1
        assert len(queue.pending) == 0

    def test_stop_is_idempotent(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=2.0)
        queue.start()
        queue.stop()
        queue.stop()


class TestRetryBacklog:
    def test_failed_send_lands_in_backlog_and_retries(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        eu = dep.instance("q", EU_WEST)
        eu.host.down = True
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"v"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        assert queue.backlog_size() == 1
        assert queue.outstanding_failures == 1
        eu.host.down = False
        # let the backoff window pass, then flush again: the retry ships
        dep.sim.run(until=dep.sim.now + 10.0)
        dep.drive(flush())
        assert queue.backlog_size() == 0
        assert queue.outstanding_failures == 0
        assert queue.retries == 1
        assert eu.meta.get_record("k") is not None

    def test_retry_never_buries_newer_pending_write(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        eu = dep.instance("q", EU_WEST)
        eu.host.down = True
        queue = ReplicationQueue(east, interval=1000.0)
        old = make_update(east, dep, "k", b"old")
        queue.enqueue(old)

        def flush():
            yield from queue.flush()
        dep.drive(flush())           # old fails into the backlog
        new = make_update(east, dep, "k", b"new")
        queue.enqueue(new)           # fresher write supersedes the retry
        assert queue.backlog_size() == 0
        eu.host.down = False
        dep.sim.run(until=dep.sim.now + 10.0)
        dep.drive(flush())
        record = eu.meta.get_record("k")
        assert record.latest_version == new["version"]

    def test_capped_retries_abandon_to_anti_entropy(self, world):
        dep, _ = world
        from repro.faults import RetryPolicy
        east = dep.instance("q", US_EAST)
        dep.instance("q", EU_WEST).host.down = True
        queue = ReplicationQueue(
            east, interval=1000.0,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01,
                                     jitter=0.0))
        queue.enqueue(make_update(east, dep, "k", b"v"))

        def flush():
            yield from queue.flush()
        for _ in range(4):
            dep.drive(flush())
            dep.sim.run(until=dep.sim.now + 1.0)
        assert queue.abandoned == 1
        assert queue.backlog_size() == 0
        # ...but the divergence is still tracked until something repairs it
        assert queue.outstanding_failures == 1
        queue.mark_delivered(next(iter(queue._outstanding))[0], "k")
        assert queue.outstanding_failures == 0
        assert queue.repaired == 1

    def test_stop_surfaces_dropped_entries(self, world):
        dep, _ = world
        from repro.obs.api import get_obs
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"v"))
        queue.stop()
        dropped = get_obs(dep.sim).metrics.counter(
            "replication.pending_dropped", instance=east.instance_id)
        assert dropped.value == 1
