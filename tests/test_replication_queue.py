"""Unit tests for the lazy-replication queue (the ``queue`` response)."""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core.consistency import ReplicationQueue
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


@pytest.fixture
def world():
    dep = build_deployment(REGIONS, seed=29)
    spec = GlobalPolicySpec(
        name="q",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual", queue_interval=1000.0)  # manual flushing
    instances = dep.start_wiera_instance("q", spec)
    return dep, instances


def make_update(instance, dep, key, payload):
    def put():
        version = yield from instance.local_put(key, payload)
        meta = instance.meta.get_record(key).versions[version]
        return {"key": key, "version": version,
                "last_modified": meta.last_modified,
                "origin": instance.instance_id, "data": payload}
    return dep.drive(put())


class TestCoalescing:
    def test_same_key_coalesces_to_newest(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        u1 = make_update(east, dep, "k", b"v1")
        u2 = make_update(east, dep, "k", b"v2")
        queue.enqueue(u1)
        queue.enqueue(u2)
        assert len(queue.pending) == 1
        assert queue.coalesced == 1
        assert queue.pending["k"]["version"] == u2["version"]

    def test_distinct_keys_kept(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "a", b"1"))
        queue.enqueue(make_update(east, dep, "b", b"2"))
        assert len(queue.pending) == 2
        assert queue.coalesced == 0


class TestFlushAndDrain:
    def test_flush_delivers_to_all_peers(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"payload"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())
        assert queue.updates_sent == 2  # one per peer
        for region in (US_WEST, EU_WEST):
            peer = dep.instance("q", region)
            assert peer.meta.get_record("k").latest_version >= 1

    def test_flush_tolerates_dead_peer(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        dep.instance("q", EU_WEST).host.down = True
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "k", b"payload"))

        def flush():
            yield from queue.flush()
        dep.drive(flush())  # must not raise
        assert queue.send_failures == 1
        assert dep.instance("q", US_WEST).meta.get_record("k") is not None

    def test_drain_empties_even_with_concurrent_enqueue(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=1000.0)
        queue.enqueue(make_update(east, dep, "a", b"1"))

        def drain():
            yield from queue.drain()
        dep.drive(drain())
        assert len(queue.pending) == 0

    def test_background_loop_flushes_periodically(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=2.0)
        queue.start()
        queue.enqueue(make_update(east, dep, "k", b"v"))
        dep.sim.run(until=dep.sim.now + 5.0)
        queue.stop()
        assert queue.flushes >= 1
        assert len(queue.pending) == 0

    def test_stop_is_idempotent(self, world):
        dep, _ = world
        east = dep.instance("q", US_EAST)
        queue = ReplicationQueue(east, interval=2.0)
        queue.start()
        queue.stop()
        queue.stop()
