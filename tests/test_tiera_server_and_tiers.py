"""Tests for TieraServer lifecycle and modular instance tiers (§3.2.2)."""

import pytest

from repro.net import HostDownError, Network, US_EAST, US_WEST
from repro.sim import Simulator
from repro.sim.rpc import RpcNode
from repro.storage.backend import ObjectMissingError, StorageError
from repro.tiera import InstanceTier, TieraServer
from repro.tiera.policy import memory_only_policy, write_back_policy
from repro.util.rng import RngRegistry


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    return sim, net


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestTieraServer:
    def test_spawn_and_list(self, world):
        sim, net = world
        host = net.add_host("srv", US_EAST)
        server = TieraServer(sim, net, host, US_EAST)
        ctl = RpcNode(sim, net, net.add_host("mgr", US_EAST), name="mgr")

        def main():
            result = yield ctl.call(server.node, "spawn_instance", {
                "instance_id": "i1", "policy": memory_only_policy()})
            listing = yield ctl.call(server.node, "list_instances")
            return result, listing

        result, listing = run(sim, main())
        assert result["instance_id"] == "i1"
        assert listing["instances"] == ["i1"]
        assert server.instances["i1"].running

    def test_duplicate_spawn_rejected(self, world):
        sim, net = world
        server = TieraServer(sim, net, net.add_host("srv", US_EAST), US_EAST)
        ctl = RpcNode(sim, net, net.add_host("mgr", US_EAST), name="mgr")

        def main():
            yield ctl.call(server.node, "spawn_instance", {
                "instance_id": "i1", "policy": memory_only_policy()})
            try:
                yield ctl.call(server.node, "spawn_instance", {
                    "instance_id": "i1", "policy": memory_only_policy()})
            except RuntimeError:
                return "rejected"

        assert run(sim, main()) == "rejected"

    def test_stop_instance(self, world):
        sim, net = world
        server = TieraServer(sim, net, net.add_host("srv", US_EAST), US_EAST)
        ctl = RpcNode(sim, net, net.add_host("mgr", US_EAST), name="mgr")

        def main():
            yield ctl.call(server.node, "spawn_instance", {
                "instance_id": "i1", "policy": memory_only_policy()})
            r1 = yield ctl.call(server.node, "stop_instance",
                                {"instance_id": "i1"})
            r2 = yield ctl.call(server.node, "stop_instance",
                                {"instance_id": "i1"})
            return r1, r2

        r1, r2 = run(sim, main())
        assert r1["stopped"] and not r2["stopped"]

    def test_crash_makes_unreachable_and_wipes_memory(self, world):
        sim, net = world
        server = TieraServer(sim, net, net.add_host("srv", US_EAST), US_EAST)
        ctl = RpcNode(sim, net, net.add_host("mgr", US_EAST), name="mgr")

        def spawn_and_fill():
            result = yield ctl.call(server.node, "spawn_instance", {
                "instance_id": "i1", "policy": write_back_policy()})
            inst = server.instances["i1"]
            yield from inst.local_put("k", b"v")
            return inst

        inst = run(sim, spawn_and_fill())
        server.crash()
        assert "k#v1" not in inst.tier("tier1")

        def ping():
            yield ctl.call(server.node, "ping")

        p = sim.process(ping())
        with pytest.raises(HostDownError):
            sim.run(until=p)

    def test_ping_reports_instances(self, world):
        sim, net = world
        server = TieraServer(sim, net, net.add_host("srv", US_EAST), US_EAST)
        ctl = RpcNode(sim, net, net.add_host("mgr", US_EAST), name="mgr")

        def main():
            yield ctl.call(server.node, "spawn_instance", {
                "instance_id": "i1", "policy": memory_only_policy()})
            pong = yield ctl.call(server.node, "ping")
            return pong

        pong = run(sim, main())
        assert pong["alive"] and pong["instances"] == 1


class TestInstanceTier:
    @pytest.fixture
    def pair(self, world):
        """A local instance in US West using a US East instance as a tier."""
        sim, net = world
        from repro.tiera import TieraInstance
        remote_host = net.add_host("rh", US_EAST)
        remote = TieraInstance(sim, net, remote_host, "remote", US_EAST,
                               memory_only_policy(), rng=RngRegistry(1))
        local_host = net.add_host("lh", US_WEST)
        owner = RpcNode(sim, net, local_host, name="owner")
        tier = InstanceTier(sim, owner, remote.node, "tier1",
                            name="shared",
                            remote_profile=remote.tier("tier1").profile,
                            estimated_oneway=0.035)
        return sim, remote, tier

    def test_write_read_roundtrip_over_rpc(self, pair):
        sim, remote, tier = pair
        run(sim, tier.write("obj", b"payload"))
        assert "obj" in tier
        assert run(sim, tier.read("obj")) == b"payload"
        # bytes actually live at the remote instance
        assert remote.tier("tier1").peek("obj") == b"payload"

    def test_latency_includes_wan(self, pair):
        sim, remote, tier = pair
        t0 = sim.now
        run(sim, tier.write("obj", b"p"))
        assert sim.now - t0 >= 2 * 0.035

    def test_read_unknown_key_raises_locally(self, pair):
        sim, remote, tier = pair
        with pytest.raises(ObjectMissingError):
            run(sim, tier.read("ghost"))

    def test_mark_known_enables_remote_read(self, pair):
        sim, remote, tier = pair
        remote.tier("tier1").preload("orphan", b"central-data")
        tier.mark_known("orphan")
        assert run(sim, tier.read("orphan")) == b"central-data"

    def test_delete(self, pair):
        sim, remote, tier = pair
        run(sim, tier.write("obj", b"p"))
        run(sim, tier.delete("obj"))
        assert "obj" not in tier
        assert "obj" not in remote.tier("tier1")

    def test_read_only_enforced(self, world):
        sim, net = world
        from repro.tiera import TieraInstance
        remote = TieraInstance(sim, net, net.add_host("rh", US_EAST),
                               "remote", US_EAST, memory_only_policy(),
                               rng=RngRegistry(1))
        owner = RpcNode(sim, net, net.add_host("lh", US_WEST), name="owner")
        tier = InstanceTier(sim, owner, remote.node, "tier1", read_only=True)
        with pytest.raises(StorageError):
            run(sim, tier.write("obj", b"p"))

    def test_grow_unsupported(self, pair):
        _, _, tier = pair
        with pytest.raises(StorageError):
            tier.grow(100)

    def test_profile_reflects_rtt(self, pair):
        _, remote, tier = pair
        base = remote.tier("tier1").profile.read_latency
        assert tier.profile.read_latency >= base + 2 * 0.035
