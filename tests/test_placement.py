"""Tests for the workload monitor and automated placement advisor."""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core import DataPlacementAdvisor, WorkloadMonitor
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def deploy(consistency="eventual", **kwargs):
    dep = build_deployment(REGIONS, seed=17)
    spec = GlobalPolicySpec(
        name="pl",
        placements=tuple(
            RegionPlacement(r, memory_only_policy(),
                            primary=(i == 0)) for i, r in enumerate(REGIONS)),
        consistency=consistency, **kwargs)
    instances = dep.start_wiera_instance("pl", spec)
    return dep, instances


def hammer(dep, instances, region, ops, key_prefix=""):
    client = dep.add_client(region, instances=instances,
                            name=f"load-{region}-{key_prefix}")

    def run():
        for i in range(ops):
            yield from client.put(f"{key_prefix}{region}-{i}", b"v" * 128)
            try:
                yield from client.get(f"{key_prefix}{region}-{i}")
            except Exception:
                pass  # async replication may not have landed locally yet
    dep.drive(run())


class TestWorkloadMonitor:
    def test_polling_aggregates_demand(self):
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        hammer(dep, instances, EU_WEST, 30)
        hammer(dep, instances, US_WEST, 5)
        dep.drive(monitor.poll_once())
        demand = monitor.demand_by_region()
        assert demand[EU_WEST] == 60      # 30 puts + 30 gets
        assert demand[US_WEST] == 10
        assert monitor.busiest_region() == EU_WEST

    def test_deltas_not_cumulative(self):
        dep, instances = deploy()
        monitor = WorkloadMonitor(dep.tim("pl"), poll_interval=5.0)
        hammer(dep, instances, EU_WEST, 10)
        dep.drive(monitor.poll_once())
        dep.drive(monitor.poll_once())  # no new traffic
        assert monitor.snapshots[-1].total_requests == 0

    def test_read_fraction(self):
        dep, instances = deploy()
        monitor = WorkloadMonitor(dep.tim("pl"), poll_interval=5.0)
        hammer(dep, instances, US_EAST, 20)   # 1:1 put/get
        dep.drive(monitor.poll_once())
        assert monitor.read_fraction() == pytest.approx(0.5)

    def test_window_zero_is_empty_not_full_history(self):
        """Regression: window=0 used to be falsy and silently returned
        the *entire* snapshot history (the autoscaler's decision window
        depends on window semantics being exact)."""
        dep, instances = deploy()
        monitor = WorkloadMonitor(dep.tim("pl"), poll_interval=5.0)
        hammer(dep, instances, EU_WEST, 10)
        dep.drive(monitor.poll_once())
        assert monitor.demand_by_region(window=None)[EU_WEST] == 20
        assert monitor.demand_by_region(window=0) == {}

    def test_window_counts_recent_rounds_only(self):
        dep, instances = deploy()
        monitor = WorkloadMonitor(dep.tim("pl"), poll_interval=5.0)
        hammer(dep, instances, EU_WEST, 10)
        dep.drive(monitor.poll_once())       # round 1: 20 requests
        hammer(dep, instances, EU_WEST, 5, key_prefix="b")
        dep.drive(monitor.poll_once())       # round 2: 10 requests
        assert monitor.demand_by_region(window=1)[EU_WEST] == 10
        assert monitor.demand_by_region(window=2)[EU_WEST] == 30
        # A window larger than history covers everything retained.
        assert monitor.demand_by_region(window=99)[EU_WEST] == 30

    def test_background_polling(self):
        dep, instances = deploy()
        monitor = WorkloadMonitor(dep.tim("pl"), poll_interval=2.0)
        monitor.start()
        dep.sim.run(until=dep.sim.now + 11.0)
        monitor.stop()
        assert len(monitor.snapshots) >= 4


class TestPlacementAdvisor:
    def test_primary_follows_demand(self):
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        advisor = DataPlacementAdvisor(tim, monitor)
        hammer(dep, instances, ASIA_EAST, 40)
        hammer(dep, instances, EU_WEST, 3)
        dep.drive(monitor.poll_once())
        region, cost = advisor.best_primary()
        assert region == ASIA_EAST
        assert cost < advisor.weighted_put_latency(US_EAST,
                                                   monitor.demand_by_region())

    def test_replica_set_covers_demand(self):
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        advisor = DataPlacementAdvisor(tim, monitor)
        hammer(dep, instances, ASIA_EAST, 30)
        hammer(dep, instances, EU_WEST, 30)
        dep.drive(monitor.poll_once())
        replicas = advisor.replica_set(2)
        assert set(replicas) == {ASIA_EAST, EU_WEST}

    def test_consistency_suggestion_latency_goal(self):
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        hammer(dep, instances, US_EAST, 10)
        dep.drive(monitor.poll_once())
        relaxed = DataPlacementAdvisor(tim, monitor, latency_goal=5.0)
        strict = DataPlacementAdvisor(tim, monitor, latency_goal=0.001)
        assert relaxed.advise().suggested_consistency == "multi_primaries"
        assert strict.advise().suggested_consistency == "eventual"

    def test_apply_actuates_change_primary(self):
        dep, instances = deploy(consistency="primary_backup",
                                sync_replication=False, queue_interval=1.0)
        tim = dep.tim("pl")
        assert tim.protocol.config.primary_id.endswith(US_EAST)
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        advisor = DataPlacementAdvisor(tim, monitor)
        hammer(dep, instances, ASIA_EAST, 40)
        dep.drive(monitor.poll_once())
        result = dep.drive(advisor.apply())
        assert result["changed"]
        assert tim.protocol.config.primary_id.endswith(ASIA_EAST)

    def test_advice_with_no_demand(self):
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        advisor = DataPlacementAdvisor(tim, monitor)
        advice = advisor.advise()
        assert advice.primary_region in REGIONS
        assert advice.demand == {}


class TestCostAwareAdvice:
    def test_weight_zero_is_latency_only(self):
        """Satellite regression: cost_weight=0 (the default) must produce
        advice identical to a latency-only advisor — the price book is
        never consulted."""
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        hammer(dep, instances, ASIA_EAST, 25)
        hammer(dep, instances, EU_WEST, 10)
        dep.drive(monitor.poll_once())
        plain = DataPlacementAdvisor(tim, monitor).advise()
        weighted = DataPlacementAdvisor(tim, monitor,
                                        cost_weight=0.0).advise()
        assert weighted == plain

    def test_cost_weight_penalizes_expensive_region(self):
        """A huge cost_weight makes the advisor avoid the region carrying
        the most stored bytes (highest storage dollars), even though it
        has the most demand."""
        dep, instances = deploy()
        tim = dep.tim("pl")
        monitor = WorkloadMonitor(tim, poll_interval=5.0)
        hammer(dep, instances, ASIA_EAST, 40)
        dep.drive(monitor.poll_once())
        latency_only = DataPlacementAdvisor(tim, monitor)
        assert latency_only.best_primary()[0] == ASIA_EAST
        # pile bytes onto the asia-east instance so its storage bill
        # dwarfs everyone else's
        inst = dep.instance("pl", ASIA_EAST)
        for backend in inst.tiers.values():
            backend.preload("ballast", b"x" * (64 << 20))
            break
        costly = DataPlacementAdvisor(tim, monitor, cost_weight=1e6)
        demand = monitor.demand_by_region()
        assert (costly.region_monthly_cost(ASIA_EAST, demand)
                > costly.region_monthly_cost(US_EAST, demand))
        assert costly.best_primary()[0] != ASIA_EAST
