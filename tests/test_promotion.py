"""Tests for get-triggered rules: cache promotion of slow-tier objects."""

import pytest

from repro import build_deployment
from repro.net import US_EAST
from repro.policydsl import compile_policy
from repro.util.units import KB, MS

PROMOTING_POLICY = """
Tiera PromotingInstance() {
    tier1: {name: Memcached, size: 64M};
    tier2: {name: S3, size: 10G};

    event(insert.into) : response {
        store(what: insert.object, to: tier2);
    }

    % reads served from the slow tier promote the object into the cache
    event(get.from == tier2) : response {
        copy(what: get.object, to: tier1);
    }
}
"""


@pytest.fixture
def world():
    dep = build_deployment([US_EAST], seed=41)
    local = compile_policy(PROMOTING_POLICY)
    from repro import GlobalPolicySpec, RegionPlacement
    spec = GlobalPolicySpec(
        name="promo",
        placements=(RegionPlacement(US_EAST, local),),
        consistency="local")
    instances = dep.start_wiera_instance("promo", spec)
    client = dep.add_client(US_EAST, instances=instances)
    return dep, client


def test_dsl_compiles_get_rule():
    local = compile_policy(PROMOTING_POLICY)
    rules = local.operation_rules("get")
    assert len(rules) == 1
    assert rules[0].event.tier == "tier2"


def test_first_read_promotes_later_reads_fast(world):
    dep, client = world

    def app():
        yield from client.put("doc", b"\x99" * (4 * KB))
        first = yield from client.get("doc")     # served from S3
        yield dep.sim.timeout(1.0)               # promotion runs async
        second = yield from client.get("doc")    # served from memcached
        return first["latency"], second["latency"]
    first, second = dep.drive(app())
    assert first > 10 * MS          # S3 service time (with jitter)
    assert second < 5 * MS          # cache hit
    inst = dep.instance("promo", US_EAST)
    meta = inst.meta.get_record("doc").latest()
    assert meta.locations == {"tier1", "tier2"}


def test_promotion_does_not_delay_the_read(world):
    dep, client = world

    def app():
        yield from client.put("doc", b"\x99" * (4 * KB))
        t0 = dep.sim.now
        yield from client.get("doc")
        return dep.sim.now - t0
    elapsed = dep.drive(app())
    # the get returned at S3 speed; the copy into the cache happened in
    # the background, not on the reply path
    assert elapsed < 100 * MS


def test_cached_reads_do_not_retrigger(world):
    dep, client = world

    def app():
        yield from client.put("doc", b"\x99" * 100)
        yield from client.get("doc")
        yield dep.sim.timeout(1.0)
        yield from client.get("doc")
        yield dep.sim.timeout(1.0)
    dep.drive(app())
    inst = dep.instance("promo", US_EAST)
    # the rule is tier-qualified: once cached, reads come from tier1 and
    # the promotion rule no longer fires
    assert inst.tier("tier1").writes == 1
