"""Tests for runtime dynamism: consistency switching, primary migration,
gating/draining semantics, and the monitors driving them."""


from repro import (
    ChangePrimarySpec,
    DynamicConsistencySpec,
    GlobalPolicySpec,
    RegionPlacement,
    build_deployment,
)
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.util.units import MS

REGIONS = (US_EAST, US_WEST, EU_WEST)


def deploy(consistency="multi_primaries", regions=REGIONS, **kwargs):
    dep = build_deployment(regions, seed=9)
    spec = GlobalPolicySpec(
        name="dyn",
        placements=tuple(
            RegionPlacement(r, write_back_policy(),
                            primary=(i == 0)) for i, r in enumerate(regions)),
        consistency=consistency, **kwargs)
    instances = dep.start_wiera_instance("dyn", spec)
    return dep, instances


class TestSwitchConsistency:
    def test_manual_switch_roundtrip(self):
        dep, instances = deploy("multi_primaries")
        tim = dep.tim("dyn")
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            yield from client.put("k", b"v1")
            result = yield from tim.switch_consistency("eventual")
            assert result["to"] == "eventual"
            r = yield from client.put("k", b"v2")
            fast = r["latency"]
            yield from tim.switch_consistency("multi_primaries")
            r = yield from client.put("k", b"v3")
            slow = r["latency"]
            return fast, slow

        fast, slow = dep.drive(app())
        assert fast < 10 * MS < slow
        assert [(s[1], s[2]) for s in tim.switch_log] == [
            ("multi_primaries", "eventual"),
            ("eventual", "multi_primaries")]

    def test_switch_drains_queued_updates_first(self):
        dep, instances = deploy("eventual", queue_interval=300.0)
        tim = dep.tim("dyn")
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            yield from client.put("k", b"v")
            # queue interval is huge: the update is still pending
            yield from tim.switch_consistency("multi_primaries")
        dep.drive(app())
        # After the switch, every replica must have the queued update.
        for region in REGIONS:
            inst = dep.instance("dyn", region)
            assert inst.meta.get_record("k") is not None, region

    def test_requests_blocked_while_switching(self):
        dep, instances = deploy("multi_primaries")
        tim = dep.tim("dyn")
        client = dep.add_client(US_WEST, instances=instances)
        order = []

        def switcher():
            result = yield from tim.switch_consistency("eventual")
            order.append(("switched", dep.sim.now))
            return result

        def putter():
            yield dep.sim.timeout(0.001)  # arrive mid-switch
            result = yield from client.put("k", b"v")
            order.append(("put-done", dep.sim.now))
            return result

        p1 = dep.sim.process(switcher())
        p2 = dep.sim.process(putter())
        dep.sim.run(until=dep.sim.all_of([p1, p2]))
        # The put must never straddle the switch: either it slipped in
        # before the gates closed — then the drain waited for it, so the
        # switch completed after it — or it was gated and ran entirely
        # under the new protocol (eventual => local-speed latency).
        times = dict(order)
        if times["put-done"] <= times["switched"]:
            assert p2.value["consistency"] == "multi_primaries"
        else:
            assert p2.value["consistency"] == "eventual"
            assert p2.value["latency"] < 10 * MS


class TestLatencyMonitorSwitching:
    def test_sustained_violation_switches_then_recovers(self):
        dep, instances = deploy(
            "multi_primaries", regions=(US_EAST, US_WEST, EU_WEST, ASIA_EAST),
            dynamic=DynamicConsistencySpec(latency_threshold=0.8, period=10.0,
                                           check_interval=1.0))
        tim = dep.tim("dyn")
        client = dep.add_client(US_WEST, instances=instances)
        usw = dep.instance("dyn", US_WEST)

        def workload():
            while True:
                yield from client.put("k", b"v")
                yield dep.sim.timeout(1.0)

        dep.sim.process(workload())
        t0 = dep.sim.now
        dep.network.inject_host_delay(usw.host, 0.3, start=t0 + 5,
                                      duration=30)
        dep.sim.run(until=t0 + 80)
        kinds = [(s[2]) for s in tim.switch_log]
        assert kinds == ["eventual", "multi_primaries"]
        weak_at = tim.switch_log[0][0] - t0
        strong_at = tim.switch_log[1][0] - t0
        assert 14 <= weak_at <= 25       # 5s start + 10s period + checks
        assert strong_at >= 35           # after the injection ends at 35s

    def test_transient_violation_ignored(self):
        dep, instances = deploy(
            "multi_primaries", regions=(US_EAST, US_WEST, EU_WEST),
            dynamic=DynamicConsistencySpec(latency_threshold=0.8, period=15.0,
                                           check_interval=1.0))
        tim = dep.tim("dyn")
        client = dep.add_client(US_WEST, instances=instances)
        usw = dep.instance("dyn", US_WEST)

        def workload():
            while True:
                yield from client.put("k", b"v")
                yield dep.sim.timeout(1.0)

        dep.sim.process(workload())
        t0 = dep.sim.now
        dep.network.inject_host_delay(usw.host, 0.3, start=t0 + 5,
                                      duration=5)  # < period
        dep.sim.run(until=t0 + 60)
        assert tim.switch_log == []


class TestChangePrimary:
    def test_forwarding_majority_moves_primary(self):
        dep, instances = deploy(
            "primary_backup", sync_replication=False, queue_interval=2.0,
            change_primary=ChangePrimarySpec(window=20.0, period=6.0,
                                             check_interval=2.0))
        tim = dep.tim("dyn")
        initial = tim.protocol.config.primary_id
        assert initial.endswith(US_EAST)
        # Hammer puts from EU West only.
        client = dep.add_client(EU_WEST, instances=instances)

        def workload():
            for _ in range(120):
                yield from client.put("k", b"v")
                yield dep.sim.timeout(0.5)
        dep.drive(workload())
        assert tim.protocol.config.primary_id.endswith(EU_WEST)
        history = tim.protocol.config.history
        assert len(history) >= 2

    def test_change_primary_explicit(self):
        dep, instances = deploy("primary_backup", sync_replication=True)
        tim = dep.tim("dyn")
        new_id = next(iid for iid, rec in tim.instances.items()
                      if rec.region == EU_WEST)

        def change():
            result = yield from tim.change_primary(new_id)
            return result
        result = dep.drive(change())
        assert result["changed"]
        assert tim.protocol.config.primary_id == new_id
        # Puts from anywhere now land at the new primary.
        client = dep.add_client(US_WEST, instances=instances)

        def app():
            result = yield from client.put("k", b"v")
            return result
        result = dep.drive(app())
        assert result["primary"] == new_id

    def test_change_to_same_primary_is_noop(self):
        dep, instances = deploy("primary_backup")
        tim = dep.tim("dyn")
        current = tim.protocol.config.primary_id

        def change():
            result = yield from tim.change_primary(current)
            return result
        assert dep.drive(change())["changed"] is False
