"""Integration: the Figure 6(a) ReducedCostPolicy with a Glacier tier.

Unlike S3-IA, Glacier reads require a restore job (hours).  The paper
notes an application "may want to move data to Glacier instead of S3 not
only for durable storage but also to reduce the price of cold data" — at
the cost of the retrieval asymmetry this test exercises end to end.
"""

import pytest

from repro import build_deployment
from repro.net import US_WEST
from repro.policydsl import builtin_policy
from repro.storage.archival import NotYetRestoredError
from repro.util.units import HOUR, KB


@pytest.fixture
def world():
    dep = build_deployment([US_WEST], seed=37)
    # ReducedCostPolicy: LocalDisk tier1 + CheapestArchival (Glacier) tier2,
    # cold after 120 hours (Figure 6(a)); hourly scans for test speed.
    spec = builtin_policy("ReducedCostPolicy",
                          params={"cold_check_interval": 1 * HOUR})
    dep.start_wiera_instance("rc", spec)
    return dep, dep.instance("rc", US_WEST)


def test_policy_compiled_with_archival_tier(world):
    dep, inst = world
    assert inst.tier("tier2").profile.name == "glacier"
    assert inst.tier("tier2").profile.kind == "archival"


def test_cold_object_moves_to_glacier(world):
    dep, inst = world

    def seed():
        yield from inst.local_put("cold-doc", b"\x07" * (16 * KB))
        yield from inst.local_put("hot-doc", b"\x08" * (16 * KB))
    dep.drive(seed())

    def keep_hot():
        for _ in range(6):
            yield dep.sim.timeout(24 * HOUR)
            yield from inst.read_version("hot-doc")
    dep.drive(keep_hot())

    cold_meta = inst.meta.get_record("cold-doc").latest()
    hot_meta = inst.meta.get_record("hot-doc").latest()
    assert cold_meta.locations == {"tier2"}
    assert "tier1" in hot_meta.locations
    # the bandwidth-capped move really throttled (100KB/s for 16KB ~= 0.16s
    # per object is charged by the policy engine; just assert the data
    # survives on glacier)
    assert inst.tier("tier2").peek(
        f"cold-doc#v{cold_meta.version}") == b"\x07" * (16 * KB)


def test_archived_read_requires_restore(world):
    dep, inst = world

    def seed_and_freeze():
        yield from inst.local_put("doc", b"payload")
        yield from inst.move_version("doc", 1, "tier2", from_tier="tier1")
    dep.drive(seed_and_freeze())

    glacier = inst.tier("tier2")
    skey = "doc#v1"

    # non-blocking read: tells the caller when the restore completes
    def try_read():
        yield from glacier.read(skey, blocking=False)
    proc = dep.sim.process(try_read())
    with pytest.raises(NotYetRestoredError) as err:
        dep.sim.run(until=proc)
    assert err.value.ready_at > dep.sim.now + 3 * HOUR

    # the instance-level read path blocks through the restore job
    t0 = dep.sim.now

    def full_read():
        data, meta, _ = yield from inst.read_version("doc")
        return data
    data = dep.drive(full_read())
    assert data == b"payload"
    assert dep.sim.now - t0 >= 3 * HOUR


def test_restored_object_reads_fast(world):
    dep, inst = world

    def seed_and_freeze():
        yield from inst.local_put("doc", b"payload")
        yield from inst.move_version("doc", 1, "tier2", from_tier="tier1")
        yield from inst.read_version("doc")  # waits out the restore
        t0 = dep.sim.now
        yield from inst.read_version("doc")  # restored copy: fast
        return dep.sim.now - t0
    elapsed = dep.drive(seed_and_freeze())
    assert elapsed < 1.0
