"""Tests for repro.par: partitioning, the bridge, and run equivalence.

The determinism contract under test (DESIGN.md "Parallel simulation"):
``workers=1`` runs exactly the single-process path; ``workers=N``
produces the identical final store digest, acked-write digest, and
open-loop conservation counters; construction order never leaks into
RNG draws or placements.
"""

import pickle

import pytest

from repro.bench.harness import build_deployment, rows_digest
from repro.bench.openloop import PAR_REGIONS, parallel_cell_builder
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.par import PartitionPlan, WorkerBridge, run_parallel
from repro.par.runner import _stats_delta
from repro.shard.map import WrongShardError
from repro.util.stats import OnlineStats

ALL = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


class TestPartitionPlan:
    def test_round_robin_groups(self):
        plan = PartitionPlan.for_regions(ALL, 2)
        assert plan.groups == ((US_EAST, EU_WEST), (US_WEST, ASIA_EAST))
        assert plan.owner_of_region(EU_WEST) == 0
        assert plan.owner_of_region(ASIA_EAST) == 1
        assert plan.regions_of(1) == (US_WEST, ASIA_EAST)

    def test_one_region_per_worker(self):
        plan = PartitionPlan.for_regions(ALL, 4)
        assert plan.groups == tuple((r,) for r in ALL)

    def test_duplicate_regions_collapse(self):
        plan = PartitionPlan.for_regions((US_EAST, US_WEST, US_EAST), 2)
        assert plan.groups == ((US_EAST,), (US_WEST,))

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionPlan.for_regions(ALL, 0)
        with pytest.raises(ValueError):
            PartitionPlan.for_regions((US_EAST,), 2)
        with pytest.raises(KeyError):
            PartitionPlan.for_regions((US_EAST,), 1).owner_of_region("mars")

    def test_lookahead_is_min_cross_group_latency(self):
        dep = build_deployment([US_EAST, US_WEST])
        plan = PartitionPlan.for_deployment(dep, 2)
        window = plan.lookahead(dep.network)
        hosts = list(dep.network.hosts.values())
        floor = min(
            dep.network.oneway_latency(a, b, include_dynamics=False)
            for a in hosts for b in hosts
            if plan.owner_of_region(a.region)
            != plan.owner_of_region(b.region))
        assert window == floor > 0

    def test_single_group_lookahead_is_finite(self):
        dep = build_deployment([US_EAST])
        plan = PartitionPlan.for_deployment(dep, 1)
        assert plan.lookahead(dep.network) > 0

    def test_plan_covers_wiera_host_region(self):
        # wiera_region outside the declared region list still gets owned
        dep = build_deployment([US_WEST, EU_WEST], wiera_region=US_EAST)
        plan = PartitionPlan.for_deployment(dep, 2)
        assert plan.owner_of_region(US_EAST) in (0, 1)


class TestBridgeGuards:
    def test_install_rejects_tracing(self):
        dep = build_deployment([US_EAST, US_WEST], with_tracing=True)
        plan = PartitionPlan.for_deployment(dep, 2)
        with pytest.raises(RuntimeError, match="tracing"):
            WorkerBridge(dep, plan, 0).install()

    def test_install_is_exclusive(self):
        dep = build_deployment([US_EAST, US_WEST])
        plan = PartitionPlan.for_deployment(dep, 2)
        WorkerBridge(dep, plan, 0).install()
        with pytest.raises(RuntimeError, match="already installed"):
            WorkerBridge(dep, plan, 1).install()

    def test_inject_rejects_lookahead_violation(self):
        dep = build_deployment([US_EAST, US_WEST])
        plan = PartitionPlan.for_deployment(dep, 2)
        bridge = WorkerBridge(dep, plan, 0)
        bridge.install()
        dep.sim.run(until=1.0)
        entry = ("oneway", 0, 1, 0.5, "a", "b", "m", {}, 256, 0.4, None)
        with pytest.raises(RuntimeError, match="lookahead violation"):
            bridge.inject([entry])

    def test_wrong_shard_error_pickles_whole(self):
        err = WrongShardError("k moved", key="k", owner="ns-s3", epoch=7)
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.key, clone.owner, clone.epoch) == ("k", "ns-s3", 7)
        assert str(clone) == str(err)


class TestStatsDelta:
    def test_reverse_chan_recovers_suffix(self):
        base, end = OnlineStats(), OnlineStats()
        older = [0.5, 1.5, 2.5, 0.25]
        newer = [3.0, 0.125, 9.0]
        for x in older:
            base.add(x)
            end.add(x)
        for x in newer:
            end.add(x)
        delta = _stats_delta(base, end)
        assert delta.count == len(newer)
        assert delta.mean == pytest.approx(sum(newer) / len(newer))
        want = OnlineStats()
        for x in newer:
            want.add(x)
        assert delta._m2 == pytest.approx(want._m2)

    def test_empty_base_is_identity(self):
        end = OnlineStats()
        for x in (1.0, 2.0):
            end.add(x)
        delta = _stats_delta(None, end)
        assert (delta.count, delta.mean, delta.min, delta.max) == \
            (2, 1.5, 1.0, 2.0)

    def test_no_new_samples(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert _stats_delta(stats, stats).count == 0


class TestRunParallelValidation:
    def test_needs_cohorts(self):
        with pytest.raises(ValueError, match="cohorts"):
            run_parallel(lambda: build_deployment([US_EAST]), duration=1.0)

    def test_window_cannot_exceed_lookahead(self):
        build = parallel_cell_builder(shards=1, offered_total=50.0,
                                      workers=2,
                                      regions=(US_EAST, US_WEST))
        with pytest.raises(ValueError, match="lookahead"):
            run_parallel(build, duration=0.5, workers=2, window=10.0)

    def test_build_deployment_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            build_deployment([US_EAST], workers=2)
        with pytest.raises(ValueError, match="workers"):
            build_deployment([US_EAST], workers=0)


class TestEquivalence:
    """The contract the bench gates on, at test scale."""

    DURATION, GRACE = 1.5, 0.5

    def _cell(self, workers):
        return parallel_cell_builder(
            shards=2, offered_total=400.0, workers=workers,
            regions=(US_EAST, US_WEST))

    def test_workers1_equals_plain_load_run(self):
        build = self._cell(1)
        dep = build()
        want = dep.load.run(self.DURATION, grace=self.GRACE)
        want_digest = dep.store_digest()
        got = run_parallel(build, self.DURATION, workers=1,
                           grace=self.GRACE)
        assert got.store_digest == want_digest
        assert got.report == want

    def test_two_workers_match_single_process(self):
        single = run_parallel(self._cell(1), self.DURATION, workers=1,
                              grace=self.GRACE)
        par = run_parallel(self._cell(2), self.DURATION, workers=2,
                           grace=self.GRACE)
        assert par.store_digest == single.store_digest
        assert par.report["acked_digest"] == single.report["acked_digest"]
        for key in ("offered", "achieved", "errors", "errors_by_type",
                    "shed", "discarded", "cohorts", "modeled_users"):
            assert par.report[key] == single.report[key], key
        # real cross-worker traffic flowed (the test isn't vacuous)
        assert sum(p["bridged"]["calls"] + p["bridged"]["oneways"]
                   for p in par.per_worker) > 0
        # workers ended on the same final clock
        assert len({p["now"] for p in par.per_worker}) == 1

    def test_merged_metrics_match_single_process(self):
        single = run_parallel(self._cell(1), self.DURATION, workers=1,
                              grace=self.GRACE)
        par = run_parallel(self._cell(2), self.DURATION, workers=2,
                           grace=self.GRACE)
        for name in ("load.offered", "load.achieved", "load.shed",
                     "rpc.requests_served", "net.messages",
                     "net.bytes"):
            assert (par.dep.metric_total(name)
                    == single.dep.metric_total(name)), name

    def test_four_regions_four_workers(self):
        build = parallel_cell_builder(shards=2, offered_total=400.0,
                                      workers=4, regions=PAR_REGIONS)
        single = run_parallel(build, 1.0, workers=1, grace=0.5)
        par = run_parallel(build, 1.0, workers=4, grace=0.5)
        assert par.store_digest == single.store_digest
        assert par.report["acked_digest"] == single.report["acked_digest"]
        assert par.report["achieved"] == single.report["achieved"]

    def test_smaller_window_is_also_safe(self):
        build = self._cell(2)
        single = run_parallel(build, 1.0, workers=1, grace=0.5)
        par = run_parallel(build, 1.0, workers=2, grace=0.5,
                           window=0.011)
        assert par.store_digest == single.store_digest
        assert par.report["achieved"] == single.report["achieved"]


class TestConstructionOrderIndependence:
    """RNG substreams derive from stable names, so neither cohort
    creation order nor unrelated extra streams perturb any draws."""

    def test_substreams_ignore_creation_order(self):
        from repro.util.rng import RngRegistry
        a = RngRegistry(7)
        b = RngRegistry(7)
        east_a = a.substream("load.cohort", "east")
        a.substream("load.cohort", "west")          # created before...
        west_b = b.substream("load.cohort", "west")  # ...and after
        b.stream("unrelated.noise")
        east_b = b.substream("load.cohort", "east")
        assert east_a.random(5).tolist() == east_b.random(5).tolist()
        assert (a.substream("load.cohort", "west").random(5).tolist()
                == west_b.random(5).tolist())

    def test_cohort_order_leaves_store_state_identical(self):
        digests = []
        for flip in (False, True):
            regions = ((US_WEST, US_EAST) if flip
                       else (US_EAST, US_WEST))
            # Same deployment (declared region order fixed); only the
            # cohort *creation* order flips.
            build = parallel_cell_builder(shards=2, offered_total=300.0,
                                          workers=1,
                                          regions=(US_EAST, US_WEST))
            dep = build()
            dep.load.cohorts.sort(
                key=lambda c: regions.index(c.spec.region))
            dep.load.run(1.0, grace=0.5)
            digests.append(dep.store_digest())
        assert digests[0] == digests[1]

    def test_repeat_build_in_one_process_is_identical(self):
        """Two identical builds in one interpreter must place shards and
        name servers identically (deployment-scoped server ids) — the
        property the fork-based runner and the bench's
        single-then-parallel comparison both rest on."""
        def ids(dep):
            return sorted(s.server_id for s in dep.servers.values())
        d1 = build_deployment([US_EAST, US_WEST], servers_per_region=2)
        d2 = build_deployment([US_EAST, US_WEST], servers_per_region=2)
        assert ids(d1) == ids(d2)
        assert rows_digest(d1.store_rows()) == rows_digest(d2.store_rows())
