"""Tests for the Wiera service: WUI API (Table 1), launch protocol, GPM."""

import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core.wiera import WieraError
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.sim.rpc import RpcNode
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST)


def spec(name="svc", consistency="eventual"):
    return GlobalPolicySpec(
        name=name,
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency=consistency)


class TestWuiApi:
    def test_start_get_stop(self):
        dep = build_deployment(REGIONS)
        instances = dep.start_wiera_instance("w1", spec())
        assert len(instances) == 2
        listed = dep.wiera.get_instances("w1")
        assert {i["instance_id"] for i in listed} == \
            {i["instance_id"] for i in instances}
        result = dep.drive(dep.wiera.stop_instances("w1"))
        assert result["stopped"]
        with pytest.raises(WieraError):
            dep.wiera.get_instances("w1")
        # the Tiera servers no longer host the instances
        for server in dep.servers.values():
            assert not server.instances

    def test_duplicate_wiera_instance_rejected(self):
        dep = build_deployment(REGIONS)
        dep.start_wiera_instance("w1", spec())
        with pytest.raises(WieraError):
            dep.start_wiera_instance("w1", spec())

    def test_stop_unknown_is_graceful(self):
        dep = build_deployment(REGIONS)
        result = dep.drive(dep.wiera.stop_instances("ghost"))
        assert result == {"stopped": False}

    def test_multiple_wiera_instances_coexist(self):
        dep = build_deployment(REGIONS)
        i1 = dep.start_wiera_instance("a", spec("a"))
        i2 = dep.start_wiera_instance("b", spec("b"))
        ids = {i["instance_id"] for i in i1} | {i["instance_id"] for i in i2}
        assert len(ids) == 4
        # independent data planes
        c1 = dep.add_client(US_EAST, instances=i1)
        c2 = dep.add_client(US_EAST, instances=i2)

        def app():
            yield from c1.put("k", b"from-a")
            yield from c2.put("k", b"from-b")
            g1 = yield from c1.get("k")
            g2 = yield from c2.get("k")
            return g1["data"], g2["data"]
        d1, d2 = dep.drive(app())
        assert (d1, d2) == (b"from-a", b"from-b")

    def test_rpc_form_of_wui(self):
        """Applications can also drive the WUI over (simulated) RPC."""
        dep = build_deployment(REGIONS)
        app_node = RpcNode(dep.sim, dep.network,
                           dep.network.add_host("app", EU_WEST), name="app")

        def main():
            started = yield app_node.call(
                dep.wiera.node, "start_instances",
                {"wiera_instance_id": "rpc-w", "policy": spec("rpc-w")})
            listed = yield app_node.call(
                dep.wiera.node, "get_instances",
                {"wiera_instance_id": "rpc-w"})
            stopped = yield app_node.call(
                dep.wiera.node, "stop_instances",
                {"wiera_instance_id": "rpc-w"})
            return started, listed, stopped
        started, listed, stopped = dep.drive(main())
        assert len(started["instances"]) == 2
        assert len(listed["instances"]) == 2
        assert stopped["stopped"]

    def test_launch_wires_peers_and_lock_clients(self):
        dep = build_deployment(REGIONS)
        dep.start_wiera_instance("w", spec())
        tim = dep.tim("w")
        for iid, rec in tim.instances.items():
            peers = rec.instance.peers
            assert iid not in peers
            assert len(peers) == 1
            assert rec.instance.lock_client is not None
            assert rec.instance.wiera is tim

    def test_launch_takes_simulated_time(self):
        dep = build_deployment(REGIONS)
        t0 = dep.sim.now
        dep.start_wiera_instance("w", spec())
        # spawn RPCs + peer propagation over the WAN cost real time
        assert dep.sim.now > t0

    def test_gpm_stores_policy(self):
        dep = build_deployment(REGIONS)
        s = spec()
        dep.start_wiera_instance("w", s)
        assert dep.wiera.policies["w"] is s

    def test_primary_backup_requires_primary_placement(self):
        with pytest.raises(ValueError):
            GlobalPolicySpec(
                name="bad",
                placements=tuple(RegionPlacement(r, memory_only_policy())
                                 for r in REGIONS),
                consistency="primary_backup")

    def test_unknown_consistency_rejected(self):
        with pytest.raises(ValueError):
            GlobalPolicySpec(
                name="bad",
                placements=(RegionPlacement(US_EAST, memory_only_policy()),),
                consistency="quantum")

    def test_server_hint_pins_placement(self):
        dep = build_deployment(REGIONS)
        target = dep.server(US_EAST).server_id
        s = GlobalPolicySpec(
            name="pin",
            placements=(RegionPlacement(US_EAST, memory_only_policy(),
                                        server_hint=target),),
            consistency="local")
        dep.start_wiera_instance("pin", s)
        rec = next(iter(dep.tim("pin").instances.values()))
        assert rec.server_id == target
