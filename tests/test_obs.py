"""Tests for repro.obs: tracing, metrics, exporters, zero-cost guarantee."""

import json
import pickle

import pytest

from repro import (
    DynamicConsistencySpec,
    GlobalPolicySpec,
    RegionPlacement,
    build_deployment,
)
from repro.core.monitoring import LatencyMonitor
from repro.net import EU_WEST, Network, US_EAST, US_WEST
from repro.obs import MetricsRegistry, NullTracer, chrome_trace_events, get_obs
from repro.obs.export import write_chrome_trace
from repro.obs.trace import NULL_SPAN
from repro.sim import Simulator
from repro.sim.rpc import RpcNode, call_with_timeout
from repro.tiera.policy import memory_only_policy
from repro.util.stats import percentile


def three_hop_world():
    """client -> relay -> store RPC chain across three regions."""
    sim = Simulator()
    tracer = get_obs(sim).enable_tracing()
    net = Network(sim)
    client = RpcNode(sim, net, net.add_host("client", US_WEST), name="client")
    relay = RpcNode(sim, net, net.add_host("relay", US_EAST), name="relay")
    store = RpcNode(sim, net, net.add_host("store", EU_WEST), name="store")

    def handle_store(msg):
        yield sim.timeout(0.002)
        return {"stored": msg.args["k"]}

    def handle_work(msg):
        result = yield relay.call(store, "store", {"k": msg.args["k"]})
        return result

    store.register("store", handle_store)
    relay.register("work", handle_work)
    return sim, tracer, client, relay, store


class TestSpanNesting:
    def test_multi_hop_rpc_spans_share_one_trace(self):
        sim, tracer, client, relay, store = three_hop_world()

        def main():
            result = yield client.call(relay, "work", {"k": "x"})
            return result

        p = sim.process(main())
        assert sim.run(until=p) == {"stored": "x"}

        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        outer = by_name["rpc:work"][0]
        handled = by_name["handle:work"][0]
        inner = by_name["rpc:store"][0]
        leaf = by_name["handle:store"][0]
        # one request, one trace — across three nodes and two RPC hops
        assert {s.trace_id for s in (outer, handled, inner, leaf)} \
            == {outer.trace_id}
        # ancestry: handle:store <- rpc:store <- handle:work <- rpc:work
        assert leaf.parent_id == inner.span_id
        assert inner.parent_id == handled.span_id
        assert handled.parent_id == outer.span_id
        assert outer.parent_id is None
        # each child runs inside its parent's sim-time interval
        for child, parent in ((leaf, inner), (inner, handled),
                              (handled, outer)):
            assert parent.start <= child.start
            assert child.end <= parent.end

    def test_network_transmits_nest_under_rpc(self):
        sim, tracer, client, relay, store = three_hop_world()

        def main():
            yield client.call(relay, "work", {"k": "x"})

        p = sim.process(main())
        sim.run(until=p)
        transmits = tracer.by_category("net")
        assert len(transmits) == 4  # two hops, request + reply each
        rpc_ids = {s.span_id for s in tracer.by_category("rpc")}
        assert all(t.parent_id in rpc_ids for t in transmits)

    def test_concurrent_requests_get_distinct_traces(self):
        sim, tracer, client, relay, store = three_hop_world()

        def main():
            calls = [client.call(relay, "work", {"k": f"k{i}"})
                     for i in range(3)]
            for call in calls:
                yield call

        p = sim.process(main())
        sim.run(until=p)
        roots = [s for s in tracer.spans if s.name == "rpc:work"]
        assert len({s.trace_id for s in roots}) == 3

    def test_span_records_handler_error(self):
        sim = Simulator()
        tracer = get_obs(sim).enable_tracing()
        net = Network(sim)
        a = RpcNode(sim, net, net.add_host("a", US_EAST), name="a")
        b = RpcNode(sim, net, net.add_host("b", US_WEST), name="b")

        def boom(msg):
            yield sim.timeout(0.0)
            raise ValueError("nope")

        b.register("boom", boom)

        def main():
            with pytest.raises(ValueError):
                yield a.call(b, "boom")

        p = sim.process(main())
        sim.run(until=p)
        handled = [s for s in tracer.spans if s.name == "handle:boom"]
        assert handled and "ValueError" in handled[0].args["error"]


class TestMetrics:
    def test_histogram_percentiles_match_reference(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        hist = registry.histogram("latency", op="put")
        values = [(7 * i) % 100 / 10.0 for i in range(100)]
        for v in values:
            hist.observe(v)
        for q in (50, 95, 99):
            assert hist.percentile(q) == pytest.approx(percentile(values, q))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == min(values)
        assert snap["max"] == max(values)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_histogram_windowed_queries_use_sim_time(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        hist = registry.histogram("h")
        hist.observe(5.0)

        def later():
            yield sim.timeout(10.0)
            hist.observe(1.0)

        p = sim.process(later())
        sim.run(until=p)
        assert hist.values_since(0.0) == [5.0, 1.0]
        assert hist.values_since(9.0) == [1.0]
        assert hist.max_since(9.0) == 1.0
        assert hist.max_since(11.0) is None

    def test_labels_separate_series(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        registry.counter("ops", tier="mem").inc(2)
        registry.counter("ops", tier="disk").inc(3)
        assert registry.counter("ops", tier="mem").value == 2
        snap = registry.snapshot()
        assert snap["ops{tier=disk}"] == 3
        assert snap["ops{tier=mem}"] == 2

    def test_rpc_timeout_counted(self):
        sim = Simulator()
        net = Network(sim)
        a = RpcNode(sim, net, net.add_host("a", US_EAST), name="a")
        b = RpcNode(sim, net, net.add_host("b", US_WEST), name="b")

        def slow(msg):
            yield sim.timeout(60.0)

        b.register("slow", slow)

        def main():
            with pytest.raises(TimeoutError):
                yield from call_with_timeout(sim, a.call(b, "slow"), 1.0)

        p = sim.process(main())
        sim.run(until=p)
        assert get_obs(sim).metrics.counter("rpc.timeouts").value == 1


class TestMetricsMerge:
    """merge_from / dump_state / load_state — the parallel runner's
    report-combining primitives."""

    def test_counters_add_and_missing_are_created(self):
        sim = Simulator()
        a, b = MetricsRegistry(sim), MetricsRegistry(sim)
        a.counter("ops", tier="mem").inc(2)
        b.counter("ops", tier="mem").inc(3)
        b.counter("ops", tier="disk").inc(5)
        a.merge_from(b)
        assert a.counter("ops", tier="mem").value == 5
        assert a.counter("ops", tier="disk").value == 5
        assert b.counter("ops", tier="mem").value == 3  # source untouched

    def test_gauge_modes(self):
        sim = Simulator()
        a, b = MetricsRegistry(sim), MetricsRegistry(sim)
        a.gauge("depth").set(4.0)
        b.gauge("depth").set(2.5)
        a.merge_from(b, gauges="add")
        assert a.gauge("depth").value == 6.5
        a.merge_from(b, gauges="last")
        assert a.gauge("depth").value == 2.5
        with pytest.raises(ValueError):
            a.gauge("depth").merge_from(b.gauge("depth"), mode="median")

    def test_histogram_union_interleaves_by_time(self):
        sim = Simulator()
        a, b = MetricsRegistry(sim), MetricsRegistry(sim)
        ha, hb = a.histogram("lat"), b.histogram("lat")
        ha.observe(1.0)
        hb.observe(2.0)

        def advance():
            yield sim.timeout(5.0)
            ha.observe(3.0)
            hb.observe(4.0)

        p = sim.process(advance())
        sim.run(until=p)
        ha.merge_from(hb)
        assert ha.stats.count == 4
        assert ha.stats.min == 1.0 and ha.stats.max == 4.0
        assert ha.stats.mean == pytest.approx(2.5)
        # ring is time-sorted, ties keep self's samples first
        assert [v for _, v in ha._ring] == [1.0, 2.0, 3.0, 4.0]

    def test_histogram_merge_respects_ring_bound(self):
        sim = Simulator()
        a, b = MetricsRegistry(sim), MetricsRegistry(sim)
        ha = a.histogram("lat", maxlen=4)
        hb = b.histogram("lat", maxlen=4)
        for i in range(4):
            ha.observe(float(i))
            hb.observe(float(10 + i))
        ha.merge_from(hb)
        assert len(ha._ring) == 4          # bound kept
        assert ha.stats.count == 8         # aggregate stats see all

    def test_dump_load_round_trip(self):
        sim = Simulator()
        src = MetricsRegistry(sim)
        src.counter("ops", node="a").inc(7)
        src.gauge("depth").set(1.25)
        src.histogram("lat", op="get").observe(0.5)
        src.histogram("lat", op="get").observe(1.5)
        state = pickle.loads(pickle.dumps(src.dump_state()))  # wire hop
        dst = MetricsRegistry(sim).load_state(state)
        assert dst.snapshot() == src.snapshot()

    def test_dump_state_is_detached(self):
        """A dump must not alias live accumulators (the runner keeps a
        baseline dump while the run continues mutating the registry)."""
        sim = Simulator()
        reg = MetricsRegistry(sim)
        hist = reg.histogram("lat")
        hist.observe(1.0)
        dump = reg.dump_state()
        hist.observe(100.0)
        (_, _, _, state), = [row for row in dump if row[0] == "histogram"]
        assert state["stats"].count == 1
        assert state["ring"] == [(0.0, 1.0)]


def tiny_deployment(with_tracing):
    dep = build_deployment((US_EAST, US_WEST), seed=7,
                           with_tracing=with_tracing)
    spec = GlobalPolicySpec(
        name="obs",
        placements=(RegionPlacement(US_EAST, memory_only_policy()),
                    RegionPlacement(US_WEST, memory_only_policy())),
        consistency="multi_primaries")
    instances = dep.start_wiera_instance("obs", spec)
    client = dep.add_client(US_WEST, instances=instances)

    def workload():
        for i in range(10):
            yield from client.put(f"k{i % 3}", b"v" * (100 + i))
            yield from client.get(f"k{i % 3}")
    dep.drive(workload())
    return dep, client


class TestZeroCostWhenDisabled:
    def test_disabled_tracer_is_noop(self):
        sim = Simulator()
        obs = get_obs(sim)
        assert isinstance(obs.tracer, NullTracer)
        assert obs.tracer.span("x", cat="y") is NULL_SPAN
        assert not obs.tracing_enabled

    def test_latencies_bit_identical_with_and_without_tracing(self):
        _, plain = tiny_deployment(with_tracing=False)
        dep, traced = tiny_deployment(with_tracing=True)
        assert plain.put_latency.values == traced.put_latency.values
        assert plain.get_latency.values == traced.get_latency.values
        assert plain.put_latency.times == traced.put_latency.times
        # and the traced run actually recorded the request trees
        assert dep.obs.tracer.spans


class TestMonitorsOnRegistry:
    def test_latency_monitor_reads_shared_histograms(self):
        dep, client = tiny_deployment(with_tracing=False)
        tim = dep.tim("obs")
        monitor = LatencyMonitor(tim, DynamicConsistencySpec(op="put"))
        signal = monitor.observed_signal()
        # the workload just ran, so app put samples are in the window
        assert signal is not None
        assert signal == pytest.approx(max(client.put_latency.values[-3:]),
                                       rel=1.0)

    def test_probe_timeouts_recorded(self):
        dep, client = tiny_deployment(with_tracing=False)
        tim = dep.tim("obs")
        monitor = LatencyMonitor(
            tim, DynamicConsistencySpec(probe_timeout=0.0001))

        def probe():
            value = yield from monitor.probe_estimate()
            return value

        dep.drive(probe())
        assert monitor._timeout_counter.value > 0


class TestChromeExport:
    def test_trace_event_json_is_valid_and_nested(self, tmp_path):
        sim, tracer, client, relay, store = three_hop_world()

        def main():
            yield client.call(relay, "work", {"k": "x"})

        p = sim.process(main())
        sim.run(until=p)
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in events)
        xs = [e for e in events if e["ph"] == "X"]
        assert xs and all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"client", "relay", "store"} <= names
        # the handler event is time-contained in its rpc event
        by_name = {e["name"]: e for e in xs}
        outer, handled = by_name["rpc:work"], by_name["handle:work"]
        assert outer["ts"] <= handled["ts"]
        assert (handled["ts"] + handled["dur"]
                <= outer["ts"] + outer["dur"] + 1e-6)
        assert handled["args"]["parent_span_id"] == outer["args"]["span_id"]

    def test_unfinished_spans_are_skipped(self):
        sim = Simulator()
        tracer = get_obs(sim).enable_tracing()
        open_span = tracer.span("never-closed")
        done = tracer.span("done")
        done.finish()
        events = chrome_trace_events(tracer.spans + [open_span])
        assert [e["name"] for e in events if e["ph"] == "X"] == ["done"]
