"""Tests for the network substrate: topology, links, dynamics, monitor."""

import pytest

from repro.net import (
    ASIA_EAST,
    EU_WEST,
    US_EAST,
    US_WEST,
    BandwidthLink,
    HostDownError,
    Network,
    NetworkError,
    NetworkMonitor,
    Topology,
)
from repro.net.vmprofiles import VM_PROFILES, VmProfile, get_profile
from repro.sim import Simulator
from repro.util.units import KB, MB, MS


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


def transfer(sim, net, src, dst, nbytes):
    proc = sim.process(net.transmit(src, dst, nbytes))
    start = sim.now
    sim.run(until=proc)
    return sim.now - start


class TestTopology:
    def test_symmetric(self):
        topo = Topology()
        assert (topo.oneway(US_EAST, "aws", EU_WEST, "aws")
                == topo.oneway(EU_WEST, "aws", US_EAST, "aws"))

    def test_intra_dc_vs_cross_provider(self):
        topo = Topology()
        same = topo.oneway(US_EAST, "aws", US_EAST, "aws")
        cross = topo.oneway(US_EAST, "aws", US_EAST, "azure")
        assert same < cross

    def test_unknown_pair_raises(self):
        topo = Topology()
        topo.add_region("mars")
        with pytest.raises(KeyError):
            topo.oneway("mars", "aws", US_EAST, "aws")

    def test_override(self):
        topo = Topology()
        topo.set_latency("us-west-1", "us-west-2", 0.005)
        assert topo.oneway("us-west-1", "aws", "us-west-2", "aws") == 0.005

    def test_paper_geometry(self):
        """EU West <-> Asia East RTT ~220 ms explains Table 3's 216 ms."""
        topo = Topology()
        assert topo.rtt(EU_WEST, "aws", ASIA_EAST, "aws") == pytest.approx(0.220)


class TestBandwidthLink:
    def test_transmission_time(self, sim):
        link = BandwidthLink(sim, rate=1 * MB)
        assert link.transmission_time(512 * KB) == pytest.approx(0.5)

    def test_serialization(self, sim):
        link = BandwidthLink(sim, rate=1 * MB)
        done = []

        def sender(tag):
            yield from link.transmit(1 * MB)
            done.append((tag, sim.now))

        sim.process(sender("a"))
        sim.process(sender("b"))
        sim.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_infinite_rate_instant(self, sim):
        link = BandwidthLink(sim)

        def sender():
            yield from link.transmit(10 * MB)
            return sim.now

        p = sim.process(sender())
        assert sim.run(until=p) == 0.0

    def test_invalid_rate(self, sim):
        with pytest.raises(ValueError):
            BandwidthLink(sim, rate=0)


class TestNetworkTransfers:
    def test_wan_latency(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        elapsed = transfer(sim, net, a, b, 100)
        assert elapsed == pytest.approx(35 * MS)

    def test_same_host_is_free(self, sim, net):
        a = net.add_host("a", US_EAST)
        assert transfer(sim, net, a, a, 10 * MB) == 0.0

    def test_nic_delay_applies(self, sim, net):
        a = net.add_host("a", US_EAST, vm="aws.t2_micro")
        b = net.add_host("b", US_WEST, vm="aws.t2_micro")
        nic = get_profile("aws.t2_micro").nic_delay
        elapsed = transfer(sim, net, a, b, 100)
        # plus the (tiny) egress serialization of 100 bytes
        assert elapsed == pytest.approx(35 * MS + 2 * nic, rel=1e-3)

    def test_duplicate_host_rejected(self, net):
        net.add_host("a", US_EAST)
        with pytest.raises(ValueError):
            net.add_host("a", US_WEST)

    def test_down_host_unreachable(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        b.crash()

        def send():
            yield from net.transmit(a, b, 10)

        p = sim.process(send())
        with pytest.raises(HostDownError):
            sim.run(until=p)

    def test_recovery(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        b.crash()
        b.recover()
        assert transfer(sim, net, a, b, 10) > 0


class TestDynamics:
    def test_injected_host_delay_window(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        net.inject_host_delay(b, 0.5, start=10.0, duration=20.0)
        assert transfer(sim, net, a, b, 10) == pytest.approx(35 * MS)
        sim.run(until=15.0)
        assert transfer(sim, net, a, b, 10) == pytest.approx(0.5 + 35 * MS)
        sim.run(until=40.0)
        assert transfer(sim, net, a, b, 10) == pytest.approx(35 * MS)

    def test_pair_delay(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        c = net.add_host("c", EU_WEST)
        net.inject_pair_delay(US_EAST, US_WEST, 0.2)
        assert transfer(sim, net, a, b, 10) == pytest.approx(0.2 + 35 * MS)
        assert transfer(sim, net, a, c, 10) == pytest.approx(40 * MS)

    def test_partition_and_heal(self, sim, net):
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        net.partition(US_EAST, US_WEST, duration=100.0)

        def send():
            yield from net.transmit(a, b, 10)

        p = sim.process(send())
        with pytest.raises(NetworkError):
            sim.run(until=p)
        net.heal_partition(US_EAST, US_WEST)
        assert transfer(sim, net, a, b, 10) > 0


class TestVmProfiles:
    def test_all_profiles_valid(self):
        for name, profile in VM_PROFILES.items():
            assert profile.name == name
            assert profile.network_bw > 0

    def test_azure_disk_iops_flat_500(self):
        for name in ("azure.basic_a2", "azure.standard_d1",
                     "azure.standard_d2", "azure.standard_d3"):
            assert get_profile(name).disk_iops == 500

    def test_network_throttle_ordering(self):
        """Fig. 11's premise: small VMs have heavier NIC overhead."""
        a2 = get_profile("azure.basic_a2")
        d1 = get_profile("azure.standard_d1")
        d2 = get_profile("azure.standard_d2")
        assert a2.nic_delay > d1.nic_delay > d2.nic_delay
        assert a2.network_bw < d1.network_bw < d2.network_bw

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("azure.mega")

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            VmProfile(name="bad", cpus=1, ram_gb=1, network_bw=-1,
                      nic_delay=0, disk_iops=1, cpu_factor=1)


class TestMonitor:
    def test_records_transfers(self, sim, net):
        monitor = NetworkMonitor(sim, window=60.0)
        monitor.attach(net)
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        transfer(sim, net, a, b, 10)
        transfer(sim, net, a, b, 10)
        assert monitor.mean_latency("a", "b") == pytest.approx(35 * MS)
        assert monitor.observed_pairs() == [("a", "b")]

    def test_window_trim(self, sim, net):
        monitor = NetworkMonitor(sim, window=5.0)
        monitor.attach(net)
        a = net.add_host("a", US_EAST)
        b = net.add_host("b", US_WEST)
        transfer(sim, net, a, b, 10)
        sim.run(until=100.0)
        assert monitor.recent_latencies("a", "b") == []
        assert monitor.totals[("a", "b")].count == 1
