"""Focused tests for the monitor components themselves."""

import pytest

from repro import (
    DynamicConsistencySpec,
    GlobalPolicySpec,
    RegionPlacement,
    build_deployment,
)
from repro.core.monitoring import LatencyMonitor
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def deploy(**kwargs):
    dep = build_deployment(REGIONS, seed=19)
    spec = GlobalPolicySpec(
        name="m",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="multi_primaries", **kwargs)
    instances = dep.start_wiera_instance("m", spec)
    return dep, instances


class TestProbeEstimate:
    def test_estimate_matches_strong_put_anatomy(self):
        """The probe-based estimate lands near the real strong put cost."""
        dep, instances = deploy()
        tim = dep.tim("m")
        monitor = LatencyMonitor(tim, DynamicConsistencySpec())
        client = dep.add_client(US_WEST, instances=instances)

        def measure():
            estimate = yield from monitor.probe_estimate()
            result = yield from client.put("k", b"v")
            return estimate, result["latency"]
        estimate, actual = dep.drive(measure())
        # worst-instance estimate should bound the US West put and be the
        # same order of magnitude
        assert estimate == pytest.approx(actual, rel=0.8)
        assert estimate >= 0.2

    def test_estimate_sees_injected_delay(self):
        dep, instances = deploy()
        tim = dep.tim("m")
        monitor = LatencyMonitor(tim, DynamicConsistencySpec())

        def measure():
            before = yield from monitor.probe_estimate()
            for other in REGIONS:
                if other != US_WEST:
                    dep.network.inject_pair_delay(US_WEST, other, 0.4)
            after = yield from monitor.probe_estimate()
            return before, after
        before, after = dep.drive(measure())
        assert after > before + 0.5  # at least one extra round trip

    def test_estimate_skips_down_instances(self):
        dep, instances = deploy()
        tim = dep.tim("m")
        monitor = LatencyMonitor(tim, DynamicConsistencySpec())
        dep.instance("m", ASIA_EAST).host.down = True

        def measure():
            value = yield from monitor.probe_estimate()
            return value
        # must not raise even though probes to Asia fail
        assert dep.drive(measure()) > 0


class TestViolationClocks:
    def test_sparse_samples_keep_verdict(self):
        dep, instances = deploy()
        tim = dep.tim("m")
        spec = DynamicConsistencySpec(latency_threshold=0.1, period=30.0,
                                      check_interval=1.0)
        monitor = LatencyMonitor(tim, spec)
        iid = next(iter(tim.instances))
        # one violating sample, then silence
        monitor._hist(iid).observe(0.5)
        assert monitor._update_violation_clocks() is not None
        dep.sim.run(until=dep.sim.now + 60.0)
        # no fresh samples: the clock keeps running, not resetting
        longest = monitor._update_violation_clocks()
        assert longest is not None and longest >= 60.0

    def test_healthy_sample_clears_clock(self):
        dep, instances = deploy()
        tim = dep.tim("m")
        spec = DynamicConsistencySpec(latency_threshold=0.1, period=30.0)
        monitor = LatencyMonitor(tim, spec)
        iid = next(iter(tim.instances))
        monitor._hist(iid).observe(0.5)
        monitor._update_violation_clocks()
        # Let the violating sample age out of the 4 s window, then record
        # a healthy one — the shared registry histogram is append-only.
        dep.sim.run(until=dep.sim.now + 10.0)
        monitor._hist(iid).observe(0.05)
        assert monitor._update_violation_clocks() is None

    def test_monitor_only_counts_app_requests(self):
        dep, instances = deploy()
        tim = dep.tim("m")
        monitor = LatencyMonitor(tim, DynamicConsistencySpec(op="put"))
        record = next(iter(tim.instances.values()))
        instance = record.instance
        instance._notify_latency("put", 1.0, "app")
        instance._notify_latency("put", 9.0, "peer-x")   # forwarded: not counted
        instance._notify_latency("get", 9.0, "app")      # wrong op: not counted
        assert monitor._hist(record.instance_id).values() == [1.0]
