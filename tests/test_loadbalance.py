"""Tests for get-load balancing (RequestsMonitoring + forward, §3.2.3)."""


from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core import LoadBalanceSpec
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST, EU_WEST)


def deploy(lb=None):
    dep = build_deployment(REGIONS, seed=23)
    spec = GlobalPolicySpec(
        name="lb",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="multi_primaries",
        load_balance=lb)
    instances = dep.start_wiera_instance("lb", spec)
    return dep, instances


def seed_key(dep, instances):
    client = dep.add_client(US_EAST, instances=instances, name="seeder")

    def seed():
        yield from client.put("hot", b"payload" * 64)
    dep.drive(seed())


class TestRedirectMechanism:
    def test_manual_redirect_forwards_fraction(self):
        dep, instances = deploy()
        seed_key(dep, instances)
        tim = dep.tim("lb")
        east = dep.instance("lb", US_EAST)
        west_id = next(iid for iid, rec in tim.instances.items()
                       if rec.region == US_WEST)

        def install():
            yield tim.node.call(east.node, "ctl_set_redirect",
                                {"peer": west_id, "fraction": 1.0})
        dep.drive(install())
        client = dep.add_client(US_EAST, instances=instances, name="reader")

        def read():
            result = yield from client.get("hot")
            return result
        result = dep.drive(read())
        assert result["data"] == b"payload" * 64
        assert east.redirected_gets == 1
        # the redirected read paid the WAN trip to US West
        assert result["latency"] > 0.06

    def test_clearing_redirect(self):
        dep, instances = deploy()
        seed_key(dep, instances)
        east = dep.instance("lb", US_EAST)
        east.get_redirect = ("whatever", 1.0)

        def clear():
            yield east.node.call(east.node, "ctl_set_redirect",
                                 {"peer": None})
        dep.drive(clear())
        assert east.get_redirect is None


class TestLoadBalancerMonitor:
    def test_overload_installs_then_clears(self):
        lb = LoadBalanceSpec(threshold_rps=20.0, clear_rps=5.0,
                             shed_fraction=0.5, window=5.0,
                             check_interval=2.0)
        dep, instances = deploy(lb)
        seed_key(dep, instances)
        tim = dep.tim("lb")
        east = dep.instance("lb", US_EAST)
        balancer = next(m for m in tim.monitors
                        if type(m).__name__ == "LoadBalancer")
        client = dep.add_client(US_EAST, instances=instances, name="hammer")

        # 50 gets/s at the east instance for 20 seconds
        stop_at = dep.sim.now + 20.0

        def hammer():
            while dep.sim.now < stop_at:
                yield from client.get("hot")
                yield dep.sim.timeout(0.02)
        proc = dep.sim.process(hammer())
        dep.sim.run(until=proc)
        assert balancer.redirects_installed >= 1
        assert east.redirected_gets > 0
        # after the storm, the redirect is removed (hysteresis)
        dep.sim.run(until=dep.sim.now + 30.0)
        assert east.get_redirect is None
        assert balancer.redirects_cleared >= 1

    def test_no_redirect_below_threshold(self):
        lb = LoadBalanceSpec(threshold_rps=100.0, window=5.0,
                             check_interval=2.0)
        dep, instances = deploy(lb)
        seed_key(dep, instances)
        client = dep.add_client(US_EAST, instances=instances, name="calm")

        def trickle():
            for _ in range(20):
                yield from client.get("hot")
                yield dep.sim.timeout(1.0)
        dep.drive(trickle())
        east = dep.instance("lb", US_EAST)
        assert east.get_redirect is None
        assert east.redirected_gets == 0

    def test_no_shed_when_all_hot(self):
        """No peer with headroom -> no redirect (shedding would just move
        the overload around)."""
        lb = LoadBalanceSpec(threshold_rps=10.0, window=5.0,
                             check_interval=2.0, peer_headroom=0.5)
        dep, instances = deploy(lb)
        seed_key(dep, instances)
        clients = [dep.add_client(r, instances=instances, name=f"h-{r}")
                   for r in REGIONS]
        stop_at = dep.sim.now + 15.0

        def hammer(c):
            while dep.sim.now < stop_at:
                try:
                    yield from c.get("hot")
                except Exception:
                    pass
                yield dep.sim.timeout(0.03)
        procs = [dep.sim.process(hammer(c)) for c in clients]
        dep.sim.run(until=dep.sim.all_of(procs))
        tim = dep.tim("lb")
        balancer = next(m for m in tim.monitors
                        if type(m).__name__ == "LoadBalancer")
        assert balancer.redirects_installed == 0
