"""End-to-end integration scenarios straight from the paper's sections."""

import numpy as np
import pytest

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.net import US_EAST, US_WEST
from repro.net.topology import Topology
from repro.policydsl import builtin_policy
from repro.tiera import InstanceTier
from repro.tiera.policy import memory_only_policy
from repro.util.units import KB, MS
from repro.workloads import YcsbClient, YcsbWorkload
from repro.workloads.sysbench import SysbenchFileIO


class TestSimplerConsistency:
    """Figure 6(b): several DCs in one region, one fast primary (§3.3.3)."""

    def _topology(self):
        topo = Topology()
        metro = ("us-west-1", "us-west-2", "us-west-3")
        for i, a in enumerate(metro):
            for b in metro[i + 1:]:
                topo.set_latency(a, b, 0.004)  # 4 ms one-way within a metro
        return topo

    def test_nearby_dc_forwarding(self):
        spec = builtin_policy("SimplerConsistency")
        dep = build_deployment(spec.regions(), topology=self._topology(),
                               wiera_region="us-west-1", seed=4)
        instances = dep.start_wiera_instance("simpler", spec)
        client = dep.add_client("us-west-2", instances=instances)

        def app():
            put = yield from client.put("k", b"v" * (4 * KB))
            got = yield from client.get("k")
            return put, got
        put, got = dep.drive(app())
        # The put was forwarded to the us-west-1 primary: ~one metro RTT.
        assert put["primary"].endswith("us-west-1")
        assert 8 * MS <= put["latency"] <= 40 * MS
        assert got["data"] == b"v" * (4 * KB)
        # No global lock was involved: far cheaper than MultiPrimaries.
        assert dep.wiera.lock_service.grants == 0


class TestModularInstances:
    """§3.2.2: a Tiera instance as a (read-only) tier of another."""

    def test_intermediate_over_raw(self):
        dep = build_deployment([US_EAST], seed=5)
        raw_spec = GlobalPolicySpec(
            name="RAW-BIG-DATA-INSTANCES",
            placements=(RegionPlacement(
                US_EAST, builtin_policy("SsdWithIaInstance")),),
            consistency="local")
        dep.start_wiera_instance("raw", raw_spec)
        raw = dep.instance("raw", US_EAST)

        inter_spec = GlobalPolicySpec(
            name="INTERMEDIATE-DATA",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),),
            consistency="local")
        dep.start_wiera_instance("inter", inter_spec)
        inter = dep.instance("inter", US_EAST)

        # attach the raw instance as a read-only tier of the intermediate
        raw_tier = InstanceTier(
            dep.sim, inter.node, raw.node, "tier1", name="raw_data",
            remote_profile=raw.tier("tier1").profile, read_only=True,
            estimated_oneway=0.0003)

        def wire():
            yield inter.node.call(inter.node, "ctl_add_tier",
                                  {"name": "raw_data", "backend": raw_tier})
        dep.drive(wire())
        assert "raw_data" in inter.tiers

        # raw data written to the RAW instance is readable through the
        # intermediate instance's tier view
        raw.tier("tier1").preload("dataset/part-0", b"raw-bytes" * 100)
        raw_tier.mark_known("dataset/part-0")

        def use():
            data = yield from inter.tier("raw_data").read("dataset/part-0")
            # intermediate results go to the local memory tier as usual
            version = yield from inter.local_put("result-0", data[:64])
            return data, version
        data, version = dep.drive(use())
        assert data == b"raw-bytes" * 100
        assert version == 1

        # the read-only contract is enforced
        from repro.storage.backend import StorageError
        with pytest.raises(StorageError):
            dep.drive(inter.tier("raw_data").write("nope", b"x"))


class TestYcsbOnWiera:
    def test_load_and_run_with_oracle(self):
        from repro.workloads import StalenessOracle
        dep = build_deployment([US_EAST, US_WEST], seed=6)
        spec = GlobalPolicySpec(
            name="y",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),
                        RegionPlacement(US_WEST, memory_only_policy())),
            consistency="eventual", queue_interval=5.0)
        instances = dep.start_wiera_instance("y", spec)
        oracle = StalenessOracle()
        workload = YcsbWorkload.workload_a(record_count=20, value_size=256)
        east = dep.add_client(US_EAST, instances=instances)
        west = dep.add_client(US_WEST, instances=instances)
        yc_east = YcsbClient(dep.sim, east, workload,
                             np.random.default_rng(1), think_time=0.2,
                             oracle=oracle)
        yc_west = YcsbClient(dep.sim, west, workload,
                             np.random.default_rng(2), think_time=0.2,
                             oracle=oracle)

        def load():
            yield from yc_east.load()
        dep.drive(load())
        yc_east.start()
        yc_west.start()
        dep.sim.run(until=dep.sim.now + 60.0)
        yc_east.stop()
        yc_west.stop()
        total = yc_east.stats.ops + yc_west.stats.ops
        assert total > 400
        # the west client may race replication for freshly-loaded keys,
        # but errors must stay rare
        assert yc_east.stats.errors == 0
        assert yc_west.stats.errors < total * 0.05
        assert oracle.total_reads > 0
        # eventual consistency with a 5 s flush produces some staleness
        assert oracle.outdated_reads > 0


class TestSysbenchSmoke:
    def test_iops_measurement_against_tier(self):
        from repro.fs import TierBlockFile
        from repro.sim import Simulator
        from repro.storage import make_tier
        from repro.util.units import GB
        sim = Simulator()
        tier = make_tier(sim, "azure_disk", 1 * GB,
                         rng=np.random.default_rng(0))
        bf = TierBlockFile(tier, "f", nblocks=64, block_size=16 * KB)
        bf.prepare()
        bench = SysbenchFileIO(sim, bf, threads=2, read_prop=0.8,
                               duration=10.0,
                               rng=np.random.default_rng(1))
        proc = sim.process(bench.run())
        sim.run(until=proc)
        result = bench.result
        assert result.ops == result.reads + result.writes
        assert result.reads > result.writes  # 80/20 mix
        assert 400 <= result.iops <= 510    # the 500-IOPS cap binds
        assert result.duration == pytest.approx(10.0, rel=0.05)


class TestRubisSmoke:
    def test_short_run_counts_only_measure_window(self):
        from repro.db import MiniDB
        from repro.fs import TierBlockFile
        from repro.net.vmprofiles import get_profile
        from repro.sim import Simulator
        from repro.storage import make_tier
        from repro.util.units import GB, MB
        from repro.workloads.rubis import RubisApp, RubisBenchmark
        sim = Simulator()
        tier = make_tier(sim, "azure_disk", 8 * GB,
                         rng=np.random.default_rng(0))
        bf = TierBlockFile(tier, "db", nblocks=16384, block_size=16 * KB)
        bf.prepare()
        db = MiniDB(sim, bf, buffer_pool_bytes=16 * MB)
        app = RubisApp(sim, db, get_profile("azure.standard_d2"),
                       np.random.default_rng(1))
        bench = RubisBenchmark(sim, app, clients=50, think_time=0.5,
                               duration=20, ramp_up=8, ramp_down=4,
                               rng=np.random.default_rng(2))
        proc = sim.process(bench.run())
        sim.run(until=proc)
        assert bench.stats.requests > 0
        assert bench.stats.total_requests > bench.stats.requests
        assert bench.stats.errors == 0
        assert 0 < bench.throughput <= 50 / 0.5 + 1
        assert set(bench.stats.per_txn) <= {
            t.name for t in __import__(
                "repro.workloads.rubis", fromlist=["RUBIS_MIX"]).RUBIS_MIX}


class TestInstanceRpcSurface:
    def test_stats_and_list_keys(self):
        dep = build_deployment([US_EAST], seed=7)
        spec = GlobalPolicySpec(
            name="s",
            placements=(RegionPlacement(US_EAST, memory_only_policy()),),
            consistency="local")
        instances = dep.start_wiera_instance("s", spec)
        client = dep.add_client(US_EAST, instances=instances)
        node = instances[0]["node"]

        def app():
            yield from client.put("a", b"1")
            yield from client.put("b", b"2")
            stats = yield client.node.call(node, "stats")
            keys = yield client.node.call(node, "list_keys")
            return stats, keys
        stats, keys = dep.drive(app())
        assert stats["objects"] == 2
        assert stats["puts_from_app"] == 2
        assert sorted(keys["keys"]) == [("a", 1), ("b", 1)]
