"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.stats import LatencyRecorder, OnlineStats, percentile


class TestPercentile:
    def test_basic(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 50) == 3.0
        assert percentile(data, 100) == 5.0
        assert percentile(data, 25) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=60)
    def test_bounded_by_min_max(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)


class TestOnlineStats:
    def test_matches_naive(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        stats = OnlineStats()
        for x in data:
            stats.add(x)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(var)
        assert stats.stdev == pytest.approx(math.sqrt(var))
        assert stats.min == 1.0 and stats.max == 9.0

    def test_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=60)
    def test_property_matches_naive(self, data):
        stats = OnlineStats()
        for x in data:
            stats.add(x)
        mean = sum(data) / len(data)
        assert stats.mean == pytest.approx(mean, abs=1e-6)
        assert stats.count == len(data)


class TestOnlineStatsMerge:
    def test_merge_empty_sides(self):
        a, b = OnlineStats(), OnlineStats()
        b.add(2.0)
        a.merge(b)
        assert (a.count, a.mean, a.min, a.max) == (1, 2.0, 2.0, 2.0)
        b.merge(OnlineStats())
        assert b.count == 1

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=30),
           st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_property_merge_equals_single_accumulator(self, xs, ys):
        left, right, whole = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs:
            left.add(x)
            whole.add(x)
        for y in ys:
            right.add(y)
            whole.add(y)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, abs=1e-6)
        assert left.min == whole.min
        assert left.max == whole.max
        assert math.sqrt(max(left.variance, 0)) == pytest.approx(
            whole.stdev, abs=1e-6)


class TestLatencyRecorder:
    def test_windows_and_filters(self):
        rec = LatencyRecorder("ops")
        rec.record(1.0, 0.1, label="east")
        rec.record(2.0, 0.2, label="west")
        rec.record(3.0, 0.3, label="east")
        assert len(rec) == 3
        assert rec.mean() == pytest.approx(0.2)
        assert rec.window(1.5, 3.0) == [0.2]
        east = rec.filtered("east")
        assert east.values == [0.1, 0.3]
        assert rec.series()[0] == (1.0, 0.1)

    def test_empty_mean(self):
        assert LatencyRecorder().mean() == 0.0
