"""Ablation: DynamicConsistency threshold sensitivity.

The 800 ms / 30 s thresholds of Figure 5(a) decide which disturbances
count.  Sweeping the latency threshold shows the tradeoff: set it below
the strong-mode baseline and the policy flees to eventual consistency
immediately (strong consistency is unachievable anyway); set it too high
and real degradations are tolerated.
"""

from dataclasses import replace

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport, register_report
from repro.core.global_policy import DynamicConsistencySpec
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

REGIONS = (US_WEST, US_EAST, EU_WEST, ASIA_EAST)


def _run_threshold(threshold: float, duration: float = 180.0) -> dict:
    dep = build_deployment(REGIONS, seed=3)
    spec = builtin_policy("DynamicConsistency")
    spec = replace(spec, dynamic=DynamicConsistencySpec(
        latency_threshold=threshold, period=20.0))
    instances = dep.start_wiera_instance("abthr", spec)
    workload = YcsbWorkload.workload_a(record_count=20, value_size=1024)
    clients = []
    for region in REGIONS:
        c = dep.add_client(region, instances=instances, name=f"a-{region}")
        yc = YcsbClient(dep.sim, c, workload,
                        dep.rng.stream(f"y-{region}"), think_time=0.5)
        clients.append(yc)

    def load():
        yield from clients[0].load(20)
    dep.drive(load())
    t0 = dep.sim.now
    for yc in clients:
        yc.start()
    # one genuine 40 s disturbance in the middle of the run
    usw = dep.instance("abthr", US_WEST)
    dep.network.inject_host_delay(usw.host, 0.3, start=t0 + 60, duration=40)
    dep.sim.run(until=t0 + duration)
    for yc in clients:
        yc.stop()
    log = dep.tim("abthr").switch_log
    return {"to_weak": sum(1 for s in log if s[2] == "eventual"),
            "to_strong": sum(1 for s in log if s[2] == "multi_primaries"),
            "final": (log[-1][2] if log else "multi_primaries")}


def _run():
    return {thr: _run_threshold(thr) for thr in (0.2, 0.8, 3.0)}


def test_ablation_threshold(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = ExperimentReport(
        exp_id="ablation-threshold",
        title="Ablation: DynamicConsistency latency-threshold sweep "
              "(one 40 s disturbance injected)",
        columns=["threshold (s)", "switches to weak", "switches to strong",
                 "final model"],
        paper_claim="(design choice; paper uses 800 ms / 30 s)")
    for thr, stats in sweep.items():
        report.add_row(thr, stats["to_weak"], stats["to_strong"],
                       stats["final"])
    register_report(report)

    # 0.2 s is below the ~400 ms strong baseline: the policy switches to
    # eventual straight away and never finds conditions to switch back.
    assert sweep[0.2]["to_weak"] >= 1
    assert sweep[0.2]["final"] == "eventual"
    # 0.8 s reacts to the disturbance and recovers afterwards.
    assert sweep[0.8]["to_weak"] == 1
    assert sweep[0.8]["final"] == "multi_primaries"
    # 3.0 s tolerates the disturbance entirely.
    assert sweep[3.0]["to_weak"] == 0
