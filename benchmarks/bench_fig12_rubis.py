"""Figure 12: unmodified RUBiS throughput on Wiera."""

from repro.bench.experiments import run_fig12
from repro.bench.reporting import register_report


def test_fig12_rubis(benchmark):
    result, report = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    register_report(report)

    a2_l, a2_w = result.local_rps["azure.basic_a2"], result.wiera_rps["azure.basic_a2"]
    d1_l, d1_w = result.local_rps["azure.standard_d1"], result.wiera_rps["azure.standard_d1"]
    d2_l, d2_w = result.local_rps["azure.standard_d2"], result.wiera_rps["azure.standard_d2"]
    d3_l, d3_w = result.local_rps["azure.standard_d3"], result.wiera_rps["azure.standard_d3"]

    # Paper: 50-80% improvement on the larger instances...
    assert 1.40 <= d2_w / d2_l <= 1.90, d2_w / d2_l
    assert 1.40 <= d3_w / d3_l <= 1.90, d3_w / d3_l
    # ...and low throughput from the small instances (little or no gain —
    # they are CPU/network-throttled before storage matters).
    assert d1_w / d1_l < 1.10
    assert a2_w / a2_l < 1.35
    # Small instances are absolutely slower than large ones under Wiera.
    assert a2_w < d2_w and d1_w < d2_w
