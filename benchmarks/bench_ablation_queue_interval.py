"""Ablation: lazy-replication flush interval vs staleness and traffic.

§3.3.1: "Applications can specify how frequently queued updates need to be
distributed."  Sweeping the queue interval quantifies the tradeoff it
controls: short intervals keep replicas fresh but ship every version;
long intervals coalesce updates (less WAN traffic per §3.2.3's "reduce on
update traffic") at the price of stale reads.
"""

from dataclasses import replace

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport, register_report
from repro.net.topology import ASIA_EAST, EU_WEST, US_WEST
from repro.policydsl import builtin_policy
from repro.workloads.ycsb import StalenessOracle, YcsbClient, YcsbWorkload

REGIONS = (US_WEST, EU_WEST, ASIA_EAST)


def _run_interval(queue_interval: float, duration: float = 300.0):
    dep = build_deployment(REGIONS, seed=47)
    spec = builtin_policy("EventualConsistency")
    placements = tuple(replace(p, region=r)
                       for p, r in zip(spec.placements, REGIONS))
    spec = replace(spec, placements=placements,
                   queue_interval=queue_interval)
    instances = dep.start_wiera_instance("abq", spec)
    workload = YcsbWorkload.workload_b(record_count=10, value_size=1024)
    oracle = StalenessOracle()
    clients = []
    loader = dep.add_client(US_WEST, instances=instances, name="loader")

    def load():
        yc = YcsbClient(dep.sim, loader, workload, dep.rng.stream("l"))
        yield from yc.load(10)
    dep.drive(load())
    for region in REGIONS:
        wc = dep.add_client(region, instances=instances, name=f"c-{region}")
        yc = YcsbClient(dep.sim, wc, workload,
                        dep.rng.stream(f"y-{region}"), think_time=0.4,
                        oracle=oracle)
        clients.append(yc)
        yc.start()
    net_before = dep.network.bytes_transferred
    dep.sim.run(until=dep.sim.now + duration)
    for yc in clients:
        yc.stop()
    tim = dep.tim("abq")
    coalesced = sent = 0
    for rec in tim.instances.values():
        queue = tim.protocol._queues.get(rec.instance_id)
        if queue is not None:
            coalesced += queue.coalesced
            sent += queue.updates_sent
    return {
        "outdated": oracle.outdated_fraction,
        "updates_sent": sent,
        "coalesced": coalesced,
        "wan_mb": (dep.network.bytes_transferred - net_before) / (1 << 20),
    }


def _run():
    return {interval: _run_interval(interval)
            for interval in (1.0, 10.0, 60.0)}


def test_ablation_queue_interval(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = ExperimentReport(
        exp_id="ablation-queue",
        title="Ablation: eventual-consistency flush interval",
        columns=["interval (s)", "outdated reads (%)", "updates shipped",
                 "coalesced away", "WAN traffic (MB)"],
        paper_claim="(design knob, §3.3.1: 'how frequently queued updates "
                    "need to be distributed')")
    for interval, stats in sweep.items():
        report.add_row(interval, 100 * stats["outdated"],
                       stats["updates_sent"], stats["coalesced"],
                       stats["wan_mb"])
    register_report(report)

    # Staleness grows with the flush interval...
    assert sweep[1.0]["outdated"] < sweep[10.0]["outdated"]
    assert sweep[10.0]["outdated"] < sweep[60.0]["outdated"]
    # ...while coalescing reduces shipped updates and WAN bytes.
    assert sweep[60.0]["coalesced"] > sweep[1.0]["coalesced"]
    assert sweep[60.0]["updates_sent"] < sweep[1.0]["updates_sent"]
    assert sweep[60.0]["wan_mb"] < sweep[1.0]["wan_mb"]
