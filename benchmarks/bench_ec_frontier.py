"""EC cost/latency frontier: EC(4,2) vs 3x replication + CI gate.

Runs the same write/read workload against a 6-site deployment (four
regions on the primary provider plus two second-provider sites) under
two redundancy schemes with *equal durability* (both survive any two
site losses):

* **rep3** — ``RedundancySpec(k=1, m=2)``: plain 3x replication.
* **ec42** — ``RedundancySpec(k=4, m=2)``: Reed-Solomon, 1.5x overhead.

For each cell it measures the two axes the redundancy plane trades off:

* **dollars** — monthly storage cost at the bytes actually resident in
  the tiers (price book), plus the inter-region egress the run billed to
  the deployment :class:`CostLedger`.
* **latency** — clean read p99, and *degraded* read p99 while one
  fragment-holding host is crashed (EC must reconstruct from parity).

It also reports what the :class:`RedundancyOptimizer` *predicts* for the
same schemes, so the analytical model can be eyeballed against the
simulated outcome.

Output goes to ``results/BENCH_ec_frontier.json``; the checked-in file
carries a ``baseline`` block.  ``--check`` fails the run when EC's
monthly storage dollars stop beating replication's by MIN_STORAGE_RATIO
at equal durability, or when the degraded-read p99 exceeds
DEGRADED_P99_BUDGET; ``--rebaseline`` re-pins the baseline.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.core.global_policy import (GlobalPolicySpec, RedundancySpec,
                                      RegionPlacement)
from repro.ec.optimizer import RedundancyOptimizer
from repro.ec.protocol import decode_manifest
from repro.net.topology import (ASIA_EAST, EU_WEST, US_EAST, US_WEST,
                                Topology)
from repro.tiera.policy import disk_only_policy
from repro.util.units import GB

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_ec_frontier.json"

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)
#: six (region, provider) sites so EC(4,2)'s n=6 fragments all land on
#: distinct instances
SITES = ((US_EAST, "aws"), (US_WEST, "aws"), (EU_WEST, "aws"),
         (ASIA_EAST, "aws"), (US_EAST, "gcp"), (US_WEST, "gcp"))
PROVIDERS = {US_EAST: ("aws", "gcp"), US_WEST: ("aws", "gcp"),
             EU_WEST: ("aws",), ASIA_EAST: ("aws",)}

#: --check fails unless rep3 monthly storage dollars exceed ec42's by
#: this factor (theory: 3x vs 1.5x overhead -> ratio 2.0; manifests and
#: fragment padding eat a little of it)
MIN_STORAGE_RATIO = 1.5

#: --check fails when the degraded-read p99 (one fragment host down)
#: exceeds this many simulated seconds
DEGRADED_P99_BUDGET = 2.0


def _p99(samples: list[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _cell(redundancy: RedundancySpec, objects: int, value_size: int,
          reads: int, seed: int) -> dict:
    dep = build_deployment(list(REGIONS), providers=PROVIDERS,
                           with_ledger=True, seed=seed)
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(
            RegionPlacement(region, disk_only_policy(profile="s3"),
                            provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        redundancy=redundancy)
    instances = dep.start_wiera_instance("ec", spec)
    tim = dep.tim("ec")
    client = dep.add_client(US_EAST, instances=instances)
    payload = b"x" * value_size

    put_latencies: list[float] = []
    read_latencies: list[float] = []
    degraded_latencies: list[float] = []
    started_wall = time.perf_counter()

    def write_phase():
        for i in range(objects):
            res = yield from client.put(f"obj{i}", payload)
            put_latencies.append(res["latency"])
    dep.drive(write_phase())

    def read_phase(sink, count):
        def gen():
            for i in range(count):
                res = yield from client.get(f"obj{i % objects}")
                assert res["data"] == payload
                sink.append(res["latency"])
        dep.drive(gen())

    read_phase(read_latencies, reads)

    # knock out the holder of fragment 1 of obj0 (never the coordinator,
    # which holds fragment 0) and read through the outage
    coordinator = dep.instance("ec", US_EAST)
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("obj0", run_rules=False))[0])
    victim = tim.instances[manifest["frags"][1]].instance.host
    faults = dep.fault_schedule("frontier")
    crash_for = 1000.0
    faults.crash(at=dep.sim.now + 0.1, host=victim.name, duration=crash_for)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.2)
    read_phase(degraded_latencies, reads)
    dep.sim.run(until=dep.sim.now + crash_for)  # recover before teardown

    wall = time.perf_counter() - started_wall
    stored_bytes = 0
    monthly_storage = 0.0
    for rec in tim.instances.values():
        for backend in rec.instance.tiers.values():
            stored_bytes += backend.used_bytes
            monthly_storage += (backend.used_bytes / GB
                                * backend.profile.storage_price)
    n = redundancy.k + redundancy.m
    return {
        "scheme": f"EC({redundancy.k},{redundancy.m})",
        "k": redundancy.k,
        "m": redundancy.m,
        "overhead": round(n / redundancy.k, 2),
        "objects": objects,
        "value_size": value_size,
        "payload_bytes": objects * value_size,
        "stored_bytes": stored_bytes,
        "monthly_storage_dollars": round(monthly_storage, 6),
        "egress_dollars": round(dep.ledger.network_dollars(), 6),
        "put_p99": round(_p99(put_latencies), 4),
        "read_p99": round(_p99(read_latencies), 4),
        "degraded_read_p99": round(_p99(degraded_latencies), 4),
        "degraded_reads": int(dep.metric_total("ec.degraded_reads")),
        "wall_seconds": round(wall, 4),
    }


def optimizer_estimates(cold_bytes: int = 1 << 30) -> dict:
    """What the analytical model predicts for the same two schemes on
    the workload EC is *for*: a cold archive (default 1 GiB) touched
    about once a month.  At that point storage dollars dominate request
    and egress dollars and EC(4,2) wins; hotter profiles flip the choice
    back to replication (the per-object optimizer exists precisely to
    draw that line)."""
    topo = Topology()
    site_region = {f"{r}+{p}": r for r, p in SITES}

    def rtt(a: str, b: str) -> float:
        ra, rb = site_region.get(a, a), site_region.get(b, b)
        if ra == rb:
            return 0.0 if a == b else 2 * topo.cross_provider_same_region
        return topo.rtt(ra, "aws", rb, "aws")

    spec = RedundancySpec(candidates=((1, 2), (2, 2), (4, 2)))
    opt = RedundancyOptimizer(spec, tuple(site_region), rtt, tier="s3")
    out = {"profile": {"size_bytes": cold_bytes, "reads_per_month": 1,
                       "writes_per_month": 1}}
    for k, m in ((1, 2), (4, 2)):
        est = opt.evaluate(k, m, cold_bytes,
                           reads_per_month=1, writes_per_month=1,
                           reader_region=f"{US_EAST}+aws")
        out[f"EC({k},{m})"] = dataclasses.asdict(est)
    plan = opt.choose(size=cold_bytes, reads_per_month=1,
                      writes_per_month=1,
                      reader_region=f"{US_EAST}+aws")
    out["chosen"] = f"EC({plan.chosen.k},{plan.chosen.m})"
    return out


def run(quick: bool = False) -> dict:
    objects = 32 if quick else 128
    value_size = 16384 if quick else 65536
    reads = 64 if quick else 256
    rep3 = _cell(RedundancySpec(k=1, m=2), objects, value_size, reads,
                 seed=23)
    ec42 = _cell(RedundancySpec(k=4, m=2), objects, value_size, reads,
                 seed=23)
    return {
        "benchmark": "ec_frontier",
        "quick": quick,
        "sites": [f"{r}/{p}" for r, p in SITES],
        "rep3": rep3,
        "ec42": ec42,
        "storage_dollars_ratio": round(
            rep3["monthly_storage_dollars"]
            / max(ec42["monthly_storage_dollars"], 1e-12), 2),
        "degraded_read_penalty": round(
            ec42["degraded_read_p99"] / max(ec42["read_p99"], 1e-9), 2),
        "optimizer": optimizer_estimates(),
    }


# -- baseline plumbing ------------------------------------------------------

def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or "baseline" not in carried:
        carried["baseline"] = {
            "quick": result["quick"],
            "storage_dollars_ratio": result["storage_dollars_ratio"],
            "degraded_read_p99": result["ec42"]["degraded_read_p99"],
        }
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    ratio = result["storage_dollars_ratio"]
    if ratio < MIN_STORAGE_RATIO:
        print(f"gate: storage dollars ratio rep3/ec42 {ratio} "
              f"< required {MIN_STORAGE_RATIO} -> REGRESSION")
        ok = False
    else:
        print(f"gate: storage dollars ratio {ratio} "
              f">= {MIN_STORAGE_RATIO} -> ok (equal durability m=2)")
    p99 = result["ec42"]["degraded_read_p99"]
    if p99 > DEGRADED_P99_BUDGET:
        print(f"gate: degraded-read p99 {p99}s > budget "
              f"{DEGRADED_P99_BUDGET}s -> REGRESSION")
        ok = False
    else:
        print(f"gate: degraded-read p99 {p99}s <= "
              f"{DEGRADED_P99_BUDGET}s -> ok")
    if result["ec42"]["degraded_reads"] == 0:
        print("gate: no degraded reads recorded (crash phase did not "
              "exercise reconstruction) -> REGRESSION")
        ok = False
    baseline = result.get("baseline")
    if not baseline:
        print("no baseline recorded; drift floor passes vacuously")
        return ok
    if baseline.get("quick") != result.get("quick"):
        print("baseline was recorded in a different mode "
              f"(quick={baseline.get('quick')}); drift floor skipped — "
              "re-pin with --rebaseline in the mode you gate on")
        return ok
    ceiling = 1.25 * baseline["degraded_read_p99"]
    if baseline["degraded_read_p99"] > 0 and p99 > ceiling:
        print(f"gate: degraded p99 {p99}s drifted past baseline "
              f"{baseline['degraded_read_p99']}s (+25%) -> REGRESSION")
        ok = False
    else:
        print(f"gate: degraded p99 {p99}s within baseline drift -> ok")
    return ok


def test_ec_frontier(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert result["storage_dollars_ratio"] >= MIN_STORAGE_RATIO
    assert result["ec42"]["degraded_read_p99"] <= DEGRADED_P99_BUDGET
    assert result["ec42"]["degraded_reads"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless EC still beats replication "
                             f">= {MIN_STORAGE_RATIO}x on storage dollars "
                             "and degraded reads stay within budget")
    parser.add_argument("--rebaseline", action="store_true",
                        help="pin the baseline to this run")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result, rebaseline=args.rebaseline)
    rep3, ec42 = result["rep3"], result["ec42"]
    print(f"storage: rep3 ${rep3['monthly_storage_dollars']}/mo -> "
          f"ec42 ${ec42['monthly_storage_dollars']}/mo "
          f"({result['storage_dollars_ratio']}x cheaper, both survive "
          "2 site losses)")
    print(f"reads  : clean p99 {rep3['read_p99']}s vs {ec42['read_p99']}s, "
          f"degraded p99 {rep3['degraded_read_p99']}s vs "
          f"{ec42['degraded_read_p99']}s "
          f"({result['degraded_read_penalty']}x clean)")
    print(f"egress : rep3 ${rep3['egress_dollars']} vs "
          f"ec42 ${ec42['egress_dollars']}")
    print(f"optimizer chose {result['optimizer']['chosen']}")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
