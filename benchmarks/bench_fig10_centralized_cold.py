"""Figure 10: latency to the centralized US East S3-IA cold tier."""

from repro.bench.experiments import run_fig10
from repro.bench.reporting import register_report
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST


def test_fig10_centralized_cold(benchmark):
    result, report = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    register_report(report)

    # Local access is cheapest; every remote region pays its WAN RTT.
    assert result.get_ms[US_EAST] < result.get_ms[US_WEST]
    assert result.get_ms[US_WEST] < result.get_ms[ASIA_EAST]
    assert result.get_ms[EU_WEST] < result.get_ms[ASIA_EAST]

    # The paper's headline: ~200 ms worst-case get from Asia East.
    assert 150.0 <= result.get_ms[ASIA_EAST] <= 260.0
    # US East baseline is plain S3-IA service time (tens of ms).
    assert result.get_ms[US_EAST] < 60.0
