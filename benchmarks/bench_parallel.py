"""Multi-process sharded simulation: speedup + determinism gates.

Runs the 8-shard, 4-region open-loop YCSB cell once single-process and
once partitioned across worker processes (``repro.par``), and gates
(``--quick --check``) on the parallel contract:

* **determinism** — the partitioned run must produce the identical
  final store digest, identical acked-write digest, and identical
  open-loop conservation counters (offered / achieved / errors / shed /
  discarded) as the single-process run.  Always enforced.
* **speedup** — wall-clock speedup at ``WORKERS`` workers must reach
  MIN_SPEEDUP on the same cell.  Enforced only when the machine
  actually has >= WORKERS usable cores (CI runners do); on smaller
  hosts the measured value is recorded as informational, because a
  1-core box serializes the workers and measures barrier overhead, not
  parallel execution.

Output goes to ``results/BENCH_parallel.json``.  Run as a script
(``--quick`` shrinks the run for CI smoke) or via pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.openloop import PAR_REGIONS, parallel_cell_builder
from repro.par import run_parallel

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_parallel.json"

#: the partitioned configuration under test (one region group per worker)
WORKERS = 4

#: gate: wall-clock speedup of the WORKERS-way run over single-process,
#: enforced when the host has >= WORKERS usable cores
MIN_SPEEDUP = 2.5

#: the conservation counters that must match between runs
CONSERVED = ("offered", "achieved", "errors", "shed", "discarded")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run_summary(result) -> dict:
    report = result.report
    return {
        "workers": result.workers,
        "window_sim_sec": result.window,
        "wall_seconds": round(result.wall_seconds, 4),
        "kernel_events": result.events_processed,
        "events_per_second": round(result.events_per_second),
        "store_digest": result.store_digest,
        "acked_digest": report["acked_digest"],
        "counters": {k: report[k] for k in CONSERVED},
        "achieved_rate": round(report["achieved_rate"], 3),
        "bridged": [p["bridged"] for p in result.per_worker],
    }


def run(quick: bool = False, workers: int = WORKERS) -> dict:
    duration = 6.0 if quick else 15.0
    offered_total = 4000.0 if quick else 8000.0
    build = parallel_cell_builder(shards=8, offered_total=offered_total,
                                  workers=workers, regions=PAR_REGIONS)
    single = run_parallel(build, duration, workers=1, grace=1.0)
    par = run_parallel(build, duration, workers=workers, grace=1.0)
    runs = [_run_summary(single), _run_summary(par)]
    if not quick:
        half = run_parallel(build, duration, workers=workers // 2,
                            grace=1.0)
        runs.insert(1, _run_summary(half))
    speedup = single.wall_seconds / max(par.wall_seconds, 1e-9)
    equivalence = {
        "digest_match": par.store_digest == single.store_digest,
        "acked_digest_match": (par.report["acked_digest"]
                               == single.report["acked_digest"]),
        "counters_match": all(par.report[k] == single.report[k]
                              for k in CONSERVED),
    }
    return {
        "benchmark": "parallel",
        "quick": quick,
        "cell": {"shards": 8, "regions": list(PAR_REGIONS),
                 "offered_per_sec": offered_total,
                 "duration_sim_sec": duration},
        "cores": _usable_cores(),
        "workers": workers,
        "speedup": round(speedup, 3),
        "equivalence": equivalence,
        "runs": runs,
    }


def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    """Write the result, carrying the last full run's headline numbers
    as ``baseline`` (same idiom as the other benches)."""
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or not result["quick"] or "baseline" not in carried:
        carried["baseline"] = {
            "quick": result["quick"],
            "cores": result["cores"],
            "workers": result["workers"],
            "speedup": result["speedup"],
            "equivalence": result["equivalence"],
            "events_per_second": {str(r["workers"]): r["events_per_second"]
                                  for r in result["runs"]},
        }
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    eq = result["equivalence"]
    for name, label in (("digest_match", "store digest"),
                        ("acked_digest_match", "acked-write digest"),
                        ("counters_match", "conservation counters")):
        if not eq[name]:
            print(f"gate: {label} differs between single-process and "
                  f"{result['workers']}-worker runs -> REGRESSION")
            ok = False
        else:
            print(f"gate: {label} identical across "
                  f"{result['workers']}-worker partition -> ok")
    speedup = result["speedup"]
    if result["cores"] >= result["workers"]:
        if speedup < MIN_SPEEDUP:
            print(f"gate: speedup {speedup}x at {result['workers']} workers "
                  f"on {result['cores']} cores < {MIN_SPEEDUP}x "
                  "-> REGRESSION")
            ok = False
        else:
            print(f"gate: speedup {speedup}x at {result['workers']} workers "
                  f">= {MIN_SPEEDUP}x -> ok")
    else:
        print(f"gate: speedup {speedup}x informational only "
              f"({result['cores']} usable cores < {result['workers']} "
              "workers; determinism gates still enforced)")
    return ok


def test_parallel(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert check_gate(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the parallel run matches the "
                             "single-process run and (with enough cores) "
                             f"reaches {MIN_SPEEDUP}x speedup")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the carried baseline block with this "
                             "run's numbers")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help=f"worker count for the partitioned run "
                             f"(default {WORKERS})")
    args = parser.parse_args()
    result = run(quick=args.quick, workers=args.workers)
    out = emit(result, rebaseline=args.rebaseline)
    print(f"{'workers':>8} {'wall s':>8} {'events':>10} {'events/s':>10} "
          f"{'achieved/s':>11}")
    for row in result["runs"]:
        print(f"{row['workers']:>8} {row['wall_seconds']:>8.3f} "
              f"{row['kernel_events']:>10} {row['events_per_second']:>10} "
              f"{row['achieved_rate']:>11.0f}")
    print(f"speedup at {result['workers']} workers: {result['speedup']}x "
          f"({result['cores']} usable cores)")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
