"""Elastic autoscaler under a flash crowd: scale up, absorb, scale down.

One scenario, run twice — the PR-6 flash-crowd shape (steady load in
every region, one region spiking ``CROWD_MULTIPLIER``x) against:

* **autoscaled** — a managed 1-shard namespace with an
  :class:`~repro.core.global_policy.AutoscaleSpec` attached; the
  controller must grow the shard count toward demand and shrink it back
  once the crowd passes.
* **static** — the identical topology pinned at 1 shard, the
  do-nothing baseline the autoscaler has to beat.

A dedicated verification writer (its own client, retries enabled) runs
through the whole scenario recording acknowledged versions; every acked
write must be durable and readable at the end, rebalances included.

CI gates (``--quick --check``):

* peak shard count >= MIN_PEAK_SCALE x the initial count (the
  controller reacted);
* the first scale-down lands within SCALE_DOWN_WINDOW_LIMIT decision
  windows of the crowd subsiding (it also relaxes);
* zero acked-write loss across every rebalance;
* the autoscaled run sheds < STATIC_SHED_FRACTION of what the static
  baseline sheds (elasticity actually absorbed the crowd).

Output goes to ``results/BENCH_autoscale.json``.  Run as a script
(``--quick`` shrinks the run for CI smoke) or via pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.bench.openloop import preload_records, scaleout_workload
from repro.core.global_policy import (
    AutoscaleSpec,
    GlobalPolicySpec,
    RegionPlacement,
)
from repro.faults.retry import RetryPolicy
from repro.load.arrivals import flash_crowd_rate
from repro.load.cohort import CohortSpec
from repro.net.topology import US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_autoscale.json"

REGIONS = (US_EAST, US_WEST)

#: gate: peak shards / initial shards during the crowd
MIN_PEAK_SCALE = 2.0

#: gate: decision windows between the crowd subsiding and the first
#: scale-down (cooldown + calm streak make ~4 the theoretical floor)
SCALE_DOWN_WINDOW_LIMIT = 8

#: gate: autoscaled total shed / static total shed must stay below this
STATIC_SHED_FRACTION = 0.5

#: the crowd region's offered rate spikes this many x over base — sized
#: so the crowd (4 x 300 = 1200 ops/s of 64 KB reads) saturates one host
#: ~3x over but fits inside max_shards=4 hosts' egress (~430 ops/s each);
#: a crowd no shard count can absorb would gate on physics, not control
CROWD_MULTIPLIER = 4.0


def _params(quick: bool) -> dict:
    return {
        "base_rate": 300.0,            # ops/sec per region, steady
        "at": 30.0, "rise": 10.0,
        # The hold must dwarf the controller's reaction time (~2 decision
        # windows + one scale-up burst), or the static baseline gets a
        # discount for a crowd that ends before anyone could react.
        "hold": 60.0 if quick else 90.0,
        "fall": 20.0,
        "duration": 170.0 if quick else 270.0,
        # 64 KB values (the scale-out workload): per-host egress is the
        # binding resource, so one shard genuinely saturates ~1000 ops/s
        # and the static baseline sheds — the behavior the crowd must hit
        # for the shed comparison to mean anything.
        "value_size": 65536,
        "record_count": 100,
        "decision_interval": 5.0,
    }


def _autoscale_spec(p: dict) -> AutoscaleSpec:
    # target_per_shard comes from the scale-out bench calibration: one
    # shard on one host per region absorbs ~1000 ops/s of 64 KB reads;
    # with 8 KB values we stay conservative at 800.
    return AutoscaleSpec(target_per_shard=800.0,
                         decision_interval=p["decision_interval"],
                         cooldown=5.0, scale_down_windows=2,
                         min_shards=1, max_shards=4)


def _run_cell(p: dict, autoscaled: bool, seed: int = 11) -> dict:
    workload = scaleout_workload(record_count=p["record_count"],
                                 value_size=p["value_size"])
    aspec = _autoscale_spec(p) if autoscaled else None
    dep = build_deployment(list(REGIONS), seed=seed, shards=1,
                           servers_per_region=4, autoscale=aspec)
    spec = GlobalPolicySpec(
        name="as",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual")
    handle = dep.start_sharded_instance("as", spec)
    preload_records(dep, handle, workload)
    scaler = dep.autoscalers.get("as")

    for region in REGIONS:
        rate_fn, peak = flash_crowd_rate(
            p["base_rate"], CROWD_MULTIPLIER if region == REGIONS[0] else 1.0,
            p["at"], rise=p["rise"], hold=p["hold"], fall=p["fall"])
        dep.add_cohort(
            CohortSpec(name=f"fc-{region}", region=region,
                       users=int(p["base_rate"] * 10), rate_per_user=0.1,
                       workload=workload, rate_fn=rate_fn, peak_rate=peak,
                       max_in_flight=64, queue_limit=256),
            sharded=handle)

    # The verification writer: every acked version must survive.
    writer_client = dep.add_client(
        REGIONS[1], name="verify-writer", sharded=handle,
        request_timeout=2.0,
        retry_policy=RetryPolicy(max_attempts=6, base_delay=0.2,
                                 max_delay=2.0, jitter=0.0))
    acked: dict[str, int] = {}
    stop = [False]

    def writer():
        i = 0
        while not stop[0]:
            key = f"verify{i % 25}"
            try:
                result = yield from writer_client.put(
                    key, bytes([i % 251]) * 256)
                acked[key] = max(acked.get(key, 0), result["version"])
            except Exception:
                pass   # unacknowledged: allowed to be lost
            i += 1
            yield dep.sim.timeout(0.25)
    dep.sim.process(writer(), name="verify-writer")

    started_wall = time.perf_counter()
    report = dep.load.run(p["duration"], grace=2.0)
    stop[0] = True
    if scaler is not None:
        scaler.stop()
    dep.sim.run(until=dep.sim.now + 15.0)   # replication settles
    wall = time.perf_counter() - started_wall

    # Zero-loss audit: the owning shard must hold every acked version.
    lost = []
    mgr = dep.wiera.shard_managers.get("as")
    for key, version in sorted(acked.items()):
        owner = mgr.map.owner(key) if mgr is not None else "as"
        best = -1
        for rec in dep.wiera.tim(owner).instances.values():
            record = rec.instance.meta.get_record(key)
            if record is not None and record.latest_version is not None:
                best = max(best, record.latest_version)
        if best < version:
            lost.append((key, version, best))

    def verify_reads():
        bad = []
        for key in sorted(acked):
            result = yield from writer_client.get(key)
            if result["version"] < acked[key]:
                bad.append(key)
        return bad
    unreadable = dep.drive(verify_reads())

    out = {
        "autoscaled": autoscaled,
        "offered": report["offered"],
        "achieved": report["achieved"],
        "shed": report["shed"],
        "errors": report["errors"],
        "acked_writes": len(acked),
        "lost_acked_writes": len(lost),
        "unreadable_acked_writes": len(unreadable),
        "wall_seconds": round(wall, 2),
    }
    if scaler is not None:
        crowd_over = p["at"] + p["rise"] + p["hold"] + p["fall"]
        downs = [d.time for d in scaler.decisions
                 if d.action == "scale_down"]
        out.update({
            "initial_shards": 1,
            "peak_shards": max((d.shards for d in scaler.decisions),
                               default=1),
            "final_shards": scaler.shards,
            "scale_ups": sum(1 for d in scaler.decisions
                             if d.action == "scale_up"),
            "scale_downs": len(downs),
            "crowd_over_at": crowd_over,
            "first_scale_down_at": downs[0] if downs else None,
            "scale_down_windows_after_crowd": (
                round((downs[0] - crowd_over) / p["decision_interval"], 1)
                if downs else None),
            "decisions": scaler.audit(),
        })
    return out


def run(quick: bool = False) -> dict:
    p = _params(quick)
    autoscaled = _run_cell(p, autoscaled=True)
    static = _run_cell(p, autoscaled=False)
    # A baseline that never sheds means the crowd never saturated one
    # shard — surface that as an infinite ratio so the gate fails loudly
    # instead of passing vacuously.
    shed_ratio = (autoscaled["shed"] / static["shed"]
                  if static["shed"] else float("inf"))
    return {
        "benchmark": "autoscale",
        "quick": quick,
        "scenario": {
            "shape": "flash_crowd",
            "crowd_multiplier": CROWD_MULTIPLIER,
            "regions": list(REGIONS),
            **p,
        },
        "autoscaled": autoscaled,
        "static": static,
        "shed_ratio_vs_static": round(shed_ratio, 4),
    }


def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    """Write the result, carrying the last full run's headline numbers
    as ``baseline`` (same idiom as the other benches)."""
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or not result["quick"] or "baseline" not in carried:
        auto, static = result["autoscaled"], result["static"]
        carried["baseline"] = {
            "quick": result["quick"],
            "peak_shards": auto["peak_shards"],
            "final_shards": auto["final_shards"],
            "scale_down_windows_after_crowd":
                auto["scale_down_windows_after_crowd"],
            "autoscaled_shed": auto["shed"],
            "static_shed": static["shed"],
            "shed_ratio_vs_static": result["shed_ratio_vs_static"],
            "autoscaled_achieved": auto["achieved"],
            "static_achieved": static["achieved"],
        }
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    auto, static = result["autoscaled"], result["static"]

    scale = auto["peak_shards"] / auto["initial_shards"]
    if scale < MIN_PEAK_SCALE:
        print(f"gate: peak shards {auto['peak_shards']} only {scale:.1f}x "
              f"initial < {MIN_PEAK_SCALE}x -> REGRESSION")
        ok = False
    else:
        print(f"gate: shards scaled {auto['initial_shards']} -> "
              f"{auto['peak_shards']} at peak ({scale:.1f}x) -> ok")

    windows = auto["scale_down_windows_after_crowd"]
    if windows is None or windows > SCALE_DOWN_WINDOW_LIMIT:
        print(f"gate: first scale-down {windows} decision windows after "
              f"the crowd (limit {SCALE_DOWN_WINDOW_LIMIT}) -> REGRESSION")
        ok = False
    else:
        print(f"gate: scaled down {windows} decision windows after the "
              f"crowd subsided (final {auto['final_shards']} shards) -> ok")

    for cell, tag in ((auto, "autoscaled"), (static, "static")):
        if cell["lost_acked_writes"] or cell["unreadable_acked_writes"]:
            print(f"gate: {tag}: {cell['lost_acked_writes']} lost / "
                  f"{cell['unreadable_acked_writes']} unreadable acked "
                  "writes -> REGRESSION")
            ok = False
        else:
            print(f"gate: {tag}: {cell['acked_writes']} acked writes, "
                  "zero lost -> ok")

    ratio = result["shed_ratio_vs_static"]
    if static["shed"] == 0:
        print("gate: static baseline shed nothing — the crowd never "
              "saturated one shard, the comparison is vacuous "
              "-> REGRESSION")
        ok = False
    elif ratio >= STATIC_SHED_FRACTION:
        print(f"gate: autoscaled shed {auto['shed']} is {ratio:.0%} of "
              f"static {static['shed']} >= {STATIC_SHED_FRACTION:.0%} "
              "-> REGRESSION")
        ok = False
    else:
        print(f"gate: autoscaled shed {auto['shed']} vs static "
              f"{static['shed']} ({ratio:.0%}) -> ok")
    return ok


def test_autoscale(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert check_gate(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the flash-crowd gates hold "
                             "(scale up >= 2x, timely scale-down, zero "
                             "acked-write loss, shed below static)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the carried baseline block with this "
                             "run's numbers")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result, rebaseline=args.rebaseline)
    auto, static = result["autoscaled"], result["static"]
    print(f"flash crowd ({CROWD_MULTIPLIER:.0f}x in {REGIONS[0]}): "
          f"shards {auto['initial_shards']} -> {auto['peak_shards']} -> "
          f"{auto['final_shards']}")
    print(f"{'cell':>10} {'offered':>9} {'achieved':>9} {'shed':>7} "
          f"{'acked':>6} {'lost':>5}")
    for cell, tag in ((auto, "autoscaled"), (static, "static")):
        print(f"{tag:>10} {cell['offered']:>9} {cell['achieved']:>9} "
              f"{cell['shed']:>7} {cell['acked_writes']:>6} "
              f"{cell['lost_acked_writes']:>5}")
    print(f"shed vs static: {result['shed_ratio_vs_static']:.0%}")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
