"""Ablation: where should the global lock service live?

MultiPrimaries put latency is dominated by lock round trips plus the
widest replica RTT (§5.1 analysis).  The paper co-locates Zookeeper with
Wiera in US East; this ablation moves the lock region and measures the
put latency seen by a US West application, showing the placement tradeoff
a deployment owner faces.
"""

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport, register_report
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS

REGIONS = (US_WEST, US_EAST, EU_WEST, ASIA_EAST)


def _put_latency_from_us_west(lock_region: str, ops: int = 40) -> float:
    dep = build_deployment(REGIONS, wiera_region=lock_region, seed=7)
    spec = builtin_policy("DynamicConsistency")
    from dataclasses import replace
    spec = replace(spec, dynamic=None)  # pure MultiPrimaries
    instances = dep.start_wiera_instance("ablock", spec)
    client = dep.add_client(US_WEST, instances=instances, name="app")

    def workload():
        for i in range(ops):
            yield from client.put(f"k{i}", b"x" * 1024)
    dep.drive(workload())
    return client.put_latency.mean() / MS


def _run():
    return {region: _put_latency_from_us_west(region)
            for region in (US_EAST, US_WEST, EU_WEST)}


def test_ablation_lock_placement(benchmark):
    latencies = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = ExperimentReport(
        exp_id="ablation-lock",
        title="Ablation: MultiPrimaries put latency (US West app) vs lock "
              "service placement",
        columns=["lock region", "put latency (ms)"],
        paper_claim="(design choice; paper co-locates Zookeeper with Wiera "
                    "in US East)")
    for region, ms in latencies.items():
        report.add_row(region, ms)
    register_report(report)

    # Locks next to the writer are cheapest; EU adds two transatlantic
    # round trips over US East.
    assert latencies[US_WEST] < latencies[US_EAST] < latencies[EU_WEST]
    # But even the best placement cannot beat the widest replica RTT.
    assert latencies[US_WEST] > 100.0
