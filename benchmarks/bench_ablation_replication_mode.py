"""Ablation: synchronous copy vs asynchronous queue in PrimaryBackup.

§3.3.1: "to minimize get latency, the primary can send updates to other
instances synchronously by using a copy response ... to improve put
latency, updates could be transmitted asynchronously by the primary using
queue response."  This ablation quantifies that tradeoff: put latency at
the primary vs staleness observed at a backup.
"""

from dataclasses import replace

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport, register_report
from repro.net.topology import ASIA_EAST, EU_WEST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS
from repro.workloads.ycsb import StalenessOracle

REGIONS = (US_WEST, EU_WEST, ASIA_EAST)


def _run_mode(sync: bool, ops: int = 60, queue_interval: float = 5.0):
    dep = build_deployment(REGIONS, seed=11)
    spec = builtin_policy("PrimaryBackupConsistency")
    placements = tuple(
        replace(p, region=r, primary=(r == US_WEST))
        for p, r in zip(spec.placements, REGIONS))
    spec = replace(spec, placements=placements, sync_replication=sync,
                   queue_interval=queue_interval)
    instances = dep.start_wiera_instance("abmode", spec)
    writer = dep.add_client(US_WEST, instances=instances, name="writer")
    reader = dep.add_client(ASIA_EAST, instances=instances, name="reader")
    oracle = StalenessOracle()

    def workload():
        for i in range(ops):
            key = f"k{i % 5}"
            result = yield from writer.put(key, b"v" * 1024)
            oracle.note_put(key, result["version"], dep.sim.now)
            started = dep.sim.now
            try:
                got = yield from reader.get(key)
            except Exception:
                # the backup has never heard of the key yet: maximally stale
                oracle.judge_get(key, 0, started)
            else:
                oracle.judge_get(key, got["version"], started)
            yield dep.sim.timeout(0.5)
    dep.drive(workload())
    return writer.put_latency.mean() / MS, oracle.outdated_fraction


def _run():
    sync_put, sync_stale = _run_mode(True)
    async_put, async_stale = _run_mode(False)
    return {"sync": (sync_put, sync_stale),
            "async": (async_put, async_stale)}


def test_ablation_replication_mode(benchmark):
    modes = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = ExperimentReport(
        exp_id="ablation-replication",
        title="Ablation: PrimaryBackup copy (sync) vs queue (async)",
        columns=["mode", "primary put latency (ms)",
                 "stale reads at backup (%)"],
        paper_claim="sync: fresh reads, slower puts; async: fast puts, "
                    "stale reads (per §3.3.1)")
    for mode, (put_ms, stale) in modes.items():
        report.add_row(mode, put_ms, 100 * stale)
    register_report(report)

    sync_put, sync_stale = modes["sync"]
    async_put, async_stale = modes["async"]
    # Sync replication makes puts pay the widest backup RTT...
    assert sync_put > async_put * 3
    # ...but keeps backups fresh, while async reads go stale.
    assert sync_stale == 0.0
    assert async_stale > 0.5
