"""Kernel fast-path throughput: microbench + macro events/sec + CI gate.

Four microbenches exercise the scheduling paths every experiment bottoms
out in, measuring *wall-clock* kernel events/sec:

* **resume_churn** — processes repeatedly waiting on an already-processed
  event: the pure deferred-resume path, exactly what the run-queue +
  ``_Deferred`` fast path replaces (poke-event alloc + heap round trip on
  the pre-change kernel).  This is the tentpole's headline number.
* **ping_pong** — two processes resuming each other through zero-delay
  event triggers: the same-time run-queue dispatch path plus per-round
  event allocation.
* **timer_churn** — many processes sleeping on real (non-zero) delays:
  the ``heapq`` path.  A loop doing *nothing but* ``heappush``/``heappop``
  and a generator ``send`` runs at ~1.9M ev/s on the same machine, so this
  bench is structurally capped near 3× its seed value; treat it as a
  regression canary, not a speedup showcase.
* **fanout_allof** — batches of short-lived child processes gathered by
  ``AllOf``: process construction + condition callbacks.

The macro measurement replays the sharded YCSB-A deployment of
``bench_shard_scaleout`` at 4 shards and reports simulator events/sec for
the full stack (RPC, network, storage, replication).

Output goes to ``results/BENCH_kernel.json``.  The checked-in file carries
a ``baseline`` block (and a ``seed_kernel`` block with the pre-fast-path
numbers measured on the same machine via a git checkout of the seed
kernel); per-bench ``speedup_vs_seed`` ratios are recomputed on every run.
``--check`` fails the run when the combined microbench throughput drops
more than 30% below the baseline — the CI regression gate.
``--rebaseline`` re-pins the baseline to the current run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim.kernel import Simulator

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_kernel.json"

#: fail --check when micro throughput drops below this fraction of baseline
GATE_FRACTION = 0.7


# -- microbenches -----------------------------------------------------------

def _resume_churn(procs: int, waits: int) -> Simulator:
    sim = Simulator()
    done = sim.event()
    done.succeed(None)
    sim.run()   # `done` is processed: every wait takes the resume path

    def waiter():
        for _ in range(waits):
            yield done

    for i in range(procs):
        sim.process(waiter(), name=f"wait{i}")
    sim.run()
    return sim


def _timer_churn(procs: int, steps: int) -> Simulator:
    sim = Simulator()

    def worker(i):
        delay = 0.001 + (i % 7) * 0.0013
        for _ in range(steps):
            yield sim.timeout(delay)

    for i in range(procs):
        sim.process(worker(i), name=f"churn{i}")
    sim.run()
    return sim


def _ping_pong(rounds: int) -> Simulator:
    sim = Simulator()
    ev = {"ping": sim.event(), "pong": sim.event()}
    done = sim.event()
    done.succeed(None)
    sim.run()   # `done` is processed: waiting on it takes the resume path

    def pinger():
        for _ in range(rounds):
            ev["ping"].succeed()
            yield ev["pong"]
            ev["pong"] = sim.event()
            yield done

    def ponger():
        for _ in range(rounds):
            yield ev["ping"]
            ev["ping"] = sim.event()
            ev["pong"].succeed()
            yield done

    sim.process(pinger(), name="ping")
    sim.process(ponger(), name="pong")
    sim.run()
    return sim


def _fanout_allof(batches: int, width: int) -> Simulator:
    sim = Simulator()

    def child():
        yield sim.timeout(0.0)
        return 1

    def parent():
        for _ in range(batches):
            values = yield sim.all_of(
                [sim.process(child()) for _ in range(width)])
            assert len(values) == width

    p = sim.process(parent(), name="fanout")
    sim.run(until=p)
    return sim


def _measure(fn, *args) -> dict:
    start = time.perf_counter()
    sim = fn(*args)
    wall = time.perf_counter() - start
    return {
        "events": sim.events_processed,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(sim.events_processed / wall, 1),
    }


MICRO_NAMES = ("resume_churn", "ping_pong", "timer_churn", "fanout_allof")


def run_micro(quick: bool = False) -> dict:
    scale = 1 if quick else 4
    micro = {
        "resume_churn": _measure(_resume_churn, 20, 2_500 * scale),
        "ping_pong": _measure(_ping_pong, 25_000 * scale),
        "timer_churn": _measure(_timer_churn, 50, 1000 * scale),
        "fanout_allof": _measure(_fanout_allof, 1000 * scale, 20),
    }
    events = sum(micro[name]["events"] for name in MICRO_NAMES)
    wall = sum(micro[name]["wall_seconds"] for name in MICRO_NAMES)
    micro["combined_events_per_sec"] = round(events / wall, 1)
    return micro


def run_macro(quick: bool = False) -> dict:
    """Sharded YCSB-A events/sec (whole stack), via bench_shard_scaleout."""
    from bench_shard_scaleout import _closed_loop_one
    row = _closed_loop_one(shards=4, duration=20.0 if quick else 60.0,
                   clients=2 if quick else 4,
                   record_count=100 if quick else 400)
    return {
        "workload": "ycsb-a, 4 shards",
        "kernel_events": row["kernel_events"],
        "kernel_events_per_wall_sec": row["kernel_events_per_wall_sec"],
        "ops": row["ops"],
        "wall_seconds": row["wall_seconds"],
    }


def run(quick: bool = False) -> dict:
    return {
        "benchmark": "kernel",
        "quick": quick,
        "micro": run_micro(quick),
        "macro": run_macro(quick),
    }


# -- baseline plumbing ------------------------------------------------------

def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    existing = _load_existing()
    carried = {}
    for key in ("baseline", "seed_kernel"):
        if key in existing:
            carried[key] = existing[key]
    if rebaseline or "baseline" not in carried:
        carried["baseline"] = {
            "quick": result["quick"],
            "micro_events_per_sec":
                result["micro"]["combined_events_per_sec"],
        }
    result = {**result, **carried}
    seed = result.get("seed_kernel", {}).get("micro", {})
    if seed:
        speedups = {}
        for name in MICRO_NAMES:
            if name in seed and name in result["micro"]:
                speedups[name] = round(
                    result["micro"][name]["events_per_sec"]
                    / seed[name]["events_per_sec"], 2)
        if "combined_events_per_sec" in seed:
            speedups["combined"] = round(
                result["micro"]["combined_events_per_sec"]
                / seed["combined_events_per_sec"], 2)
        seed_macro = result["seed_kernel"].get("macro")
        if seed_macro and result.get("macro"):
            speedups["macro_ycsb"] = round(
                result["macro"]["kernel_events_per_wall_sec"]
                / seed_macro["kernel_events_per_wall_sec"], 2)
        result["speedup_vs_seed_kernel"] = speedups
        # The headline: the zero-delay resume path the fast path targets.
        result["hot_path_speedup"] = speedups.get("resume_churn")
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    """True when throughput is within the allowed drop from baseline."""
    baseline = result.get("baseline")
    if not baseline:
        print("no baseline recorded; gate passes vacuously")
        return True
    if baseline.get("quick") != result.get("quick"):
        print("baseline was recorded in a different mode "
              f"(quick={baseline.get('quick')}); gate skipped — "
              "re-pin with --rebaseline in the mode you gate on")
        return True
    floor = GATE_FRACTION * baseline["micro_events_per_sec"]
    current = result["micro"]["combined_events_per_sec"]
    ok = current >= floor
    verdict = "ok" if ok else "REGRESSION"
    print(f"gate: {current:.0f} ev/s vs baseline "
          f"{baseline['micro_events_per_sec']:.0f} ev/s "
          f"(floor {floor:.0f}) -> {verdict}")
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if micro throughput drops >30%% "
                             "below the checked-in baseline")
    parser.add_argument("--rebaseline", action="store_true",
                        help="pin the baseline to this run")
    parser.add_argument("--micro-only", action="store_true",
                        help="skip the macro YCSB measurement")
    args = parser.parse_args()

    result = {
        "benchmark": "kernel",
        "quick": args.quick,
        "micro": run_micro(args.quick),
        "macro": None if args.micro_only else run_macro(args.quick),
    }
    out = emit(result, rebaseline=args.rebaseline)
    final = json.loads(out.read_text())

    speedups = final.get("speedup_vs_seed_kernel", {})
    print(f"{'bench':>14} {'events':>10} {'wall-s':>8} {'events/s':>12} "
          f"{'vs seed':>8}")
    for name in MICRO_NAMES:
        m = final["micro"][name]
        ratio = speedups.get(name)
        print(f"{name:>14} {m['events']:>10} {m['wall_seconds']:>8.3f} "
              f"{m['events_per_sec']:>12.0f} "
              f"{(f'{ratio:.2f}x' if ratio else '-'):>8}")
    combined = final["micro"]["combined_events_per_sec"]
    ratio = speedups.get("combined")
    print(f"{'combined':>14} {'':>10} {'':>8} {combined:>12.0f} "
          f"{(f'{ratio:.2f}x' if ratio else '-'):>8}")
    if final.get("macro"):
        ratio = speedups.get("macro_ycsb")
        print(f"{'macro ycsb-a':>14} {final['macro']['kernel_events']:>10} "
              f"{final['macro']['wall_seconds']:>8.3f} "
              f"{final['macro']['kernel_events_per_wall_sec']:>12.0f} "
              f"{(f'{ratio:.2f}x' if ratio else '-'):>8}")
    print(f"wrote {out}")

    if args.check and not check_gate(final):
        sys.exit(1)


if __name__ == "__main__":
    main()
