"""Figure 7: Wiera changes the consistency model at run time."""

from repro.bench.experiments import run_fig7
from repro.bench.reporting import register_report


def test_fig7_dynamic_consistency(benchmark):
    result, report = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    register_report(report)

    # Exactly the two long delays trip the threshold: two switches to
    # eventual, and two back once the delays clear (the transient delay
    # (c) must not cause a fifth switch).
    to_weak = [s for s in result.switch_log if s[2] == "eventual"]
    to_strong = [s for s in result.switch_log if s[2] == "multi_primaries"]
    assert len(to_weak) == 2, result.switch_log
    assert len(to_strong) == 2, result.switch_log

    # Switches happen after the 30 s sustained violation, not instantly:
    # first delay starts at t=60, so the switch lands in [90, 120].
    assert 90.0 <= to_weak[0][0] <= 120.0
    # second delay starts at t=200 -> switch in [230, 260].
    assert 230.0 <= to_weak[1][0] <= 260.0
    # the transient delay at t=330 (10 s) must be ignored: no switch after
    # t=320 other than completions of earlier ones.
    assert all(not (325.0 <= t <= 420.0) for (t, _, to, _) in result.switch_log
               if to == "eventual")

    # Latency shape: strong baseline in the hundreds of ms, eventual
    # puts well under 10 ms (paper: ~400 ms vs <10 ms).
    assert 0.2 <= result.strong_baseline_ms / 1000 <= 0.6
    assert result.eventual_ms < 10.0
