"""Table 4: storage tier prices in AWS US East.

The price book is an input to the cost experiments, so this benchmark
asserts it matches the paper's table *exactly* and reports it.
"""

import pytest

from repro.bench.reporting import ExperimentReport, register_report
from repro.storage.cost import (
    NETWORK_PRICES,
    PRICE_BOOK,
    monthly_storage_cost,
    network_cost,
    request_cost,
)
from repro.util.units import GB

# (tier, storage $/GB-mo, put $/10k, get $/10k) — Table 4 of the paper.
PAPER_TABLE4 = (
    ("ebs_ssd", 0.10, 0.0, 0.0),
    ("ebs_hdd", 0.05, 0.0005, 0.0005),
    ("s3", 0.03, 0.05, 0.004),
    ("s3_ia", 0.0125, 0.10, 0.01),
)


def _check():
    for tier, storage, put, get in PAPER_TABLE4:
        entry = PRICE_BOOK[tier]
        assert entry.storage == storage, tier
        assert entry.put_per_10k == put, tier
        assert entry.get_per_10k == get, tier
    assert NETWORK_PRICES["intra_dc"] == 0.0
    assert NETWORK_PRICES["internet"] == 0.09
    assert NETWORK_PRICES["inter_region"] == 0.02
    # The derived helpers agree with hand arithmetic.
    assert monthly_storage_cost("ebs_ssd", 10 * GB) == pytest.approx(1.0)
    assert request_cost("s3", puts=10_000, gets=10_000) == pytest.approx(0.054)
    assert network_cost(2 * GB, "internet") == pytest.approx(0.18)
    return True


def test_table4_prices(benchmark):
    assert benchmark.pedantic(_check, rounds=1, iterations=1)
    report = ExperimentReport(
        exp_id="table4",
        title="Storage tier prices in AWS US East (model inputs)",
        columns=["tier", "storage $/GB-mo", "put $/10k", "get $/10k"],
        paper_claim="reproduced verbatim from Table 4",
        notes="network: $0/GB within a DC, $0.02/GB between AWS regions, "
              "$0.09/GB to the Internet")
    for tier, storage, put, get in PAPER_TABLE4:
        report.add_row(tier, storage, put, get)
    register_report(report)
