"""Open-loop load engine: cohort aggregation cost + the scale-out bend.

Two measurements, two CI gates (``--quick --check``):

* **aggregation** — one million modeled users are run as a few hundred
  client cohorts (one kernel process per cohort, thousands of users
  each) against an unsaturated 1-shard deployment.  Gates: the whole
  population fits in <= MAX_COHORT_PROCESSES standing processes, the
  realized offered rate lands within MAX_OFFERED_ERROR of the configured
  arrival rate, and the engine's bookkeeping stays cheap —
  <= MAX_EVENTS_PER_OFFERED_OP kernel events per offered operation.
* **scaleout** — the same offered-load sweep
  ``bench_shard_scaleout.py`` runs, reduced to its headline: at the
  saturating offered level, achieved throughput at 8 shards must be
  >= MIN_SCALEOUT_RATIO x the 1-shard figure.  This is the curve the
  closed-loop driver could never bend (it idled at ~52 ops/s regardless
  of shard count); the open-loop engine saturates per-host egress, so
  added shards on added hosts show up as added capacity.

Output goes to ``results/BENCH_load_engine.json``.  Run as a script
(``--quick`` shrinks the run for CI smoke) or via pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.openloop import (
    build_scaleout_deployment,
    run_scaleout_cell,
    scaleout_workload,
)
from repro.load.cohort import CohortSpec
from repro.net.topology import US_EAST, US_WEST

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_load_engine.json"

REGIONS = (US_EAST, US_WEST)

#: acceptance: a million modeled users in at most this many standing
#: kernel processes (one per cohort; operations are ephemeral)
MAX_COHORT_PROCESSES = 1000

#: acceptance: realized offered rate within this fraction of configured
#: when the deployment is unsaturated
MAX_OFFERED_ERROR = 0.05

#: gate: kernel events per *offered* operation (arrival bookkeeping +
#: the operation itself) — catches accidental per-arrival overhead
MAX_EVENTS_PER_OFFERED_OP = 30.0

#: gate: achieved(8 shards) / achieved(1 shard) at the saturating
#: offered level — the scale-out curve must bend upward
MIN_SCALEOUT_RATIO = 3.0


# -- part 1: cohort aggregation ----------------------------------------------

def run_aggregation(quick: bool = False) -> dict:
    """A million modeled users, a few hundred cohort processes."""
    cohorts = 200 if quick else 1000
    users_per_cohort = 5000 if quick else 1000
    total_users = cohorts * users_per_cohort
    offered_total = 500.0          # ops/sec, well under 1-shard capacity
    duration = 8.0 if quick else 20.0
    rate_per_user = offered_total / total_users

    dep, handle, workload = build_scaleout_deployment(shards=1, seed=23)
    for i in range(cohorts):
        region = REGIONS[i % len(REGIONS)]
        dep.add_cohort(
            CohortSpec(name=f"c{i:04d}", region=region,
                       users=users_per_cohort, rate_per_user=rate_per_user,
                       workload=workload),
            sharded=handle)

    started_wall = time.perf_counter()
    started_events = dep.sim.events_processed
    report = dep.load.run(duration, grace=1.0)
    wall = time.perf_counter() - started_wall
    events = dep.sim.events_processed - started_events

    offered_error = abs(report["offered_rate"] - offered_total) / offered_total
    return {
        "cohorts": cohorts,
        "users_per_cohort": users_per_cohort,
        "modeled_users": report["modeled_users"],
        "configured_rate": offered_total,
        "duration_sim_sec": duration,
        "offered": report["offered"],
        "achieved": report["achieved"],
        "shed": report["shed"],
        "errors": report["errors"],
        "offered_rate": round(report["offered_rate"], 3),
        "offered_error": round(offered_error, 5),
        "cohort_processes": len(dep.load.cohorts),
        "kernel_events": events,
        "events_per_offered_op": round(events / report["offered"], 1),
        "wall_seconds": round(wall, 4),
    }


# -- part 2: the scale-out bend ----------------------------------------------

def run_scaleout(quick: bool = False) -> dict:
    shard_counts = (1, 8) if quick else (1, 2, 4, 8)
    offered_levels = (500.0, 2000.0, 4000.0) if quick else \
        (500.0, 1000.0, 2000.0, 4000.0, 8000.0)
    duration = 4.0 if quick else 10.0
    workload = scaleout_workload()
    rows = [run_scaleout_cell(shards, offered, duration, workload=workload)
            for shards in shard_counts for offered in offered_levels]
    top = offered_levels[-1]
    at_top = {row["shards"]: row for row in rows
              if row["offered_per_sec"] == top}
    ratio = (at_top[8]["achieved_per_sim_sec"]
             / at_top[1]["achieved_per_sim_sec"])
    return {
        "workload": "ycsb-b uniform 64KB values, eventual consistency",
        "shard_counts": list(shard_counts),
        "offered_levels": list(offered_levels),
        "duration_sim_sec": duration,
        "saturating_offered": top,
        "scaleout_ratio_8v1": round(ratio, 2),
        "rows": rows,
    }


def run(quick: bool = False) -> dict:
    return {
        "benchmark": "load_engine",
        "quick": quick,
        "aggregation": run_aggregation(quick),
        "scaleout": run_scaleout(quick),
    }


def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    """Write the result, carrying the last full run's headline numbers
    as ``baseline`` so CI quick runs don't clobber them (same idiom as
    bench_kernel / bench_replication_batch)."""
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or not result["quick"] or "baseline" not in carried:
        agg = result["aggregation"]
        sc = result["scaleout"]
        at_top = {row["shards"]: row["achieved_per_sim_sec"]
                  for row in sc["rows"]
                  if row["offered_per_sec"] == sc["saturating_offered"]}
        carried["baseline"] = {
            "quick": result["quick"],
            "modeled_users": agg["modeled_users"],
            "cohort_processes": agg["cohort_processes"],
            "offered_error": agg["offered_error"],
            "events_per_offered_op": agg["events_per_offered_op"],
            "saturating_offered": sc["saturating_offered"],
            "scaleout_ratio_8v1": sc["scaleout_ratio_8v1"],
            "achieved_at_saturation": {str(k): v
                                       for k, v in sorted(at_top.items())},
        }
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    agg = result["aggregation"]
    if agg["cohort_processes"] > MAX_COHORT_PROCESSES:
        print(f"gate: {agg['cohort_processes']} cohort processes for "
              f"{agg['modeled_users']} users > {MAX_COHORT_PROCESSES} "
              "-> REGRESSION")
        ok = False
    else:
        print(f"gate: {agg['modeled_users']} modeled users in "
              f"{agg['cohort_processes']} cohort processes -> ok")
    if agg["offered_error"] > MAX_OFFERED_ERROR:
        print(f"gate: offered rate {agg['offered_rate']} vs configured "
              f"{agg['configured_rate']} ({agg['offered_error']:.1%} error "
              f"> {MAX_OFFERED_ERROR:.0%}) -> REGRESSION")
        ok = False
    else:
        print(f"gate: offered rate {agg['offered_rate']} within "
              f"{agg['offered_error']:.1%} of configured -> ok")
    if agg["events_per_offered_op"] > MAX_EVENTS_PER_OFFERED_OP:
        print(f"gate: {agg['events_per_offered_op']} kernel events per "
              f"offered op > {MAX_EVENTS_PER_OFFERED_OP} -> REGRESSION")
        ok = False
    else:
        print(f"gate: {agg['events_per_offered_op']} kernel events per "
              "offered op -> ok")
    ratio = result["scaleout"]["scaleout_ratio_8v1"]
    if ratio < MIN_SCALEOUT_RATIO:
        print(f"gate: scale-out 8v1 ratio {ratio} < {MIN_SCALEOUT_RATIO} "
              "(the curve stopped bending) -> REGRESSION")
        ok = False
    else:
        print(f"gate: scale-out 8v1 ratio {ratio}x at saturating offered "
              f"load -> ok")
    return ok


def test_load_engine(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert check_gate(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the aggregation bounds hold and "
                             f"8-shard throughput >= {MIN_SCALEOUT_RATIO}x "
                             "1-shard at saturating offered load")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the carried baseline block with this "
                             "run's numbers")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result, rebaseline=args.rebaseline)
    agg = result["aggregation"]
    print(f"aggregation: {agg['modeled_users']} users / "
          f"{agg['cohort_processes']} cohorts, offered "
          f"{agg['offered_rate']}/s (err {agg['offered_error']:.2%}), "
          f"{agg['events_per_offered_op']} events/op")
    print(f"{'shards':>6} {'offered/s':>10} {'achieved/s':>10} "
          f"{'shed':>8} {'p95 ms':>8} {'qd95 ms':>8}")
    for row in result["scaleout"]["rows"]:
        print(f"{row['shards']:>6} {row['offered_per_sec']:>10.0f} "
              f"{row['achieved_per_sim_sec']:>10.0f} {row['shed']:>8} "
              f"{row['get_p95_ms']:>8.1f} {row['queue_delay_p95_ms']:>8.1f}")
    print(f"scale-out 8v1 at {result['scaleout']['saturating_offered']:.0f} "
          f"offered: {result['scaleout']['scaleout_ratio_8v1']}x")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
