"""§5.3: cost savings from cold-data demotion and centralization."""

from repro.bench.experiments import run_sec53
from repro.bench.reporting import register_report


def test_sec53_cold_cost(benchmark):
    result, report = benchmark.pedantic(run_sec53, rounds=1, iterations=1)
    register_report(report)

    # The dollar arithmetic matches the paper exactly (same price book).
    assert abs(result.ssd_saving - 700.0) < 1.0
    assert abs(result.hdd_saving - 300.0) < 1.0
    assert abs(result.centralize_saving - 300.0) < 1.0

    # The mechanism works: exactly the 80 idle objects were demoted by
    # the ColdDataMonitoring policy (compiled from the Figure 6(a) DSL).
    assert result.demoted == 80, result.demoted
