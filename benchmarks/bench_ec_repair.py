"""EC crash-recovery repair: serial walk vs parallel pipeline + CI gate.

Writes N EC(2,2) objects across a 6-site deployment, crashes the holder
of fragment 1 (wiping its memory tier) and leaves it down, then drives
exactly one repair round on the repair leader under two strategies:

* **serial** — ``repair_concurrency=1``: the seed repairer's walk, one
  object fully probed, checked, gathered, decoded, and pushed before
  the next begins (golden-pinned in ``tests/golden/ec_repair_serial.json``).
* **pipelined** — ``repair_concurrency=8``: per-round batched probes and
  ``check_readable`` envelopes, an AnyOf-driven window of in-flight
  objects, holder-local ``reconstruct_fragment`` (the target pulls only
  what it needs and rebuilds via the codec's target-row fast path), and
  per-round batched ``manifest_remap`` deltas instead of full manifest
  rebroadcasts.

Each cell reports repair completion time (simulated seconds for the
round), repair egress (``net.bytes`` delta across the round), message
count, fragments rebuilt, and the codec's decode-matrix cache hit rate.
Correctness is asserted inside the cell: every fragment slot readable
after the round, every object decodes to its original payload, and the
second (verify) round is a no-op.  Both cells must converge to the same
timing-free store digest.

Output goes to ``results/BENCH_ec_repair.json``; the checked-in file
carries a ``baseline`` block.  ``--check`` fails the run when the
pipeline stops being >= MIN_SPEEDUP faster or >= MIN_EGRESS_REDUCTION
cheaper on repair egress than the serial baseline; ``--rebaseline``
re-pins the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.core.global_policy import (GlobalPolicySpec, RedundancySpec,
                                      RegionPlacement)
from repro.ec import codec
from repro.ec.protocol import decode_manifest, fragment_key
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_ec_repair.json"

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)
#: six (region, provider) sites: n=4 fragment holders + two spares the
#: lost fragments are re-homed onto
SITES = ((US_EAST, "aws"), (US_WEST, "aws"), (EU_WEST, "aws"),
         (ASIA_EAST, "aws"), (US_EAST, "gcp"), (US_WEST, "gcp"))
PROVIDERS = {US_EAST: ("aws", "gcp"), US_WEST: ("aws", "gcp"),
             EU_WEST: ("aws",), ASIA_EAST: ("aws",)}

K, M = 2, 2
VALUE_SIZE = 4096
PIPELINE_WIDTH = 8

#: --check fails unless the pipelined round completes at least this many
#: times faster (simulated seconds) than the serial round
MIN_SPEEDUP = 3.0
#: --check fails unless the pipelined round moves at least this fraction
#: fewer bytes than the serial round
MIN_EGRESS_REDUCTION = 0.40


def _cell(repair_concurrency: int, objects: int, seed: int) -> dict:
    dep = build_deployment(list(REGIONS), providers=PROVIDERS, seed=seed)
    spec = GlobalPolicySpec(
        name="ec",
        placements=tuple(
            RegionPlacement(region, memory_only_policy(), provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        redundancy=RedundancySpec(k=K, m=M, repair_interval=100000.0,
                                  repair_concurrency=repair_concurrency))
    instances = dep.start_wiera_instance("ec", spec)
    tim = dep.tim("ec")
    client = dep.add_client(US_EAST, instances=instances)
    payloads = {f"obj{i}": bytes([(i % 255) + 1]) * VALUE_SIZE
                for i in range(objects)}

    def write_phase():
        for key, value in payloads.items():
            yield from client.put(key, value)
    dep.drive(write_phase())

    # Crash the holder of fragment 1 (never the put coordinator, which
    # holds fragment 0 and will lead the repair) and leave it down.
    coordinator = dep.instance("ec", US_EAST)
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("obj0", run_rules=False))[0])
    victim = tim.instances[manifest["frags"][1]].instance.host
    faults = dep.fault_schedule("repair-bench")
    faults.crash(at=dep.sim.now + 0.25, host=victim.name, duration=1e9)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.5)

    leader_id = manifest["frags"][0]
    leader = tim.instances[leader_id].instance
    repairer = leader.protocol.repairer(leader_id)

    cache_before = dict(codec._inv_cache_stats)
    bytes_before = dep.metric_total("net.bytes")
    msgs_before = dep.metric_total("net.messages")
    clock_before = dep.sim.now
    wall_started = time.perf_counter()
    dep.drive(repairer.repair_round(), name="repair-round")
    wall = time.perf_counter() - wall_started
    repair_seconds = dep.sim.now - clock_before
    repair_bytes = dep.metric_total("net.bytes") - bytes_before
    repair_msgs = dep.metric_total("net.messages") - msgs_before

    # Correctness: the round rebuilt every lost fragment, a second round
    # finds nothing left to do, and every object decodes cleanly.
    assert repairer.fragments_rebuilt == objects, (
        f"rebuilt {repairer.fragments_rebuilt}/{objects}")
    dep.drive(repairer.repair_round(), name="verify-round")
    assert repairer.fragments_rebuilt == objects, "verify round re-repaired"

    def read_phase():
        for key, value in payloads.items():
            res = yield from client.get(key)
            assert res["data"] == value, key
            assert not res.get("degraded"), key
    dep.drive(read_phase())

    cache = {name: codec._inv_cache_stats[name] - cache_before[name]
             for name in ("hits", "misses")}
    looked_up = cache["hits"] + cache["misses"]
    return {
        "repair_concurrency": repair_concurrency,
        "objects": objects,
        "fragments_rebuilt": int(dep.metric_total("ec.fragments_rebuilt")),
        "repair_seconds": round(repair_seconds, 6),
        "repair_egress_bytes": int(repair_bytes),
        "repair_messages": int(repair_msgs),
        "repair_bytes_moved": int(dep.metric_total("ec.repair_bytes_moved")),
        "unrepairable": int(dep.metric_total("ec.repair_unrepairable")),
        "push_failed": int(dep.metric_total("ec.repair_push_failed")),
        "errors": int(dep.metric_total("ec.repair_errors")),
        "superseded": int(dep.metric_total("ec.repair_superseded")),
        "decode_matrix_cache": dict(
            cache, hit_rate=round(cache["hits"] / looked_up, 3)
            if looked_up else None),
        "store_digest": dep.store_digest(detail=False),
        "wall_seconds": round(wall, 4),
    }


def run(quick: bool = False) -> dict:
    objects = 16 if quick else 48
    serial = _cell(1, objects, seed=17)
    pipelined = _cell(PIPELINE_WIDTH, objects, seed=17)
    assert serial["store_digest"] == pipelined["store_digest"], (
        "strategies diverged: serial and pipelined stores differ")
    return {
        "benchmark": "ec_repair",
        "quick": quick,
        "scheme": f"EC({K},{M})",
        "value_size": VALUE_SIZE,
        "sites": [f"{r}/{p}" for r, p in SITES],
        "serial": serial,
        "pipelined": pipelined,
        "speedup": round(serial["repair_seconds"]
                         / max(pipelined["repair_seconds"], 1e-9), 2),
        "egress_reduction": round(
            1.0 - pipelined["repair_egress_bytes"]
            / max(serial["repair_egress_bytes"], 1), 3),
        "stores_converge": True,
    }


# -- baseline plumbing ------------------------------------------------------

def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or "baseline" not in carried:
        carried["baseline"] = {
            "quick": result["quick"],
            "speedup": result["speedup"],
            "egress_reduction": result["egress_reduction"],
            "serial_repair_seconds": result["serial"]["repair_seconds"],
            "pipelined_repair_seconds":
                result["pipelined"]["repair_seconds"],
        }
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    if result["speedup"] < MIN_SPEEDUP:
        print(f"gate: repair speedup {result['speedup']}x "
              f"< required {MIN_SPEEDUP}x -> REGRESSION")
        ok = False
    else:
        print(f"gate: repair speedup {result['speedup']}x "
              f">= {MIN_SPEEDUP}x -> ok")
    if result["egress_reduction"] < MIN_EGRESS_REDUCTION:
        print(f"gate: egress reduction {result['egress_reduction']} "
              f"< required {MIN_EGRESS_REDUCTION} -> REGRESSION")
        ok = False
    else:
        print(f"gate: egress reduction {result['egress_reduction']} "
              f">= {MIN_EGRESS_REDUCTION} -> ok")
    for cell in ("serial", "pipelined"):
        rebuilt = result[cell]["fragments_rebuilt"]
        if rebuilt != result[cell]["objects"]:
            print(f"gate: {cell} rebuilt {rebuilt}/"
                  f"{result[cell]['objects']} fragments -> REGRESSION")
            ok = False
    if not result.get("stores_converge"):
        print("gate: store digests diverged -> REGRESSION")
        ok = False
    baseline = result.get("baseline")
    if not baseline:
        print("no baseline recorded; drift floor passes vacuously")
        return ok
    if baseline.get("quick") != result.get("quick"):
        print("baseline was recorded in a different mode "
              f"(quick={baseline.get('quick')}); drift floor skipped — "
              "re-pin with --rebaseline in the mode you gate on")
        return ok
    ceiling = 1.25 * baseline["pipelined_repair_seconds"]
    got = result["pipelined"]["repair_seconds"]
    if got > ceiling:
        print(f"gate: pipelined repair {got}s drifted past baseline "
              f"{baseline['pipelined_repair_seconds']}s (+25%) "
              "-> REGRESSION")
        ok = False
    else:
        print(f"gate: pipelined repair {got}s within baseline drift -> ok")
    return ok


def test_ec_repair(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert result["speedup"] >= MIN_SPEEDUP
    assert result["egress_reduction"] >= MIN_EGRESS_REDUCTION
    assert result["stores_converge"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help=f"exit 1 unless the pipeline stays "
                             f">= {MIN_SPEEDUP}x faster and moves "
                             f">= {MIN_EGRESS_REDUCTION:.0%} fewer bytes")
    parser.add_argument("--rebaseline", action="store_true",
                        help="pin the baseline to this run")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result, rebaseline=args.rebaseline)
    s, p = result["serial"], result["pipelined"]
    print(f"repair : serial {s['repair_seconds']}s -> pipelined "
          f"{p['repair_seconds']}s ({result['speedup']}x faster, "
          f"{s['objects']} objects, one fragment holder down)")
    print(f"egress : serial {s['repair_egress_bytes']}B "
          f"({s['repair_messages']} msgs) -> pipelined "
          f"{p['repair_egress_bytes']}B ({p['repair_messages']} msgs, "
          f"{result['egress_reduction']:.0%} less)")
    print(f"codec  : decode-matrix cache {p['decode_matrix_cache']}")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
