"""Batched data plane: kernel events per replicated write + CI gate.

Measures what per-peer replication batching (``GlobalPolicySpec.
batch_bytes``) buys on the two axes the change targets:

* **micro (flush fan-out)** — a ReplicationQueue with N pending keys and
  P peers is flushed repeatedly and the *simulator events consumed per
  (key, peer) delivery* are counted, batching off vs on.  Unbatched,
  every delivery is its own RPC process (envelope transmit, dispatch,
  reply transmit); batched, one ``call_batch`` per peer carries the whole
  flush, so the per-delivery transport overhead amortizes away.  Kernel
  event counts are deterministic, which makes the off/on ratio an exact,
  machine-independent measurement — the ``--check`` gate requires it to
  stay >= 2.0.
* **macro (eventual YCSB-A)** — the same closed-loop update-heavy
  workload against a 3-region eventual-consistency instance, batching
  off vs on: total kernel events, kernel events per acknowledged update,
  and wall-clock seconds.  The wall-clock speedup is reported (it tracks
  the event reduction but is machine-dependent); the gate only requires
  the *event* reduction, plus the bench_kernel-style throughput floor
  against the checked-in baseline.

Output goes to ``results/BENCH_replication_batch.json``; the checked-in
file carries a ``baseline`` block.  ``--check`` fails the run when the
micro events-per-delivery ratio drops below MIN_EVENT_RATIO or wall
throughput drops more than 30% below baseline; ``--rebaseline`` re-pins
the baseline to the current run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.core.consistency import ReplicationQueue
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.net.topology import EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_replication_batch.json"

REGIONS = (US_EAST, US_WEST, EU_WEST)

#: --check fails if batching saves less than this factor in kernel
#: events per (key, peer) delivery on the micro flush fan-out
MIN_EVENT_RATIO = 2.0

#: --check fails when macro wall throughput (batched ops/sec) drops below
#: this fraction of the checked-in baseline
GATE_FRACTION = 0.7


# -- micro: flush fan-out ----------------------------------------------------

def _micro_one(batch_bytes: float, keys: int, rounds: int,
               payload: int) -> dict:
    dep = build_deployment(REGIONS, seed=5)
    spec = GlobalPolicySpec(
        name="m",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual", queue_interval=1000.0)  # manual flushing
    dep.start_wiera_instance("m", spec)
    east = dep.instance("m", US_EAST)
    queue = ReplicationQueue(east, interval=1000.0, batch_bytes=batch_bytes)
    data = b"x" * payload

    def make_update(key):
        def put():
            version = yield from east.local_put(key, data)
            meta = east.meta.get_record(key).versions[version]
            return {"key": key, "version": version,
                    "last_modified": meta.last_modified,
                    "origin": east.instance_id, "data": data}
        return dep.drive(put())

    def flush():
        yield from queue.flush()

    deliveries = 0
    flush_events = 0
    started_wall = time.perf_counter()
    for r in range(rounds):
        for i in range(keys):
            queue.enqueue(make_update(f"r{r}k{i}"))
        before = dep.sim.events_processed
        dep.drive(flush())
        flush_events += dep.sim.events_processed - before
        deliveries += keys * len(east.peers)
    wall = time.perf_counter() - started_wall
    assert queue.backlog_size() == 0 and queue.outstanding_failures == 0
    return {
        "batch_bytes": batch_bytes,
        "deliveries": deliveries,
        "flush_events": flush_events,
        "events_per_delivery": round(flush_events / deliveries, 3),
        "wall_seconds": round(wall, 4),
    }


def run_micro(quick: bool = False) -> dict:
    keys = 32 if quick else 64
    rounds = 8 if quick else 32
    off = _micro_one(0.0, keys, rounds, payload=256)
    on = _micro_one(1.0, keys, rounds, payload=256)
    return {
        "keys_per_flush": keys,
        "rounds": rounds,
        "peers": 2,
        "unbatched": off,
        "batched": on,
        # the headline: how many kernel events one delivery costs
        "events_per_delivery_ratio": round(
            off["events_per_delivery"] / on["events_per_delivery"], 2),
    }


# -- macro: eventual-consistency YCSB-A --------------------------------------

def _macro_one(batch_bytes: float, duration: float, clients: int,
               record_count: int) -> dict:
    dep = build_deployment(REGIONS, seed=11)
    spec = GlobalPolicySpec(
        name="mac",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual", queue_interval=0.25,
        batch_bytes=batch_bytes)
    instances = dep.start_wiera_instance("mac", spec)
    workload = YcsbWorkload.workload_a(record_count=record_count,
                                       value_size=256)
    drivers = []
    for i in range(clients):
        region = REGIONS[i % len(REGIONS)]
        client = dep.add_client(region, instances=instances)
        rng = dep.rng.stream(f"ycsb{i}")
        drivers.append(YcsbClient(dep.sim, client, workload, rng,
                                  think_time=0.01))
    dep.drive(drivers[0].load())

    started_wall = time.perf_counter()
    started_events = dep.sim.events_processed
    for driver in drivers:
        driver.start()
    dep.sim.run(until=dep.sim.now + duration)
    for driver in drivers:
        driver.stop()
    dep.sim.run(until=dep.sim.now + 2.0)    # let the queues drain
    wall = time.perf_counter() - started_wall
    events = dep.sim.events_processed - started_events
    ops = sum(driver.stats.ops for driver in drivers)
    updates = sum(driver.stats.updates for driver in drivers)
    errors = sum(driver.stats.errors for driver in drivers)
    return {
        "batch_bytes": batch_bytes,
        "ops": ops,
        "updates": updates,
        "errors": errors,
        "kernel_events": events,
        "events_per_update": round(events / max(updates, 1), 1),
        "wall_seconds": round(wall, 4),
        "ops_per_wall_sec": round(ops / wall, 1),
    }


def run_macro(quick: bool = False) -> dict:
    duration = 20.0 if quick else 90.0
    clients = 3 if quick else 6
    record_count = 100 if quick else 400
    off = _macro_one(0.0, duration, clients, record_count)
    on = _macro_one(8192.0, duration, clients, record_count)
    return {
        "workload": "ycsb-a, eventual, 3 regions",
        "duration_sim_sec": duration,
        "clients": clients,
        "record_count": record_count,
        "unbatched": off,
        "batched": on,
        "kernel_event_reduction": round(
            off["kernel_events"] / max(on["kernel_events"], 1), 2),
        "events_per_update_ratio": round(
            off["events_per_update"] / max(on["events_per_update"], 0.1), 2),
        "wall_clock_speedup": round(
            off["wall_seconds"] / max(on["wall_seconds"], 1e-9), 2),
    }


def run(quick: bool = False) -> dict:
    return {
        "benchmark": "replication_batch",
        "quick": quick,
        "micro": run_micro(quick),
        "macro": run_macro(quick),
    }


# -- baseline plumbing ------------------------------------------------------

def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict, rebaseline: bool = False) -> Path:
    existing = _load_existing()
    carried = {}
    if "baseline" in existing:
        carried["baseline"] = existing["baseline"]
    if rebaseline or "baseline" not in carried:
        carried["baseline"] = {
            "quick": result["quick"],
            "events_per_delivery_ratio":
                result["micro"]["events_per_delivery_ratio"],
            "batched_ops_per_wall_sec":
                result["macro"]["batched"]["ops_per_wall_sec"],
        }
    # Mutate in place so the caller's --check sees the carried baseline.
    result.update(carried)
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def check_gate(result: dict) -> bool:
    ok = True
    ratio = result["micro"]["events_per_delivery_ratio"]
    if ratio < MIN_EVENT_RATIO:
        print(f"gate: micro events/delivery ratio {ratio} "
              f"< required {MIN_EVENT_RATIO} -> REGRESSION")
        ok = False
    else:
        print(f"gate: micro events/delivery ratio {ratio} "
              f">= {MIN_EVENT_RATIO} -> ok")
    macro_cut = result["macro"]["events_per_update_ratio"]
    if macro_cut < 1.0:
        print(f"gate: macro events/update ratio {macro_cut} < 1.0 "
              "(batching made the macro run MORE expensive) -> REGRESSION")
        ok = False
    else:
        print(f"gate: macro events/update ratio {macro_cut} -> ok")
    baseline = result.get("baseline")
    if not baseline:
        print("no baseline recorded; throughput floor passes vacuously")
        return ok
    if baseline.get("quick") != result.get("quick"):
        print("baseline was recorded in a different mode "
              f"(quick={baseline.get('quick')}); floor skipped — "
              "re-pin with --rebaseline in the mode you gate on")
        return ok
    floor = GATE_FRACTION * baseline["batched_ops_per_wall_sec"]
    current = result["macro"]["batched"]["ops_per_wall_sec"]
    if current < floor:
        print(f"gate: batched {current:.0f} ops/s vs baseline "
              f"{baseline['batched_ops_per_wall_sec']:.0f} "
              f"(floor {floor:.0f}) -> REGRESSION")
        ok = False
    else:
        print(f"gate: batched {current:.0f} ops/s "
              f"(floor {floor:.0f}) -> ok")
    return ok


def test_replication_batch(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    assert result["micro"]["events_per_delivery_ratio"] >= MIN_EVENT_RATIO
    assert result["macro"]["events_per_update_ratio"] >= 1.0
    assert result["macro"]["batched"]["errors"] == 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless batching still saves >= "
                             f"{MIN_EVENT_RATIO}x events per delivery and "
                             "throughput holds the baseline floor")
    parser.add_argument("--rebaseline", action="store_true",
                        help="pin the baseline to this run")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result, rebaseline=args.rebaseline)
    micro = result["micro"]
    macro = result["macro"]
    print(f"micro : {micro['unbatched']['events_per_delivery']} -> "
          f"{micro['batched']['events_per_delivery']} events/delivery "
          f"({micro['events_per_delivery_ratio']}x)")
    print(f"macro : {macro['unbatched']['kernel_events']} -> "
          f"{macro['batched']['kernel_events']} kernel events "
          f"({macro['kernel_event_reduction']}x), "
          f"events/update {macro['unbatched']['events_per_update']} -> "
          f"{macro['batched']['events_per_update']} "
          f"({macro['events_per_update_ratio']}x), "
          f"wall {macro['unbatched']['wall_seconds']}s -> "
          f"{macro['batched']['wall_seconds']}s "
          f"({macro['wall_clock_speedup']}x)")
    print(f"wrote {out}")
    if args.check and not check_gate(result):
        sys.exit(1)


if __name__ == "__main__":
    main()
