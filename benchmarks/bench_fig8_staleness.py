"""Figure 8 + Table 3: changing the primary instance (Tuba-style).

One simulation pair (static vs changing primary) feeds both the staleness
figure and the put-latency table; results are cached at module scope so
the two benchmark entries don't re-run the 2 x 32-minute simulation.
"""


from repro.bench.experiments import run_fig8_table3
from repro.bench.reporting import register_report
from repro.net.topology import ASIA_EAST, EU_WEST, US_WEST

_CACHE = {}


def _results():
    if "runs" not in _CACHE:
        _CACHE["runs"] = run_fig8_table3()
    return _CACHE["runs"]


def test_fig8_staleness(benchmark):
    (static, changing), fig8, table3 = benchmark.pedantic(
        _results, rounds=1, iterations=1)
    register_report(fig8)

    # Paper: 69% outdated static -> 39% changing.  The shape requirement:
    # a majority-ish of static reads are outdated, and changing the
    # primary cuts the outdated fraction roughly in half.
    assert static.outdated_fraction > 0.40, static.outdated_fraction
    assert changing.outdated_fraction < static.outdated_fraction * 0.75
    assert changing.outdated_fraction > 0.05  # eventual reads still stale sometimes

    # The primary actually moved, following the activity wave eastward.
    moved_to = [iid for _, iid in changing.primary_history]
    assert any(EU_WEST in iid for iid in moved_to)
    assert any(US_WEST in iid for iid in moved_to)


def test_table3_put_latency(benchmark):
    (static, changing), fig8, table3 = benchmark.pedantic(
        _results, rounds=1, iterations=1)
    register_report(table3)

    # Static primary in Asia East: Asia local (<5 ms), EU pays the full
    # EU<->Asia RTT (~216 ms paper / ~220 ms here), US in between.
    assert static.put_latency_ms[ASIA_EAST] < 5.0
    assert 180.0 <= static.put_latency_ms[EU_WEST] <= 260.0
    assert 80.0 <= static.put_latency_ms[US_WEST] <= 140.0

    # Changing the primary cuts overall put latency (paper 105 -> 68 ms).
    assert changing.overall_put_ms < static.overall_put_ms * 0.8
    # ...and every non-primary region improves.
    assert changing.put_latency_ms[EU_WEST] < static.put_latency_ms[EU_WEST]
    assert changing.put_latency_ms[US_WEST] < static.put_latency_ms[US_WEST]
