"""Benchmark-suite plumbing.

Every benchmark registers an :class:`ExperimentReport`; this conftest
prints all of them in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` output shows the paper-vs-measured tables) and dumps
them under ``results/``.
"""

import pathlib

import hypothesis  # noqa: F401  (preload: the pytest plugin imports it at
#                    summary time, which can trip CPython's AST-recursion
#                    accounting after deep simulation call stacks)

from repro.bench.reporting import all_reports, dump_reports, render_all

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = all_reports()
    if not reports:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("Wiera reproduction: paper vs measured")
    terminalreporter.write_line(render_all())
    combined = dump_reports(RESULTS_DIR)
    if combined:
        terminalreporter.write_line(f"\n(reports written to {combined.parent})")
