"""Benchmark-suite plumbing.

Every benchmark registers an :class:`ExperimentReport`; this conftest
prints all of them in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` output shows the paper-vs-measured tables) and dumps
them under ``results/``.

``pytest benchmarks/ --profile`` additionally wraps each benchmark in
cProfile and prints the top functions by cumulative time — the hotspot
view that motivated the kernel fast path (``--profile-top N`` adjusts
how many rows).
"""

import cProfile
import io
import pathlib
import pstats

import hypothesis  # noqa: F401  (preload: the pytest plugin imports it at
#                    summary time, which can trip CPython's AST-recursion
#                    accounting after deep simulation call stacks)
import pytest

from repro.bench.reporting import all_reports, dump_reports, render_all

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    group = parser.getgroup("wiera-bench")
    group.addoption("--profile", action="store_true", default=False,
                    help="run each benchmark under cProfile and print the "
                         "top functions by cumulative time")
    group.addoption("--profile-top", type=int, default=25, metavar="N",
                    help="rows to print per --profile dump (default 25)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not item.config.getoption("profile", False):
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    yield
    profiler.disable()
    top = item.config.getoption("profile_top", 25)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    print(f"\n-- cProfile: {item.nodeid} (top {top} by cumulative) --")
    print(buf.getvalue())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = all_reports()
    if not reports:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("Wiera reproduction: paper vs measured")
    terminalreporter.write_line(render_all())
    combined = dump_reports(RESULTS_DIR)
    if combined:
        terminalreporter.write_line(f"\n(reports written to {combined.parent})")
