"""Shard scale-out: throughput vs shard count (repro.shard).

Runs the same YCSB-A closed-loop traffic against a namespace partitioned
over 1 / 2 / 4 / 8 shards and reports, per shard count:

* **ops/sec (sim)** — operations completed per second of *simulated*
  time.  Closed-loop clients are latency-bound and the simulator has no
  per-instance CPU model, so this stays flat across shard counts — the
  partitioning adds no per-operation cost, which is itself the claim
  under test (guards and routing are free on the hot path).
* **kernel events/sec (wall)** — simulator events processed per second
  of *wall-clock* time (``Simulator.events_processed``), the simulator's
  own execution throughput as the deployment grows to 8 replica groups.

Emits a machine-readable ``results/BENCH_shard_scaleout.json``.  Run as
a script (``--quick`` shrinks the run for CI smoke) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.net.topology import US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

SHARD_COUNTS = (1, 2, 4, 8)
RESULTS = Path(__file__).resolve().parent.parent / "results"


def _run_one(shards: int, duration: float, clients: int,
             record_count: int) -> dict:
    dep = build_deployment([US_EAST, US_WEST], seed=11, shards=shards)
    spec = GlobalPolicySpec(
        name="scale",
        placements=(RegionPlacement(US_EAST, write_back_policy()),
                    RegionPlacement(US_WEST, write_back_policy())),
        consistency="multi_primaries")
    handle = dep.start_sharded_instance("scale", spec)
    workload = YcsbWorkload.workload_a(record_count=record_count,
                                       value_size=256)
    drivers = []
    for i in range(clients):
        region = (US_WEST, US_EAST)[i % 2]
        client = dep.add_client(region, sharded=handle)
        rng = dep.rng.stream(f"ycsb{i}")
        drivers.append(YcsbClient(dep.sim, client, workload, rng,
                                  think_time=0.01))
    dep.drive(drivers[0].load())

    started_wall = time.perf_counter()
    started_sim = dep.sim.now
    started_events = dep.sim.events_processed
    for driver in drivers:
        driver.start()
    dep.sim.run(until=dep.sim.now + duration)
    for driver in drivers:
        driver.stop()
    dep.sim.run(until=dep.sim.now + 1.0)
    wall = time.perf_counter() - started_wall
    sim_elapsed = dep.sim.now - started_sim
    events = dep.sim.events_processed - started_events
    ops = sum(driver.stats.ops for driver in drivers)
    errors = sum(driver.stats.errors for driver in drivers)
    return {
        "shards": shards,
        "ops": ops,
        "errors": errors,
        "sim_seconds": round(sim_elapsed, 6),
        "ops_per_sim_sec": round(ops / sim_elapsed, 3),
        "kernel_events": events,
        "kernel_events_per_wall_sec": round(events / wall, 1),
        "wall_seconds": round(wall, 4),
    }


def run(quick: bool = False) -> dict:
    duration = 20.0 if quick else 120.0
    clients = 2 if quick else 4
    record_count = 100 if quick else 400
    rows = [_run_one(shards, duration, clients, record_count)
            for shards in SHARD_COUNTS]
    return {
        "benchmark": "shard_scaleout",
        "workload": "ycsb-a",
        "quick": quick,
        "duration_sim_sec": duration,
        "clients": clients,
        "record_count": record_count,
        "rows": rows,
    }


def emit(result: dict) -> Path:
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_shard_scaleout.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    return out


def test_shard_scaleout(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    by_shards = {row["shards"]: row for row in result["rows"]}
    assert set(by_shards) == set(SHARD_COUNTS)
    for row in result["rows"]:
        assert row["ops"] > 0
    # Splitting the namespace must not shrink throughput materially.
    assert (by_shards[4]["ops_per_sim_sec"]
            >= 0.8 * by_shards[1]["ops_per_sim_sec"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run (20s sim, 2 clients)")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result)
    header = f"{'shards':>6} {'ops':>8} {'ops/sim-s':>10} {'kev/wall-s':>11}"
    print(header)
    for row in result["rows"]:
        print(f"{row['shards']:>6} {row['ops']:>8} "
              f"{row['ops_per_sim_sec']:>10.1f} "
              f"{row['kernel_events_per_wall_sec']:>11.0f}")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
