"""Shard scale-out: achieved throughput vs shard count (repro.shard).

Historically this bench drove a closed-loop YCSB-A workload and the
curve came out dead flat (~52 ops/sim-sec from 1 to 8 shards): four
latency-bound clients, not the store, were the ceiling.  Those numbers
are preserved under ``baseline_closed_loop`` in the emitted JSON.

The headline measurement is now **open-loop** (see :mod:`repro.load`):
for each shard count, an offered-load sweep drives one cohort per
region at a configured arrival rate against a deployment with one Tiera
host per shard per region (``servers_per_region=shards``), so shards
occupy real capacity.  Reported per (shard count, offered level):
achieved ops/sim-sec, shed load, queueing delay, and tail latency —
the scale-out curve bends upward because per-host egress saturates and
added shards add hosts.

The closed-loop configuration still runs as a reference — same YCSB-A /
multi-primaries setup as before, now with errors attributed by type
(lock-lease expiries vs redirects vs interrupts) instead of one opaque
count.

Emits ``results/BENCH_shard_scaleout.json``.  Run as a script
(``--quick`` shrinks the run for CI smoke) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.harness import build_deployment
from repro.bench.openloop import run_scaleout_cell, scaleout_workload
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.net.topology import US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

SHARD_COUNTS = (1, 2, 4, 8)
RESULTS = Path(__file__).resolve().parent.parent / "results"
OUT_PATH = RESULTS / "BENCH_shard_scaleout.json"


# -- closed-loop reference (the historical configuration) --------------------

def _closed_loop_one(shards: int, duration: float, clients: int,
                     record_count: int) -> dict:
    dep = build_deployment([US_EAST, US_WEST], seed=11, shards=shards)
    spec = GlobalPolicySpec(
        name="scale",
        placements=(RegionPlacement(US_EAST, write_back_policy()),
                    RegionPlacement(US_WEST, write_back_policy())),
        consistency="multi_primaries")
    handle = dep.start_sharded_instance("scale", spec)
    workload = YcsbWorkload.workload_a(record_count=record_count,
                                      value_size=256)
    drivers = []
    for i in range(clients):
        region = (US_WEST, US_EAST)[i % 2]
        client = dep.add_client(region, sharded=handle)
        rng = dep.rng.stream(f"ycsb{i}")
        drivers.append(YcsbClient(dep.sim, client, workload, rng,
                                  think_time=0.01))
    dep.drive(drivers[0].load())

    started_wall = time.perf_counter()
    started_sim = dep.sim.now
    started_events = dep.sim.events_processed
    for driver in drivers:
        driver.start()
    dep.sim.run(until=dep.sim.now + duration)
    for driver in drivers:
        driver.stop()
    dep.sim.run(until=dep.sim.now + 1.0)
    wall = time.perf_counter() - started_wall
    sim_elapsed = dep.sim.now - started_sim
    events = dep.sim.events_processed - started_events
    ops = sum(driver.stats.ops for driver in drivers)
    errors = sum(driver.stats.errors for driver in drivers)
    errors_by_type: dict[str, int] = {}
    for driver in drivers:
        for kind, n in driver.stats.errors_by_type.items():
            errors_by_type[kind] = errors_by_type.get(kind, 0) + n
    return {
        "shards": shards,
        "ops": ops,
        "errors": errors,
        "errors_by_type": dict(sorted(errors_by_type.items())),
        "sim_seconds": round(sim_elapsed, 6),
        "ops_per_sim_sec": round(ops / sim_elapsed, 3),
        "kernel_events": events,
        "kernel_events_per_wall_sec": round(events / wall, 1),
        "wall_seconds": round(wall, 4),
    }


def run_closed_loop(quick: bool = False) -> dict:
    duration = 20.0 if quick else 120.0
    clients = 2 if quick else 4
    record_count = 100 if quick else 400
    rows = [_closed_loop_one(shards, duration, clients, record_count)
            for shards in SHARD_COUNTS]
    return {
        "workload": "ycsb-a, multi_primaries (closed loop, 4 clients)",
        "duration_sim_sec": duration,
        "clients": clients,
        "record_count": record_count,
        "rows": rows,
    }


# -- open-loop offered-load sweep (the headline) ------------------------------

def run_open_loop(quick: bool = False) -> dict:
    offered_levels = (500.0, 2000.0, 4000.0) if quick else \
        (500.0, 1000.0, 2000.0, 4000.0, 8000.0)
    duration = 4.0 if quick else 10.0
    workload = scaleout_workload()
    rows = [run_scaleout_cell(shards, offered, duration, workload=workload)
            for shards in SHARD_COUNTS for offered in offered_levels]
    return {
        "workload": "ycsb-b uniform 64KB values, eventual (open loop)",
        "offered_levels": list(offered_levels),
        "duration_sim_sec": duration,
        "rows": rows,
    }


def run(quick: bool = False) -> dict:
    return {
        "benchmark": "shard_scaleout",
        "quick": quick,
        "open_loop": run_open_loop(quick),
        "closed_loop": run_closed_loop(quick),
    }


def _load_existing() -> dict:
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def emit(result: dict) -> Path:
    """Write the result, carrying the pre-open-loop closed-loop numbers
    as ``baseline_closed_loop`` (pinned once from the last old-format
    file, kept verbatim thereafter for the before/after story)."""
    existing = _load_existing()
    if "baseline_closed_loop" in existing:
        result["baseline_closed_loop"] = existing["baseline_closed_loop"]
    elif "rows" in existing:   # old single-table closed-loop format
        result["baseline_closed_loop"] = {
            "workload": existing.get("workload", "ycsb-a"),
            "quick": existing.get("quick"),
            "duration_sim_sec": existing.get("duration_sim_sec"),
            "clients": existing.get("clients"),
            "record_count": existing.get("record_count"),
            "rows": existing["rows"],
        }
    RESULTS.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return OUT_PATH


def test_shard_scaleout(benchmark):
    result = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit(result)
    open_rows = result["open_loop"]["rows"]
    top = result["open_loop"]["offered_levels"][-1]
    at_top = {row["shards"]: row for row in open_rows
              if row["offered_per_sec"] == top}
    assert set(at_top) == set(SHARD_COUNTS)
    # The whole point of the open-loop driver: the curve bends upward.
    assert (at_top[8]["achieved_per_sim_sec"]
            >= 3.0 * at_top[1]["achieved_per_sim_sec"])
    # Closed-loop reference still runs, with errors attributed by type.
    for row in result["closed_loop"]["rows"]:
        assert row["ops"] > 0
        assert sum(row["errors_by_type"].values()) == row["errors"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke run")
    args = parser.parse_args()
    result = run(quick=args.quick)
    out = emit(result)
    print("open loop (offered-load sweep):")
    print(f"{'shards':>6} {'offered/s':>10} {'achieved/s':>10} "
          f"{'shed':>8} {'p95 ms':>8}")
    for row in result["open_loop"]["rows"]:
        print(f"{row['shards']:>6} {row['offered_per_sec']:>10.0f} "
              f"{row['achieved_per_sim_sec']:>10.0f} {row['shed']:>8} "
              f"{row['get_p95_ms']:>8.1f}")
    print("closed loop (reference):")
    print(f"{'shards':>6} {'ops':>8} {'ops/sim-s':>10}  errors")
    for row in result["closed_loop"]["rows"]:
        kinds = ", ".join(f"{k}={v}" for k, v in
                          row["errors_by_type"].items()) or "none"
        print(f"{row['shards']:>6} {row['ops']:>8} "
              f"{row['ops_per_sim_sec']:>10.1f}  {kinds}")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
