"""Figure 11: SysBench IOPS, Azure local disk vs AWS remote memory."""

from repro.bench.experiments import run_fig11
from repro.bench.reporting import register_report


def test_fig11_sysbench_iops(benchmark):
    result, report = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    register_report(report)

    # Local disk: flat at the Azure 500-IOPS throttle on every VM size.
    for vm, iops in result.local_iops.items():
        assert 450.0 <= iops <= 510.0, (vm, iops)

    # Remote memory through Wiera scales with VM size; Basic A2 is worse
    # than Standard D1 despite having more CPUs (network throttling).
    a2 = result.wiera_iops["azure.basic_a2"]
    d1 = result.wiera_iops["azure.standard_d1"]
    d2 = result.wiera_iops["azure.standard_d2"]
    d3 = result.wiera_iops["azure.standard_d3"]
    assert a2 < d1 < d2
    assert abs(d3 - d2) / d2 < 0.15  # D2 ~= D3

    # Paper: ~44% improvement over the disk on D2/D3.
    disk = result.local_iops["azure.standard_d2"]
    assert 1.30 <= d2 / disk <= 1.60, d2 / disk
    assert 1.30 <= d3 / disk <= 1.65
    # Small VMs do not beat the local disk.
    assert a2 < 500.0 and d1 < 500.0
