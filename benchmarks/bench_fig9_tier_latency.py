"""Figure 9: per-tier operation latencies for 4 KB objects in US East."""

from repro.bench.experiments import run_fig9
from repro.bench.reporting import register_report


def test_fig9_tier_latency(benchmark):
    result, report = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    register_report(report)

    # Ordering: you get what you pay for — SSD < HDD < S3 <= S3-IA.
    assert result.get_ms["ebs_ssd"] < result.get_ms["ebs_hdd"]
    assert result.get_ms["ebs_hdd"] < result.get_ms["s3"]
    assert result.get_ms["s3"] <= result.get_ms["s3_ia"]
    assert result.put_ms["ebs_ssd"] < result.put_ms["ebs_hdd"]
    assert result.put_ms["ebs_hdd"] < result.put_ms["s3"]
    assert result.put_ms["s3"] <= result.put_ms["s3_ia"]

    # Magnitudes: SSD ~1-3 ms, HDD under ~15 ms, object stores tens of ms.
    assert result.get_ms["ebs_ssd"] < 4.0
    assert result.get_ms["ebs_hdd"] < 16.0
    assert 15.0 < result.get_ms["s3"] < 80.0
    # Object-store puts are slower than gets (HTTP PUT of a new object).
    assert result.put_ms["s3"] > result.get_ms["s3"]
