#!/usr/bin/env python
"""Dynamic consistency switching under network turbulence (Figure 5(a)/7).

A four-region Wiera instance starts under MultiPrimaries (strong)
consistency.  Update-heavy YCSB clients run in every region.  Midway, we
degrade the US West instance's WAN paths; Wiera's LatencyMonitoring
detects the sustained 800 ms violation and switches the *whole* instance
to eventual consistency at run time — then switches back once the network
recovers.  Watch the put latency collapse from ~350 ms to ~1 ms and
return.

Run:  python examples/dynamic_consistency.py
"""

from repro import build_deployment
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS
from repro.workloads import YcsbClient, YcsbWorkload

REGIONS = (US_WEST, US_EAST, EU_WEST, ASIA_EAST)


def main() -> None:
    dep = build_deployment(REGIONS, seed=7)
    spec = builtin_policy("DynamicConsistency")
    print("DynamicConsistency policy (compiled from the Figure 5(a) DSL):")
    print(f"  threshold = {spec.dynamic.latency_threshold * 1000:.0f} ms "
          f"sustained for {spec.dynamic.period:.0f} s")
    print(f"  strong = {spec.dynamic.strong}, weak = {spec.dynamic.weak}\n")
    instances = dep.start_wiera_instance("dyn", spec)

    workload = YcsbWorkload.workload_a(record_count=40)
    clients = []
    for region in REGIONS:
        wc = dep.add_client(region, instances=instances,
                            name=f"app-{region}")
        yc = YcsbClient(dep.sim, wc, workload,
                        dep.rng.stream(f"ycsb-{region}"), think_time=0.5)
        clients.append((region, wc, yc))

    def load():
        yield from clients[0][2].load(40)
    dep.drive(load())
    t0 = dep.sim.now
    for _, _, yc in clients:
        yc.start()

    # degrade US West's WAN paths between t=40s and t=100s
    for other in REGIONS[1:]:
        dep.network.inject_pair_delay(US_WEST, other, 0.15,
                                      start=t0 + 40, duration=60)
    dep.sim.run(until=t0 + 180)
    for _, _, yc in clients:
        yc.stop()

    tim = dep.tim("dyn")
    print("consistency switches:")
    for (t, frm, to, done) in tim.switch_log:
        print(f"  t={t - t0:6.1f}s  {frm} -> {to} "
              f"(drain+swap took {(done - t) * 1000:.0f} ms)")

    print("\nUS West put latency, 20 s windows:")
    recorder = dict((r, c) for r, c, _ in clients)[US_WEST].put_latency
    for w0 in range(0, 180, 20):
        window = recorder.window(t0 + w0, t0 + w0 + 20)
        if window:
            mean = sum(window) / len(window)
            bar = "#" * min(60, int(mean / (25 * MS)))
            print(f"  [{w0:3d}-{w0 + 20:3d}s] {mean / MS:8.1f} ms {bar}")


if __name__ == "__main__":
    main()
