#!/usr/bin/env python
"""Follow-the-sun primary migration (Figure 5(b) / §5.2, Tuba-style).

Three regions serve a read-mostly workload whose active-client population
moves around the planet (Asia East peaks first, then EU West, then US
West — each a Gaussian activity curve).  Under PrimaryBackup with lazy
replication, every put is forwarded to the primary; Wiera's
RequestsMonitoring notices when another instance forwards more puts than
the primary receives directly and migrates the primary toward the load.

Run:  python examples/follow_the_sun.py
"""

from repro import build_deployment
from repro.net import ASIA_EAST, EU_WEST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MINUTE, MS
from repro.workloads import (
    GeoClientPopulation,
    StalenessOracle,
    YcsbClient,
    YcsbWorkload,
)

REGIONS = (ASIA_EAST, EU_WEST, US_WEST)


def main() -> None:
    dep = build_deployment(REGIONS, seed=21)
    spec = builtin_policy("ChangePrimary")   # Figure 5(b), from DSL text
    instances = dep.start_wiera_instance("sun", spec)
    tim = dep.tim("sun")
    print(f"initial primary: {tim.protocol.config.primary_id}")

    workload = YcsbWorkload.workload_b(record_count=10)
    oracle = StalenessOracle()
    population = GeoClientPopulation.staggered(
        list(REGIONS), first_peak=5 * MINUTE, stagger=5 * MINUTE,
        sigma=3 * MINUTE, max_clients=8, min_clients=1)

    loader = dep.add_client(ASIA_EAST, instances=instances, name="loader")

    def load():
        yc = YcsbClient(dep.sim, loader, workload, dep.rng.stream("load"))
        yield from yc.load(10)
    dep.drive(load())
    t0 = dep.sim.now

    ycsb = []
    for region in REGIONS:
        for i in range(8):
            wc = dep.add_client(region, instances=instances,
                                name=f"c-{region}-{i}")
            yc = YcsbClient(dep.sim, wc, workload,
                            dep.rng.stream(f"y-{region}-{i}"),
                            think_time=0.5, oracle=oracle,
                            is_active=population.activity_gate(
                                dep.sim, region, i))
            ycsb.append((region, wc, yc))
            yc.start()

    dep.sim.run(until=t0 + 20 * MINUTE)
    for _, _, yc in ycsb:
        yc.stop()

    print("\nprimary migrations (following the activity wave):")
    for t, iid in tim.protocol.config.history:
        print(f"  t={max(0.0, t - t0) / MINUTE:5.1f} min  -> {iid}")

    print("\nper-region average put latency:")
    for region in REGIONS:
        values = [v for r, wc, _ in ycsb if r == region
                  for v in wc.put_latency.values]
        if values:
            print(f"  {region:10s} {sum(values) / len(values) / MS:7.1f} ms "
                  f"({len(values)} puts)")
    print(f"\nfraction of reads that saw outdated data: "
          f"{100 * oracle.outdated_fraction:.1f}% "
          f"(the paper cuts 69% to 39% by moving the primary)")


if __name__ == "__main__":
    main()
