#!/usr/bin/env python
"""Automated data placement: the paper's future work, implemented.

§3.1 sketches a data placement manager that consumes the network and
workload monitors to "generate a dynamic global policy automatically" and
defers it to future work.  This example closes that loop:

1. a 4-region PrimaryBackup deployment serves a workload whose demand is
   dominated by Asia East;
2. the WorkloadMonitor aggregates per-region demand over RPC;
3. the DataPlacementAdvisor recommends a primary (demand-weighted RTT), a
   2-replica set (greedy k-center), and a consistency model against an
   800 ms latency goal;
4. the recommendation is *applied* — the TIM migrates the primary — and
   the put latency improvement is measured.

Run:  python examples/auto_placement.py
"""

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.core import DataPlacementAdvisor, WorkloadMonitor
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import write_back_policy
from repro.util.units import MS

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def main() -> None:
    dep = build_deployment(REGIONS, seed=31)
    spec = GlobalPolicySpec(
        name="auto",
        placements=tuple(
            RegionPlacement(r, write_back_policy(),
                            primary=(r == US_EAST)) for r in REGIONS),
        consistency="primary_backup", sync_replication=False,
        queue_interval=2.0)
    instances = dep.start_wiera_instance("auto", spec)
    tim = dep.tim("auto")
    print(f"initial primary: {tim.protocol.config.primary_id}")

    monitor = WorkloadMonitor(tim, poll_interval=5.0)
    monitor.start()
    advisor = DataPlacementAdvisor(tim, monitor, latency_goal=0.8)

    # Asia-dominated demand: 5x the clients of anywhere else.
    clients = {r: dep.add_client(r, instances=instances, name=f"c-{r}")
               for r in REGIONS}

    def traffic(region, ops, spacing):
        client = clients[region]

        def run():
            for i in range(ops):
                result = yield from client.put(f"{region}-{i}", b"x" * 512)
                yield dep.sim.timeout(spacing)
        return dep.sim.process(run())

    procs = [traffic(ASIA_EAST, 150, 0.2)]
    for r in (US_EAST, US_WEST, EU_WEST):
        procs.append(traffic(r, 20, 1.5))
    dep.sim.run(until=dep.sim.all_of(procs))

    before = clients[ASIA_EAST].put_latency.mean()
    advice = advisor.advise(replicas=2)
    print("\nadvisor recommendation:")
    print(f"  demand by region: {advice.demand}")
    print(f"  primary:          {advice.primary_region} "
          f"({advice.primary_instance_id})")
    print(f"  replica set (2):  {advice.replica_regions}")
    print(f"  consistency:      {advice.suggested_consistency} "
          f"(vs the 800 ms goal)")
    print(f"  expected put:     {advice.expected_put_ms:.1f} ms "
          f"demand-weighted")

    result = dep.drive(advisor.apply(advice))
    print(f"\napplied: primary {result['previous']} -> {result['primary']}")

    # measure the improvement for the dominant population
    client = clients[ASIA_EAST]
    n_before = len(client.put_latency.values)

    def after_traffic():
        for i in range(60):
            yield from client.put(f"post-{i}", b"x" * 512)
            yield dep.sim.timeout(0.2)
    dep.drive(after_traffic())
    after_vals = client.put_latency.values[n_before:]
    after = sum(after_vals) / len(after_vals)
    print(f"\nAsia East put latency: {before / MS:.1f} ms before -> "
          f"{after / MS:.1f} ms after the migration")
    monitor.stop()


if __name__ == "__main__":
    main()
