#!/usr/bin/env python
"""Tracing tour: record a full request-tree trace of a Wiera deployment.

Runs a three-region MultiPrimaries instance with span recording enabled,
drives a small workload plus one runtime consistency switch, and exports:

* ``results/tracing_trace.json`` — Chrome ``trace_event`` JSON.  Open it
  in chrome://tracing or https://ui.perfetto.dev: each RPC node / host /
  storage tier is a process row, each client request is a thread track,
  and spans nest client put -> rpc -> handler -> lock/storage/network.
* ``results/tracing_metrics.json`` — the flat MetricsRegistry snapshot
  (RPC counts, bytes moved, storage ops, lock waits, latency histograms
  with p50/p95/p99, policy actions).

Run:  python examples/tracing.py
"""

from repro import build_deployment
from repro.bench.reporting import dump_observability
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS


def main() -> None:
    dep = build_deployment([US_WEST, US_EAST, EU_WEST], seed=7,
                           with_tracing=True)
    spec = builtin_policy("MultiPrimariesConsistency")
    instances = dep.start_wiera_instance("traced", spec)
    client = dep.add_client(US_WEST, instances=instances, name="app")

    def workload():
        for i in range(5):
            result = yield from client.put(f"obj-{i}", b"payload" * 40)
            print(f"put obj-{i}: v{result['version']} in "
                  f"{result['latency'] / MS:.1f} ms")
        got = yield from client.get("obj-0")
        print(f"get obj-0: {len(got['data'])} B in "
              f"{got['latency'] / MS:.2f} ms")
    dep.drive(workload())

    # A runtime policy action, so the trace shows a policy-category span
    # (gate -> drain -> protocol swap -> reopen, §3.3.2).
    tim = dep.tim("traced")
    switched = dep.drive(tim.switch_consistency("eventual"),
                         name="switch")
    print(f"switched consistency {switched['from']} -> {switched['to']} "
          f"in {switched['took'] / MS:.1f} ms")
    dep.drive(client.put("obj-after", b"eventually consistent"))

    tracer = dep.obs.tracer
    cats = {}
    for span in tracer.spans:
        cats[span.cat] = cats.get(span.cat, 0) + 1
    print(f"\nrecorded {len(tracer.spans)} spans: "
          + ", ".join(f"{c}={n}" for c, n in sorted(cats.items())))

    written = dump_observability(dep.obs, "results", stem="tracing")
    for path in written:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
