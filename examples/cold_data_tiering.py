#!/usr/bin/env python
"""Cold-data tiering and centralization for cost savings (§5.3).

Part 1 runs the Figure 6(a) ReducedCost-style policy on one instance: a
ColdDataMonitoring event demotes objects idle for 120 hours from the fast
tier to cheap storage, and the Table 4 price book quantifies the savings.

Part 2 goes further, as §5.3 does: four regions share *one* centralized
S3-IA tier in US East for cold data.  Wiera demotes at the central
instance and drops the other replicas; remote regions can still read the
cold object — paying the WAN round trip of Fig. 10 — while the storage
bill shrinks by another copy-count factor.

Run:  python examples/cold_data_tiering.py
"""

from repro import ColdDataSpec, GlobalPolicySpec, RegionPlacement, build_deployment
from repro.bench.harness import preload_object
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.storage.cost import migration_savings, monthly_storage_cost
from repro.util.units import GB, HOUR, KB, MS

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def part1_local_demotion() -> None:
    print("=== Part 1: per-instance cold-data demotion (Figure 6(a)) ===")
    dep = build_deployment([US_EAST], seed=1)
    spec = builtin_policy("ColdToInfrequentAccess",
                          params={"cold_check_interval": 3600.0})
    dep.start_wiera_instance("cold", spec)
    instance = dep.instance("cold", US_EAST)

    # 50 objects; we will keep 10 hot.
    for i in range(50):
        preload_object([instance], f"obj-{i}", b"\x42" * (64 * KB))

    def touch_hot():
        for _ in range(6 * 24 + 6):   # ~6 days, hourly touches
            for i in range(10):
                yield from instance.read_version(f"obj-{i}")
            yield dep.sim.timeout(1 * HOUR)
    dep.drive(touch_hot())

    fast, cheap = instance.tier("tier1"), instance.tier("tier2")
    print(f"after 6 days: fast tier holds {len(fast)} objects, "
          f"S3-IA holds {len(cheap)}")
    print("at the paper's scale (8 TB cold of 10 TB):")
    print(f"  from EBS SSD: save ${migration_savings(8000 * GB, 'ebs_ssd', 's3_ia'):.0f}/month per instance")
    print(f"  from EBS HDD: save ${migration_savings(8000 * GB, 'ebs_hdd', 's3_ia'):.0f}/month per instance\n")


def part2_centralized() -> None:
    print("=== Part 2: centralized cold tier shared by four regions ===")
    dep = build_deployment(REGIONS, seed=2)
    local = builtin_policy("SsdWithIaInstance")
    spec = GlobalPolicySpec(
        name="central-cold",
        placements=tuple(RegionPlacement(r, local) for r in REGIONS),
        consistency="eventual", queue_interval=1.0,
        cold=ColdDataSpec(age=6 * HOUR, target_tier="tier2",
                          check_interval=1 * HOUR, centralize=True,
                          central_region=US_EAST))
    instances = dep.start_wiera_instance("cc", spec)

    # every region replicates the same object (eventual consistency)
    client = dep.add_client(US_EAST, instances=instances)

    def seed():
        yield from client.put("shared-report", b"\x17" * (256 * KB))
        yield dep.sim.timeout(30.0)  # replication settles
    dep.drive(seed())

    # let it go cold; the coordinator centralizes it in US East S3-IA
    dep.sim.run(until=dep.sim.now + 10 * HOUR)

    print("replica locations after centralization:")
    for region in REGIONS:
        instance = dep.instance("cc", region)
        meta = instance.meta.get_record("shared-report").latest()
        print(f"  {region:10s} locations={sorted(meta.locations)}")

    def cold_read():
        asia = dep.instance("cc", ASIA_EAST)
        t0 = dep.sim.now
        data, meta, _ = yield from asia.read_version("shared-report")
        return dep.sim.now - t0, len(data)
    elapsed, size = dep.drive(cold_read())
    print(f"\nAsia East reads the centralized cold object "
          f"({size // KB} KB) in {elapsed / MS:.0f} ms over the WAN")
    saving = 3 * monthly_storage_cost("s3_ia", 8000 * GB)
    print(f"dropping 3 of 4 cold replicas at the paper's scale saves "
          f"another ${saving:.0f}/month")


if __name__ == "__main__":
    part1_local_demotion()
    part2_centralized()
