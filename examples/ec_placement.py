#!/usr/bin/env python
"""Erasure-coded redundancy with per-prefix scheme selection.

A photo service keeps every object durable against two simultaneous site
losses, but pays for that durability two ways:

* ``hot/`` thumbnails are read constantly -> 3x replication
  (``EC(k=1, m=2)``): reads stay local, storage costs 3x.
* ``cold/`` originals are read about once a month -> ``EC(k=4, m=2)``:
  same two-failure durability at 1.5x storage, reads pay a WAN
  reconstruction penalty nobody notices on cold data.

Part 1 asks the :class:`RedundancyOptimizer` to price both schemes from
the Table 4 price book and pick one per access profile.  Part 2 runs the
chosen split on a live six-site deployment via
``RedundancySpec.overrides`` and shows the stored-byte footprint and a
degraded read surviving a site crash.

Run:  python examples/ec_placement.py
"""

from repro import (GlobalPolicySpec, RedundancySpec, RegionPlacement,
                   build_deployment)
from repro.ec import RedundancyOptimizer, decode_manifest
from repro.net import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.net.topology import Topology
from repro.tiera.policy import disk_only_policy
from repro.util.units import GB, KB, MS

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)
SITES = ((US_EAST, "aws"), (US_WEST, "aws"), (EU_WEST, "aws"),
         (ASIA_EAST, "aws"), (US_EAST, "gcp"), (US_WEST, "gcp"))
PROVIDERS = {US_EAST: ("aws", "gcp"), US_WEST: ("aws", "gcp"),
             EU_WEST: ("aws",), ASIA_EAST: ("aws",)}


def part1_optimizer() -> None:
    print("=== Part 1: pricing redundancy schemes (Table 4 price book) ===")
    topo = Topology()
    site_region = {f"{r}+{p}": r for r, p in SITES}

    def rtt(a, b):
        ra, rb = site_region[a], site_region[b]
        if ra == rb:
            return 0.0 if a == b else 2 * topo.cross_provider_same_region
        return topo.rtt(ra, "aws", rb, "aws")

    spec = RedundancySpec(durability_floor=2,
                          candidates=((1, 2), (2, 2), (4, 2)))
    opt = RedundancyOptimizer(spec, tuple(site_region), rtt, tier="s3")

    profiles = {
        "hot thumbnails (1M reads/mo, 64 KB)":
            dict(size=64 * KB, reads_per_month=1_000_000,
                 writes_per_month=1000, reader_region=f"{US_EAST}+aws"),
        "cold originals (1 read/mo, 1 GB)":
            dict(size=1 * GB, reads_per_month=1, writes_per_month=1,
                 reader_region=f"{US_EAST}+aws"),
    }
    for label, profile in profiles.items():
        plan = opt.choose(**profile)
        chosen = plan.chosen
        kind = "replication" if plan.is_replication else "erasure coding"
        print(f"\n{label}:")
        print(f"  chose EC({chosen.k},{chosen.m}) [{kind}] "
              f"-> ${chosen.total_dollars:.4f}/month "
              f"(storage ${chosen.storage_dollars:.4f}, "
              f"egress ${chosen.egress_dollars:.4f})")
        for other in plan.rejected:
            print(f"  rejected EC({other.k},{other.m}): "
                  f"${other.total_dollars:.4f}/month, "
                  f"read p~{other.read_latency * 1000:.0f} ms")

    hot = opt.evaluate(1, 2, 1 * GB, 1, 1, f"{US_EAST}+aws")
    cold = opt.evaluate(4, 2, 1 * GB, 1, 1, f"{US_EAST}+aws")
    print(f"\nconverting 1 GB of cold data from 3x replication to "
          f"EC(4,2) saves ${hot.storage_dollars - cold.storage_dollars:.4f}"
          f"/month in storage ({hot.overhead:.1f}x -> "
          f"{cold.overhead:.1f}x overhead) at the same durability\n")


def part2_live_split() -> None:
    print("=== Part 2: per-prefix schemes on a live deployment ===")
    dep = build_deployment(list(REGIONS), providers=PROVIDERS, seed=42)
    spec = GlobalPolicySpec(
        name="photos",
        placements=tuple(
            RegionPlacement(region, disk_only_policy(profile="s3"),
                            provider=provider)
            for region, provider in SITES),
        consistency="eventual",
        # hot/ stays 3x-replicated; everything else (cold/) is EC(4,2)
        redundancy=RedundancySpec(k=4, m=2, repair_interval=5.0,
                                  overrides=(("hot/", 1, 2),)))
    instances = dep.start_wiera_instance("photos", spec)
    client = dep.add_client(US_EAST, instances=instances)

    def upload():
        for i in range(8):
            yield from client.put(f"hot/thumb-{i}", b"\x89" * (4 * KB))
            yield from client.put(f"cold/orig-{i}", b"\xff" * (256 * KB))
    dep.drive(upload())

    tim = dep.tim("photos")
    stored = sum(backend.used_bytes
                 for rec in tim.instances.values()
                 for backend in rec.instance.tiers.values())
    logical = 8 * (4 + 256) * KB
    print(f"logical bytes {logical // KB} KB -> stored "
          f"{stored // KB} KB ({stored / logical:.2f}x; pure 3x "
          "replication would be 3.00x)")

    coordinator = dep.instance("photos", US_EAST)
    for key in ("hot/thumb-0", "cold/orig-0"):
        data, _, _ = dep.drive(coordinator.read_version(key,
                                                        run_rules=False))
        manifest = decode_manifest(data)
        print(f"  {key}: EC({manifest['k']},{manifest['m']}), fragments "
              f"on {len(manifest['frags'])} sites")

    # crash a cold-fragment holder; the read reconstructs from parity
    manifest = decode_manifest(dep.drive(
        coordinator.read_version("cold/orig-0", run_rules=False))[0])
    victim = tim.instances[manifest["frags"][1]].instance.host
    faults = dep.fault_schedule("demo")
    faults.crash(at=dep.sim.now + 0.1, host=victim.name, duration=30.0)
    faults.start()
    dep.sim.run(until=dep.sim.now + 0.5)

    def degraded_read():
        t0 = dep.sim.now
        res = yield from client.get("cold/orig-0")
        return res, dep.sim.now - t0
    res, elapsed = dep.drive(degraded_read())
    assert res["data"] == b"\xff" * (256 * KB)
    print(f"\n{victim.name} crashed; degraded read of cold/orig-0 "
          f"reconstructed {len(res['data']) // KB} KB from parity in "
          f"{elapsed / MS:.0f} ms (degraded={res['degraded']})")

    dep.sim.run(until=dep.sim.now + 60.0)  # host returns, repairer heals
    rebuilt = dep.metric_total("ec.fragments_rebuilt")
    print(f"after recovery the background repairer rebuilt "
          f"{rebuilt:.0f} fragments; full n=6 redundancy restored")


if __name__ == "__main__":
    part1_optimizer()
    part2_live_split()
