#!/usr/bin/env python
"""Unmodified application on Wiera: a database on remote memory (§5.4).

The paper's flagship demo: MySQL (here, the mini page-based engine in
``repro.db``) runs unmodified on an Azure VM, but its database file lives
behind Wiera's FUSE-substitute POSIX layer.  Reads are served from a
memory tier in a *nearby AWS data center* instead of the throttled local
Azure disk (500 IOPS cap) — data locality considered irrelevant, in
action.

We run a RUBiS-like auction workload against both storage settings on a
Standard_D2 VM and compare throughput, reproducing the Fig. 12 effect.

Run:  python examples/remote_memory_database.py
"""

import numpy as np

from repro import GlobalPolicySpec, RegionPlacement, build_deployment
from repro.bench.harness import preload_object
from repro.core.client import WieraClient
from repro.db import MiniDB
from repro.fs import TierBlockFile, WieraBlockFile, WieraFS
from repro.fs.posixfs import block_object_key
from repro.net import US_EAST
from repro.net.vmprofiles import get_profile
from repro.sim import Simulator
from repro.net.network import Network
from repro.storage import make_tier
from repro.tiera.policy import disk_only_policy, memory_only_policy
from repro.util.units import GB, KB, MB
from repro.workloads.rubis import RubisApp, RubisBenchmark

VM = "azure.standard_d2"
BLOCK = 16 * KB
NBLOCKS = 16384


def run_on_local_disk() -> float:
    sim = Simulator()
    Network(sim)
    backend = make_tier(sim, "azure_disk", 64 * GB, name="local",
                        rng=np.random.default_rng(1))
    device = TierBlockFile(backend, "rubis.db", NBLOCKS, BLOCK)
    device.prepare()
    db = MiniDB(sim, device, buffer_pool_bytes=16 * MB)
    app = RubisApp(sim, db, get_profile(VM), np.random.default_rng(2))
    bench = RubisBenchmark(sim, app, clients=300, think_time=1.2,
                           duration=60, ramp_up=20, ramp_down=10,
                           rng=np.random.default_rng(3))
    proc = sim.process(bench.run())
    sim.run(until=proc)
    return bench.throughput


def run_on_wiera_remote_memory() -> float:
    dep = build_deployment([US_EAST], providers={US_EAST: ("azure", "aws")},
                           seed=4)
    azure = dep.server(US_EAST, "azure")
    azure.host.vm = get_profile(VM)
    azure.host.egress.rate = azure.host.vm.network_bw

    spec = GlobalPolicySpec(
        name="rubis",
        placements=(
            RegionPlacement(US_EAST, disk_only_policy(size="64G"),
                            provider="azure", primary=True),
            RegionPlacement(US_EAST, memory_only_policy(size="2G"),
                            provider="aws")),
        consistency="primary_backup", sync_replication=True)
    instances = dep.start_wiera_instance("rubis", spec)
    tim = dep.tim("rubis")
    aws_id = next(iid for iid, rec in tim.instances.items()
                  if rec.provider == "aws")
    tim.protocol.config.get_from = aws_id  # reads go to AWS memory

    client = WieraClient(dep.sim, dep.network, azure.host, name="mysql")
    client.attach(instances)
    fs = WieraFS(client, block_size=BLOCK)
    handle = fs.open("/rubis.db")
    fs._sizes["/rubis.db"] = NBLOCKS * BLOCK
    payload = b"\0" * BLOCK
    targets = [rec.instance for rec in tim.instances.values()]
    for i in range(NBLOCKS):
        preload_object(targets, block_object_key("/rubis.db", i), payload)

    db = MiniDB(dep.sim, WieraBlockFile(handle, NBLOCKS),
                buffer_pool_bytes=16 * MB)
    app = RubisApp(dep.sim, db, azure.host.vm, np.random.default_rng(2))
    bench = RubisBenchmark(dep.sim, app, clients=300, think_time=1.2,
                           duration=60, ramp_up=20, ramp_down=10,
                           rng=np.random.default_rng(3))
    dep.drive(bench.run())
    return bench.throughput


def main() -> None:
    print(f"RUBiS on {VM}: 300 clients, database on two storage settings\n")
    local = run_on_local_disk()
    print(f"local Azure disk (O_DIRECT, 500 IOPS cap): "
          f"{local:7.1f} requests/s")
    remote = run_on_wiera_remote_memory()
    print(f"AWS remote memory through Wiera (POSIX):   "
          f"{remote:7.1f} requests/s")
    print(f"\nimprovement: {(remote / local - 1) * 100:+.0f}%  "
          f"(the paper reports 50-80% on Standard D2/D3)")
    print("the application issued only file reads/writes — zero Wiera-"
          "specific code.")


if __name__ == "__main__":
    main()
