#!/usr/bin/env python
"""Authoring your own policies in the Wiera notation.

The paper's claim is that a "rich array of policies" can be expressed in a
concise event-response notation.  This example writes two policies from
scratch — a compressing, archival-backed local instance and a
primary-backup global policy over it — compiles them, launches the Wiera
instance, and shows the mechanisms (write-through copy, fill-triggered
backup with a bandwidth cap, compression, forwarding) all firing.

Run:  python examples/custom_policy_dsl.py
"""

from repro import build_deployment
from repro.net import US_EAST, US_WEST
from repro.policydsl import compile_policy, parse_policy
from repro.util.units import KB, MS

LOCAL_POLICY = """
Tiera CompressingArchive(time flush) {
    % a small hot cache, a durable tier, and an archival backstop
    tier1: {name: Memcached, size: 64M};
    tier2: {name: EBS, size: 256K};
    tier3: {name: S3, size: 10G};

    % hot writes land in memory, marked dirty
    event(insert.into) : response {
        insert.object.dirty = true;
        store(what: insert.object, to: tier1);
    }

    % write-back: flush dirty objects to EBS every `flush` seconds
    event(time = flush) : response {
        copy(what: object.location == tier1 && object.dirty == true,
             to: tier2);
    }

    % when EBS passes 60%, compress and back up to S3, politely
    event(tier2.filled == 60%) : response {
        compress(what: object.location == tier2);
        copy(what: object.location == tier2, to: tier3,
             bandwidth: 200KB/s);
    }
}
"""

GLOBAL_POLICY = """
Wiera EditorialStore() {
    Region1 = {name: CompressingArchive, region: US-East, primary: True};
    Region2 = {name: CompressingArchive, region: US-West};

    event(insert.into) : response {
        if (local_instance.isPrimary == True) {
            store(what: insert.object, to: local_instance);
            copy(what: insert.object, to: all_regions);
        } else
            forward(what: insert.object, to: primary_instance);
    }
}
"""


def main() -> None:
    # parse + inspect ------------------------------------------------------
    doc = parse_policy(LOCAL_POLICY)
    print(f"parsed Tiera policy {doc.name!r}: "
          f"{len(doc.tiers)} tiers, {len(doc.rules)} rules")
    local = compile_policy(LOCAL_POLICY, params={"flush": 5.0})
    global_spec = compile_policy(GLOBAL_POLICY,
                                 env={"CompressingArchive": local})
    print(f"compiled Wiera policy {global_spec.name!r}: "
          f"consistency={global_spec.consistency} "
          f"(inferred from the event-response rules)\n")

    # launch & exercise ------------------------------------------------------
    dep = build_deployment([US_EAST, US_WEST], seed=11)
    instances = dep.start_wiera_instance("editorial", global_spec)
    client = dep.add_client(US_WEST, instances=instances, name="editor")

    def app():
        # the client is in US West, so every put is forwarded to the
        # US East primary (one RTT), then replicated back synchronously.
        article = b"lorem ipsum dolor sit amet " * 512  # ~13 KB, compressible
        for i in range(12):
            result = yield from client.put(f"article-{i}", article)
        print(f"12 articles stored; last put took "
              f"{result['latency'] / MS:.1f} ms "
              f"(forward to primary + sync copy back)")
        got = yield from client.get("article-0")
        print(f"read back article-0: {len(got['data'])} bytes intact")
    dep.drive(app())

    # let the write-back timer and fill-triggered backup do their thing
    dep.sim.run(until=dep.sim.now + 120.0)

    print("\nprimary instance tier state:")
    primary = dep.instance("editorial", US_EAST)
    for name, tier in primary.tiers.items():
        print(f"  {name}: {len(tier)} objects, {tier.used_bytes / KB:.0f} KB "
              f"({tier.profile.name})")
    record = primary.meta.get_record("article-0")
    meta = record.latest()
    print(f"\narticle-0 locations: {sorted(meta.locations)}, "
          f"encodings: {meta.encodings or '(none yet)'}")
    if meta.encodings:
        print(f"  compressed on tier: {meta.stored_size} of {meta.size} "
              f"bytes ({100 * meta.stored_size / meta.size:.0f}%)")


if __name__ == "__main__":
    main()
