#!/usr/bin/env python
"""Quickstart: launch a geo-distributed Wiera instance and use it.

Walks through the full lifecycle from §4.1 of the paper:

1. stand up a simulated multi-region testbed (Wiera + Zookeeper in US
   East, one Tiera server per region),
2. start a Wiera instance from the *DSL text* of the MultiPrimaries
   policy (Figure 3(a)),
3. connect a client to its closest instance and exercise the Table 2
   object-versioning API,
4. inspect where the bytes ended up on each region's tiers.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace   # also dump a Chrome trace

With ``--trace`` the run records every RPC hop, network transmit and
storage access as spans and writes ``results/quickstart_trace.json``,
loadable in chrome://tracing or https://ui.perfetto.dev.
"""

import sys

from repro import build_deployment
from repro.bench.reporting import dump_observability
from repro.net import EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS


def main(trace: bool = False) -> None:
    # 1. the testbed ------------------------------------------------------
    dep = build_deployment([US_WEST, US_EAST, EU_WEST], seed=42,
                           with_tracing=trace)

    # 2. a global policy, straight from the paper's Figure 3(a) -----------
    spec = builtin_policy("MultiPrimariesConsistency")
    print(f"policy {spec.name!r}: consistency={spec.consistency}, "
          f"regions={spec.regions()}")
    instances = dep.start_wiera_instance("quickstart", spec)
    print(f"launched {len(instances)} Tiera instances:")
    for info in instances:
        print(f"  {info['instance_id']:30s} @ {info['region']}")

    # 3. a client in US West ----------------------------------------------
    client = dep.add_client(US_WEST, instances=instances, name="app")
    print(f"client connects to closest instance: "
          f"{client.closest['instance_id']}")

    def app():
        # puts are strongly consistent: global lock + sync broadcast
        result = yield from client.put("greeting", b"hello, wide area!")
        print(f"put v{result['version']} acknowledged in "
              f"{result['latency'] / MS:.1f} ms "
              f"(lock + broadcast to {len(instances) - 1} replicas)")

        # overwrites create new versions (§3.2.1)
        yield from client.put("greeting", b"hello again")
        versions = yield from client.get_version_list("greeting")
        print(f"versions of 'greeting': {versions}")

        old = yield from client.get_version("greeting", 1)
        latest = yield from client.get("greeting")
        print(f"v1 = {old['data']!r}")
        print(f"latest (v{latest['version']}) = {latest['data']!r}, "
              f"read in {latest['latency'] / MS:.2f} ms from the local "
              f"replica")
    dep.drive(app())

    # 4. where did the bytes go? -------------------------------------------
    print("\nreplica state:")
    for region in (US_WEST, US_EAST, EU_WEST):
        instance = dep.instance("quickstart", region)
        record = instance.meta.get_record("greeting")
        meta = record.latest()
        print(f"  {region:10s} latest=v{record.latest_version} "
              f"locations={sorted(meta.locations)}")

    if trace:
        written = dump_observability(dep.obs, "results", stem="quickstart")
        print("\nobservability dumped:")
        for path in written:
            print(f"  {path}")


if __name__ == "__main__":
    main(trace="--trace" in sys.argv[1:])
