#!/usr/bin/env python
"""Elastic autoscaler riding a flash crowd (repro.autoscale).

A two-region deployment starts at ONE shard with an autoscaler attached.
Thirty seconds in, US-East spikes 4x — about 1,200 ops/s of 64 KB reads,
three times what one Tiera host's egress link can carry.  The controller
watches offered rate, shed load, queue depth, and per-host egress
utilization every 5 sim-seconds and works the shard lever through the
live rebalancer: the timeline below shows it scaling 1 -> 4 shards as
the crowd hits (shed load is treated as an emergency, so it jumps
straight to the ceiling), absorbing the peak, then retiring shards one
cooldown at a time once the crowd passes.  The full decision audit —
every hold, skip, and action, with the signals that drove it — prints
at the end.

Run:  PYTHONPATH=src python examples/autoscale.py
"""

from repro.bench.harness import build_deployment
from repro.bench.openloop import preload_records, scaleout_workload
from repro.core import AutoscaleSpec, GlobalPolicySpec, RegionPlacement
from repro.load.arrivals import flash_crowd_rate
from repro.load.cohort import CohortSpec
from repro.net.topology import US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy

REGIONS = (US_EAST, US_WEST)
BASE_RATE = 300.0          # ops/s per region, steady
CROWD_MULTIPLIER = 4.0     # US-East spike: ~3x one host's egress


def main() -> None:
    aspec = AutoscaleSpec(target_per_shard=800.0, decision_interval=5.0,
                          cooldown=5.0, scale_down_windows=2,
                          min_shards=1, max_shards=4)
    dep = build_deployment(list(REGIONS), seed=11, shards=1,
                           servers_per_region=4, autoscale=aspec)
    spec = GlobalPolicySpec(
        name="crowd",
        placements=tuple(RegionPlacement(r, memory_only_policy())
                         for r in REGIONS),
        consistency="eventual")
    handle = dep.start_sharded_instance("crowd", spec)
    workload = scaleout_workload(record_count=100, value_size=65536)
    preload_records(dep, handle, workload)
    scaler = dep.autoscalers["crowd"]

    for region in REGIONS:
        rate_fn, peak = flash_crowd_rate(
            BASE_RATE, CROWD_MULTIPLIER if region == REGIONS[0] else 1.0,
            at=30.0, rise=10.0, hold=60.0, fall=20.0)
        dep.add_cohort(
            CohortSpec(name=f"fc-{region}", region=region,
                       users=int(BASE_RATE * 10), rate_per_user=0.1,
                       workload=workload, rate_fn=rate_fn, peak_rate=peak,
                       max_in_flight=64, queue_limit=256),
            sharded=handle)

    print(f"flash crowd: {CROWD_MULTIPLIER:.0f}x in {REGIONS[0]} at t=30s, "
          f"autoscaler 1..{aspec.max_shards} shards\n")
    print(f"{'t (s)':>6} {'offered/s':>10} {'achieved/s':>11} "
          f"{'shed':>6} {'queued':>7} {'shards':>7}")
    dep.load.start()
    window = 10.0
    last = {"offered": 0, "achieved": 0, "shed": 0}
    for _ in range(17):
        dep.sim.run(until=dep.sim.now + window)
        totals = {
            "offered": sum(c.stats.offered for c in dep.load),
            "achieved": sum(c.stats.achieved for c in dep.load),
            "shed": sum(c.stats.shed for c in dep.load),
        }
        queued = sum(c.queued for c in dep.load)
        print(f"{dep.sim.now:>6.0f} "
              f"{(totals['offered'] - last['offered']) / window:>10.0f} "
              f"{(totals['achieved'] - last['achieved']) / window:>11.0f} "
              f"{totals['shed'] - last['shed']:>6} {queued:>7} "
              f"{scaler.shards:>7}")
        last = totals
    dep.load.stop()
    scaler.stop()
    report = dep.load.report()

    print(f"\noffered {report['offered']:,} ops; achieved "
          f"{report['achieved']:,}; shed {report['shed']:,}; "
          f"peak {max(d.shards for d in scaler.decisions)} shards, "
          f"final {scaler.shards}")
    print("\ndecision audit (holds elided):")
    for d in scaler.decisions:
        if d.action == "hold":
            continue
        print(f"  t={d.time:6.1f}  {d.action:<12} {d.shards} -> "
              f"{d.desired}  rate={d.offered_rate:6.0f}/s "
              f"shed={d.shed:<4} egress={d.egress_utilization:.2f}  "
              f"({d.reason})")


if __name__ == "__main__":
    main()
