#!/usr/bin/env python
"""Open-loop flash crowd against a sharded deployment (repro.load).

A two-region, 4-shard deployment (one Tiera host per shard per region)
serves 100,000 modeled users per region — two cohort processes, not
200,000 — at a steady offered rate.  Sixty seconds in, the US-East crowd
spikes 8x for a minute (Anna's flash-crowd shape).  The open-loop engine
keeps offering load at the configured rate whether or not the store
keeps up, so the printed timeline shows what a closed-loop driver never
can: achieved throughput hitting the capacity ceiling, queueing delay
growing, and excess arrivals being shed until the spike passes.

Run:  PYTHONPATH=src python examples/load_scenario.py
      PYTHONPATH=src python examples/load_scenario.py --scenario diurnal
"""

import argparse

from repro.bench.openloop import build_scaleout_deployment, scaleout_workload
from repro.load import SCENARIOS
from repro.net.topology import US_EAST, US_WEST

REGIONS = (US_EAST, US_WEST)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="flash_crowd",
                        choices=sorted(SCENARIOS),
                        help="named scenario from the repro.load library")
    args = parser.parse_args()

    workload = scaleout_workload(record_count=200, value_size=65536)
    dep, handle, workload = build_scaleout_deployment(
        shards=4, seed=42, regions=REGIONS, workload=workload)

    build = SCENARIOS[args.scenario]
    scenario = build(REGIONS, users_per_region=100_000,
                     rate_per_user=0.004,      # 400 ops/s per region steady
                     workload=workload, max_in_flight=256, queue_limit=1024)
    dep.add_scenario(scenario, sharded=handle)
    print(f"scenario: {scenario.name} — {scenario.notes}")
    print(f"{dep.load.modeled_users:,} modeled users in "
          f"{len(dep.load)} cohort processes\n")

    print(f"{'t (s)':>6} {'offered/s':>10} {'achieved/s':>11} "
          f"{'shed':>7} {'queued':>7} {'in-flight':>9}")
    dep.load.start()
    window = 10.0
    last = {"offered": 0, "achieved": 0, "shed": 0}
    for step in range(16):
        dep.sim.run(until=dep.sim.now + window)
        totals = {
            "offered": sum(c.stats.offered for c in dep.load),
            "achieved": sum(c.stats.achieved for c in dep.load),
            "shed": sum(c.stats.shed for c in dep.load),
        }
        queued = sum(c.queued for c in dep.load)
        in_flight = sum(c.in_flight for c in dep.load)
        print(f"{dep.sim.now:>6.0f} "
              f"{(totals['offered'] - last['offered']) / window:>10.0f} "
              f"{(totals['achieved'] - last['achieved']) / window:>11.0f} "
              f"{totals['shed'] - last['shed']:>7} {queued:>7} "
              f"{in_flight:>9}")
        last = totals
    dep.load.stop()
    report = dep.load.report()

    print(f"\noffered {report['offered']:,} ops at "
          f"{report['offered_rate']:.0f}/s; achieved "
          f"{report['achieved']:,} ({report['achieved_rate']:.0f}/s); "
          f"shed {report['shed']:,}; errors {report['errors_by_type'] or 0}")
    for cohort in report["per_cohort"]:
        latency = cohort["latency"]["get"]
        delay = cohort["queue_delay"]
        print(f"  {cohort['cohort']:>22}: get p50 "
              f"{latency['p50'] * 1000:6.1f} ms  p95 "
              f"{latency['p95'] * 1000:7.1f} ms  queue-delay p95 "
              f"{delay['p95'] * 1000:7.1f} ms  peak queue "
              f"{cohort['peak_queue']}")


if __name__ == "__main__":
    main()
