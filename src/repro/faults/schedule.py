"""Deterministic fault injection: scripted crashes, partitions, delays.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` entries applied
at scripted sim times by one background process, so a chaos run is exactly
reproducible: the same schedule against the same seed produces the same
event sequence, and an *empty* schedule leaves the simulation bit-identical
to one with no schedule at all (the injector process consumes no sim time).

Targets:

* hosts (by :class:`~repro.net.network.Host`, ``TieraServer``, or name) —
  ``crash``/``restart``.  Crashing a Tiera server wipes its instances'
  volatile tiers, exactly like :meth:`TieraServer.crash`.
* region pairs — ``partition``/``heal`` and latency spikes, mapping onto
  the :class:`~repro.net.network.Network` dynamics hooks the Fig. 7
  experiment already uses.

Every applied event increments the ``faults.injected{kind=...}`` counter in
the shared metrics registry and is appended to :attr:`FaultSchedule.applied`
for assertions and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.obs.api import get_obs
from repro.sim.kernel import Interrupt, Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: what happens, to whom, when, for how long."""

    at: float
    kind: str                    # crash|restart|partition|heal|delay
    target: tuple                # (host,) or (region_a, region_b)
    duration: Optional[float] = None
    extra: float = 0.0           # injected latency for kind == "delay"


class FaultSchedule:
    """Scripted, deterministic fault injection for one simulation."""

    def __init__(self, sim: Simulator, network, servers=(), name: str = "faults"):
        self.sim = sim
        self.network = network
        self.name = name
        # host-name -> TieraServer, so crashing a server host also wipes
        # volatile tiers and stops instance background work.
        self._servers = {server.host.name: server for server in servers}
        self.events: list[FaultEvent] = []
        self.applied: list[tuple[float, str, tuple]] = []
        self._proc = None
        self._metrics = get_obs(sim).metrics

    # -- schedule construction ------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("cannot extend a schedule that is running")
        self.events.append(event)
        return self

    def crash(self, at: float, host,
              duration: Optional[float] = None) -> "FaultSchedule":
        """Kill ``host`` at ``at``; restart it after ``duration`` if given."""
        name = self._host_name(host)
        self.add(FaultEvent(at=at, kind="crash", target=(name,)))
        if duration is not None:
            self.add(FaultEvent(at=at + duration, kind="restart",
                                target=(name,)))
        return self

    def restart(self, at: float, host) -> "FaultSchedule":
        return self.add(FaultEvent(at=at, kind="restart",
                                   target=(self._host_name(host),)))

    def partition(self, at: float, region_a: str, region_b: str,
                  duration: Optional[float] = None) -> "FaultSchedule":
        """Cut connectivity between two regions; heal after ``duration``."""
        self.add(FaultEvent(at=at, kind="partition",
                            target=(region_a, region_b), duration=duration))
        if duration is not None:
            self.add(FaultEvent(at=at + duration, kind="heal",
                                target=(region_a, region_b)))
        return self

    def heal(self, at: float, region_a: str, region_b: str) -> "FaultSchedule":
        return self.add(FaultEvent(at=at, kind="heal",
                                   target=(region_a, region_b)))

    def latency_spike(self, at: float, extra: float, host=None,
                      regions: Optional[tuple[str, str]] = None,
                      duration: float = float("inf")) -> "FaultSchedule":
        """Add ``extra`` seconds to messages touching a host or region pair."""
        if (host is None) == (regions is None):
            raise ValueError("latency_spike needs exactly one of host/regions")
        target = (self._host_name(host),) if host is not None else tuple(regions)
        return self.add(FaultEvent(at=at, kind="delay", target=target,
                                   duration=duration, extra=extra))

    def _host_name(self, host) -> str:
        name = getattr(getattr(host, "host", host), "name", host)
        if not isinstance(name, str):
            raise TypeError(f"cannot resolve host target {host!r}")
        return name

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "FaultSchedule":
        """Launch the injector process (idempotent)."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.sim.process(self._run(),
                                          name=f"faults:{self.name}")
        return self

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("fault schedule stopped")
        self._proc = None

    @property
    def active(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    # -- execution ------------------------------------------------------------
    def _run(self) -> Generator:
        # Stable order: scripted time first, insertion order as tie-break.
        ordered = sorted(enumerate(self.events),
                         key=lambda pair: (pair[1].at, pair[0]))
        try:
            for _, event in ordered:
                if event.at > self.sim.now:
                    yield self.sim.timeout(event.at - self.sim.now)
                self._apply(event)
        except Interrupt:
            return

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "crash":
            self._crash_target(event.target[0])
        elif kind == "restart":
            self._restart_target(event.target[0])
        elif kind == "partition":
            self.network.partition(*event.target,
                                   duration=(event.duration
                                             if event.duration is not None
                                             else float("inf")))
        elif kind == "heal":
            self.network.heal_partition(*event.target)
        elif kind == "delay":
            if len(event.target) == 1:
                self.network.inject_host_delay(
                    event.target[0], event.extra,
                    duration=event.duration or float("inf"))
            else:
                self.network.inject_pair_delay(
                    *event.target, event.extra,
                    duration=event.duration or float("inf"))
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        self._metrics.counter("faults.injected", kind=kind).inc()
        self.applied.append((self.sim.now, kind, event.target))

    def _crash_target(self, name: str) -> None:
        server = self._servers.get(name)
        if server is not None:
            server.crash()
        else:
            self.network.host(name).crash()

    def _restart_target(self, name: str) -> None:
        server = self._servers.get(name)
        if server is not None:
            server.recover()
        else:
            self.network.host(name).recover()
