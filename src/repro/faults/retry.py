"""Retry policy: capped exponential backoff with deterministic jitter.

Every replication/forwarding path that talks across the WAN retries
transient failures under one of these policies.  Jitter draws come from a
named :class:`~repro.util.rng.RngRegistry` stream, so retry timing is part
of the deterministic simulation — two runs with the same seed back off at
exactly the same instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.net.network import NetworkError
from repro.obs.api import get_obs
from repro.sim.kernel import Simulator
from repro.sim.rpc import RpcError, call_with_timeout

#: exceptions that indicate a transient transport problem worth retrying
TRANSIENT_ERRORS = (NetworkError, TimeoutError, RpcError)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * multiplier**attempt``.

    ``max_attempts`` counts total tries (first try included); a policy with
    ``max_attempts=1`` never retries.  ``jitter`` spreads each delay
    uniformly within ``+/- jitter`` of its nominal value when an rng stream
    is supplied, breaking retry synchronization between replicas without
    breaking reproducibility.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


#: no retries at all — useful to switch a path back to fail-fast
NO_RETRY = RetryPolicy(max_attempts=1, jitter=0.0)


def call_with_retries(sim: Simulator, make_call: Callable,
                      policy: RetryPolicy, rng=None,
                      retry_on: tuple = TRANSIENT_ERRORS,
                      timeout: Optional[float] = None,
                      label: str = "rpc") -> Generator:
    """Issue ``make_call()`` up to ``policy.max_attempts`` times.

    ``make_call`` must build a *fresh* call each attempt (a Process cannot
    be re-yielded), which also lets callers re-resolve a moving target —
    e.g. the current primary — between attempts.  Retries are recorded in
    the ``retry.attempts`` metric; the last transient error is re-raised
    once attempts are exhausted.
    """
    retries = get_obs(sim).metrics.counter("retry.attempts", path=label)
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if attempt:
            yield sim.timeout(policy.backoff(attempt - 1, rng))
            retries.inc()
        call = make_call()
        try:
            if timeout is not None:
                result = yield from call_with_timeout(sim, call, timeout)
            else:
                result = yield call
            return result
        except retry_on as exc:
            last_error = exc
    raise last_error
