"""Fault injection and retry policies (``repro.faults``).

The chaos toolkit behind the dynamism claims: a deterministic
:class:`FaultSchedule` scripts host crashes, WAN partitions, and latency
spikes into a simulation, while :class:`RetryPolicy` +
:func:`call_with_retries` give every replication path capped, jittered
exponential backoff.  See DESIGN.md "Failure handling & fault injection".
"""

from repro.faults.retry import (
    NO_RETRY,
    TRANSIENT_ERRORS,
    RetryPolicy,
    call_with_retries,
)
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "NO_RETRY",
    "TRANSIENT_ERRORS",
    "call_with_retries",
]
