"""Synchronization and queueing primitives built on the kernel.

These mirror the small set of constructs the Wiera implementation needs:
FIFO message queues between components (:class:`Store`), counted resources
for device/service concurrency limits (:class:`Resource`), mutual exclusion
(:class:`SimLock`) and open/close request gates used while a consistency
switch drains in-flight operations (:class:`Gate`).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.kernel import Event, SimulationError, Simulator


class Store:
    """An unbounded (or capacity-bounded) FIFO of Python objects.

    ``put`` succeeds immediately unless the store is full, in which case the
    put event is queued until space frees up.  ``get`` returns an event that
    fires when an item is available.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if len(self.items) < self.capacity:
            self._deposit(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _deposit(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def _admit_waiting_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self._deposit(item)
            event.succeed(item)


class Resource:
    """A counted resource with FIFO waiters (like a semaphore).

    ``request()`` returns an event that fires once a slot is granted; the
    holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self.in_use -= 1


class SimLock(Resource):
    """Mutual exclusion: a Resource with capacity 1 and lock terminology."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)

    def acquire(self) -> Event:
        return self.request()

    @property
    def locked(self) -> bool:
        return self.in_use > 0


class Gate:
    """An open/closed barrier.

    While open, ``wait()`` completes immediately.  While closed, waiters
    queue and are all released when the gate reopens.  Wiera closes the gate
    in front of an instance while a consistency-model change drains queued
    updates, exactly as described in §3.3.2 of the paper.
    """

    def __init__(self, sim: Simulator, open_: bool = True):
        self.sim = sim
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        event = Event(self.sim)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def close(self) -> None:
        self._open = False

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
