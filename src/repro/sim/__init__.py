"""Deterministic discrete-event simulation kernel.

A small SimPy-like engine: processes are Python generators that yield
events (timeouts, other processes, resource requests, ...) and are resumed
when those events fire.  Time is a float in **seconds**.  Determinism comes
from a single-threaded event loop with FIFO tie-breaking by insertion
sequence number.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.primitives import Gate, Resource, SimLock, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
    "Store",
    "Resource",
    "SimLock",
    "Gate",
]
