"""Message-passing RPC over the simulated network (the Thrift substitute).

Every Wiera component (Wiera service, Tiera servers, Tiera instances, the
lock service, clients) is an :class:`RpcNode` bound to a simulated host.
Handlers are generator functions executed *at the destination*, so their
yields (storage accesses, nested RPCs) consume destination-side time, just
as a Thrift service method would.

A call is itself a process event: callers ``yield node.call(...)`` and
receive the handler's return value, or have the remote exception (or a
:class:`~repro.net.network.NetworkError`) raised into them — which is what
client failover logic catches.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.net.network import Host, Network
from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN, TraceContext
from repro.sim.kernel import Process, Simulator


class RpcError(RuntimeError):
    """Application-level RPC failure."""


class NoSuchMethodError(RpcError):
    """The destination node has no handler registered for the method."""


#: reserved wire method for batched calls; dispatched natively by RpcNode
BATCH_METHOD = "__batch__"


@dataclass(slots=True)
class Message:
    """One request as seen by a handler."""

    src: str
    dst: str
    method: str
    args: dict[str, Any] = field(default_factory=dict)
    size: int = 256
    sent_at: float = 0.0
    #: trace context of the sending span (None while tracing is disabled)
    trace: Optional[TraceContext] = None


class RpcNode:
    """A network endpoint with named generator handlers."""

    #: default request/response envelope size in bytes (headers + small args)
    ENVELOPE = 256

    def __init__(self, sim: Simulator, network: Network, host: Host,
                 name: Optional[str] = None):
        self.sim = sim
        self.network = network
        self.host = host
        self.name = name or host.name
        # Address book for the parallel bridge (latest registration wins,
        # matching how rebalance replaces an instance's node).
        network.nodes[self.name] = self
        self._handlers: dict[str, Callable[[Message], Generator]] = {}
        self._obs = get_obs(sim)
        self._served = self._obs.metrics.counter("rpc.requests_served",
                                                 node=self.name)
        self._dropped = self._obs.metrics.counter("rpc.dropped_oneways",
                                                  node=self.name)

    @property
    def requests_served(self) -> int:
        """Requests dispatched here (backed by the shared MetricsRegistry)."""
        return self._served.value

    @property
    def dropped_oneways(self) -> int:
        return self._dropped.value

    # -- registration -----------------------------------------------------
    def register(self, method: str,
                 handler: Callable[[Message], Generator]) -> None:
        if not inspect.isgeneratorfunction(handler):
            raise TypeError(
                f"handler for {method!r} must be a generator function")
        self._handlers[method] = handler

    def register_service(self, service: object, prefix: str = "") -> None:
        """Register every ``rpc_``-prefixed generator method of ``service``."""
        for attr in dir(service):
            if attr.startswith("rpc_"):
                fn = getattr(service, attr)
                if inspect.isgeneratorfunction(fn):
                    self.register(prefix + attr[len("rpc_"):], fn)

    # -- outgoing calls -----------------------------------------------------
    def call(self, dst: "RpcNode", method: str,
             args: Optional[dict[str, Any]] = None,
             size: Optional[int] = None,
             reply_size: Optional[int] = None) -> Process:
        """Invoke ``method`` on ``dst``; returns a process/event to yield on."""
        # The caller's trace context must be captured here, in the calling
        # process's frame — the generator below runs as a new process.
        tracer = self._obs.tracer
        parent = tracer.current() if tracer.enabled else None
        return self.sim.process(
            self._call(dst, method, args or {}, size, reply_size, parent),
            name=f"rpc:{self.name}->{dst.name}:{method}")

    def _call(self, dst: "RpcNode", method: str, args: dict[str, Any],
              size: Optional[int], reply_size: Optional[int],
              parent: Optional[TraceContext] = None) -> Generator:
        tracer = self._obs.tracer
        span = (tracer.span(f"rpc:{method}", cat="rpc", component=self.name,
                            parent=parent, dst=dst.name)
                if tracer.enabled else NULL_SPAN)
        with span:
            msg = Message(src=self.name, dst=dst.name, method=method,
                          args=args,
                          size=size if size is not None else self.ENVELOPE,
                          sent_at=self.sim.now, trace=span.context)
            bridge = self.network.bridge
            if bridge is not None and not bridge.local(self.host, dst.host):
                result = yield from bridge.outbound_call(self, dst, msg,
                                                         reply_size)
                return result
            yield from self.network.transmit(self.host, dst.host, msg.size)
            result = yield from dst._dispatch(msg)
            wire_reply = reply_size
            if wire_reply is None:
                wire_reply = self.ENVELOPE + _payload_size(result)
            yield from self.network.transmit(dst.host, self.host, wire_reply)
            return result

    # -- batched calls ------------------------------------------------------
    #
    # A batch ships a list of (method, args, size) entries to ONE peer in a
    # single message: one envelope, summed payload bytes, one egress-link
    # reservation, one process — instead of one of each per entry.  The
    # destination applies the entries in order and returns one result per
    # entry ({"ok": True, "result": ...} or {"ok": False, "error": ...}),
    # so a partial failure is attributable per entry.  A transport failure
    # (peer down, partition) raises out of the whole call, meaning *every*
    # entry is undelivered.

    def call_batch(self, dst: "RpcNode",
                   entries: list[tuple[str, dict, int]],
                   reply_size: Optional[int] = None) -> Process:
        """Ship ``entries`` to ``dst`` as one message; returns per-entry
        results in order.  Each entry is ``(method, args, size)`` with the
        same per-entry ``size`` a single :meth:`call` would use; the wire
        carries one envelope plus the summed entry sizes."""
        tracer = self._obs.tracer
        parent = tracer.current() if tracer.enabled else None
        return self.sim.process(
            self._call(dst, BATCH_METHOD, {"entries": list(entries)},
                       self._batch_size(entries), reply_size, parent),
            name=f"rpcb:{self.name}->{dst.name}:batch{len(entries)}")

    def send_oneway_batch(self, dst: "RpcNode",
                          entries: list[tuple[str, dict, int]]) -> Process:
        """Fire-and-forget batch: deliver and execute, swallowing network
        errors (per-entry application errors are reported in the results,
        which a oneway by definition never sees)."""
        tracer = self._obs.tracer
        parent = tracer.current() if tracer.enabled else None
        return self.sim.process(
            self._oneway(dst, BATCH_METHOD, {"entries": list(entries)},
                         self._batch_size(entries), parent),
            name=f"rpcb1w:{self.name}->{dst.name}:batch{len(entries)}")

    def _batch_size(self, entries) -> int:
        return self.ENVELOPE + sum(size for _, _, size in entries)

    def _dispatch_batch(self, msg: Message) -> Generator:
        """Apply a batch's entries in order, one result per entry.

        An entry whose handler raises yields ``{"ok": False, ...}`` without
        aborting the rest of the batch — the caller decides what to retry.
        """
        results = []
        for method, args, _size in msg.args["entries"]:
            handler = self._handlers.get(method)
            if handler is None:
                results.append({"ok": False,
                                "error": f"NoSuchMethodError({method!r})"})
                continue
            self._served.inc()
            sub = Message(src=msg.src, dst=msg.dst, method=method, args=args,
                          size=msg.size, sent_at=msg.sent_at, trace=msg.trace)
            try:
                value = yield from handler(sub)
            except Exception as exc:
                results.append({"ok": False, "error": repr(exc)})
            else:
                results.append({"ok": True, "result": value})
        return results

    def send_oneway(self, dst: "RpcNode", method: str,
                    args: Optional[dict[str, Any]] = None,
                    size: Optional[int] = None) -> Process:
        """Fire-and-forget: deliver and execute, swallowing network errors.

        Used for background/asynchronous propagation (the ``queue``
        response) where a dead replica must not crash the sender.
        """
        tracer = self._obs.tracer
        parent = tracer.current() if tracer.enabled else None
        return self.sim.process(
            self._oneway(dst, method, args or {}, size, parent),
            name=f"rpc1w:{self.name}->{dst.name}:{method}")

    def _oneway(self, dst: "RpcNode", method: str, args: dict[str, Any],
                size: Optional[int],
                parent: Optional[TraceContext] = None) -> Generator:
        tracer = self._obs.tracer
        span = (tracer.span(f"oneway:{method}", cat="rpc",
                            component=self.name, parent=parent, dst=dst.name)
                if tracer.enabled else NULL_SPAN)
        with span:
            msg = Message(src=self.name, dst=dst.name, method=method,
                          args=args,
                          size=size if size is not None else self.ENVELOPE,
                          sent_at=self.sim.now, trace=span.context)
            bridge = self.network.bridge
            if bridge is not None and not bridge.local(self.host, dst.host):
                yield from bridge.outbound_oneway(self, dst, msg)
                return
            try:
                yield from self.network.transmit(self.host, dst.host, msg.size)
                yield from dst._dispatch(msg)
            except Exception as exc:
                self._dropped.inc()
                span.set(dropped=repr(exc))

    # -- incoming dispatch -----------------------------------------------------
    def _dispatch(self, msg: Message) -> Generator:
        if self.host.down:
            from repro.net.network import HostDownError
            raise HostDownError(f"node {self.name} is down")
        if msg.method == BATCH_METHOD:
            tracer = self._obs.tracer
            if tracer.enabled:
                with tracer.span("handle:batch", cat="rpc.server",
                                 component=self.name, parent=msg.trace,
                                 src=msg.src,
                                 entries=len(msg.args["entries"])):
                    result = yield from self._dispatch_batch(msg)
            else:
                result = yield from self._dispatch_batch(msg)
            return result
        handler = self._handlers.get(msg.method)
        if handler is None:
            raise NoSuchMethodError(
                f"{self.name} has no method {msg.method!r} "
                f"(has {sorted(self._handlers)})")
        self._served.inc()
        tracer = self._obs.tracer
        if tracer.enabled:
            with tracer.span(f"handle:{msg.method}", cat="rpc.server",
                             component=self.name, parent=msg.trace,
                             src=msg.src):
                result = yield from handler(msg)
        else:
            result = yield from handler(msg)
        return result


def _payload_size(value: Any) -> int:
    """Rough wire size of a handler result, for reply transmission.

    Dict results are charged for *every* byte payload they carry (nested
    dicts/lists included), so e.g. a batched replica-payload reply is
    serialized at its real size rather than a flat 64-byte estimate.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, dict):
        return 64 + sum(_nested_bytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return 64 + sum(_nested_bytes(v) for v in value)
    return 64


def _nested_bytes(value: Any) -> int:
    """Total bytes-payload carried anywhere inside ``value``."""
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, dict):
        return sum(_nested_bytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_nested_bytes(v) for v in value)
    return 0


def call_with_timeout(sim: Simulator, call: Process, timeout: float):
    """Race a call against a timeout; yields (completed, value) semantics.

    Returns a generator suitable for ``yield from``; its value is the call
    result, or raises :class:`TimeoutError` if the deadline fires first.
    The late call result is defused so it cannot crash the simulation, and
    a losing deadline timer is cancelled so repeated short calls under a
    long timeout (monitor probes) don't pile dead timers on the event heap.
    """
    deadline = sim.timeout(timeout, value=_TIMED_OUT)
    try:
        winner = yield sim.any_of([call, deadline])
    except BaseException:
        # The call failed before the deadline: the timer lost the race.
        deadline.cancel()
        raise
    index, value = winner
    if value is _TIMED_OUT and index == 1:
        call.defuse()
        get_obs(sim).metrics.counter("rpc.timeouts").inc()
        raise TimeoutError(f"rpc call timed out after {timeout}s")
    deadline.cancel()
    return value


_TIMED_OUT = object()
