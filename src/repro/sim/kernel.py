"""Core event loop, events and generator-based processes.

Design notes
------------
* An :class:`Event` moves through three states: *pending* (created),
  *triggered* (scheduled with a value), *processed* (its callbacks have
  run).  ``succeed``/``fail`` trigger it.
* A :class:`Process` wraps a generator.  Each value the generator yields
  must be an :class:`Event`; the process subscribes to it and is resumed
  with the event's value (or has the event's exception thrown into it).
* A failed event that nobody is waiting on stops the simulation with the
  original exception — silent error-swallowing is the classic sim bug.
* Ties are broken by a monotonically increasing sequence number, making
  runs exactly reproducible.

Scheduling fast path
--------------------
Zero-delay scheduling — process bootstraps, resumes on already-processed
events, local completions, ``succeed()`` with the default delay — is the
vast majority of kernel traffic, and none of it needs a priority queue.
The simulator therefore keeps two structures:

* ``_heap``: the classic ``(time, seq, event)`` heap, for ``delay > 0``;
* ``_runq``: a FIFO (``collections.deque``) of items scheduled with
  ``delay == 0``, each stamped with its sequence number (``_qseq``).

**Invariant:** every run-queue entry is stamped at the current clock.  An
entry is appended at time ``now``; the clock only advances by popping a
heap event with a *later* timestamp, and such an event can never be chosen
while the run queue is non-empty (the run-queue head, at time ``now``,
sorts strictly earlier).  So draining compares only the heads: a heap
event preempts only when its timestamp equals ``now`` *and* its sequence
number is older than the run-queue head's (which happens — e.g. a timer
landing exactly on ``now`` scheduled before a resume at ``now``, or a
``delay > 0`` so small that ``now + delay == now`` in floating point).
The observable processing order — ascending ``(time, seq)`` — is
bit-identical to the heap-only kernel, and ``events_processed`` counts
exactly the same events.

Allocation diet, in rough order of impact:

* subscribers live in a single ``_waiter`` slot (the overwhelmingly
  common case is one waiter per event) with a lazily created ``callbacks``
  list only for the second subscriber onwards — no list allocation per
  event;
* resuming a process whose wait target already completed used to allocate
  a fresh "poke" ``Event``; it is now a :class:`_Deferred` record (four
  slots, no callback list, no heap entry) drained through the same run
  queue and recycled through a small free list;
* every kernel object carries ``__slots__``, and processes pre-bind their
  generator's ``send``/``throw`` and their own ``_resume``.

The generator-stepping core lives in three deliberately duplicated
copies — :meth:`Process._resume` (a waited-on event fired),
:meth:`Process._advance` (the single-step :meth:`Simulator.step` API), and
inline in :meth:`Simulator._drain` (deferred resumes) — because on this
path one CPython method call per event is measurable.  Keep them in sync;
``tests/test_kernel_golden.py`` pins the observable behavior bit-for-bit.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised by the event loop for kernel-level misuse or failure."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()

_INF = float("inf")

#: cap on the _Deferred free list — enough to cover bursts, small enough
#: never to matter for memory
_DPOOL_MAX = 64


class _Never:
    """Stand-in sentinel for run()-to-exhaustion: never 'processed'."""
    _processed = False


_NEVER = _Never()


class Event:
    """A one-shot occurrence with a value and subscriber callbacks.

    Subscribers: the first lands in ``_waiter``; the rare second and later
    go to the lazily created ``callbacks`` list.  Dispatch order is
    ``_waiter`` first, then ``callbacks`` in append order — i.e. exactly
    subscription order, as with a plain list.
    """

    __slots__ = ("sim", "_waiter", "callbacks", "_value", "_ok", "_defused",
                 "_cancelled", "_processed", "_qseq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiter: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when this event is processed."""
        if self._processed:
            raise SimulationError(f"{self!r} already processed")
        if self._waiter is None:
            self._waiter = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if delay == 0.0:
            self._qseq = sim._seq
            sim._seq += 1
            sim._runq.append(self)
        else:
            sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled event: its callbacks will never run.

        Used for the losing arm of a race (e.g. the deadline timer of
        :func:`~repro.sim.rpc.call_with_timeout` when the call wins) so
        abandoned timers don't accumulate on the event heap.  Cancelling a
        processed event is a no-op.
        """
        if self._processed or self._cancelled:
            return
        self._cancelled = True
        self.sim._note_cancel()

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Inlined Event.__init__ + _schedule (hot path: one per sleep).
        self.sim = sim
        self._waiter = None
        self.callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._processed = False
        self.delay = delay
        seq = sim._seq
        if delay == 0.0:
            self._qseq = seq
            sim._runq.append(self)
        elif delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        else:
            heapq.heappush(sim._heap, (sim._now + delay, seq, self))
        sim._seq = seq + 1


class _Deferred:
    """Allocation-light resume record for the run queue.

    Stands in for the old "poke" ``Event`` wherever a process must be
    resumed with an already-known outcome: bootstrap, waits on processed
    events, interrupts.  Carries no callback list and never reaches the
    heap; the drain loop dispatches it straight into the process and
    recycles the record through ``Simulator._dpool``.
    """

    __slots__ = ("proc", "ok", "value", "_qseq")

    #: class-level so run-queue pruning can treat records like events
    _cancelled = False

    def __init__(self, proc: "Process", ok: bool, value: Any, qseq: int):
        self.proc = proc
        self.ok = ok
        self.value = value
        self._qseq = qseq


class Process(Event):
    """A running generator; also an event that fires when it terminates."""

    __slots__ = ("name", "_generator", "_send", "_throw", "_on_fire",
                 "_target", "obs_ctx")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        try:
            self._send = generator.send       # pre-bound: one resume each
            self._throw = generator.throw
        except AttributeError:
            raise SimulationError(
                f"Process requires a generator, "
                f"got {type(generator).__name__}") from None
        # Inlined Event.__init__ (hot path: one per RPC call).
        self.sim = sim
        self._waiter = None
        self.callbacks = None
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._processed = False
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Pre-bound subscriber callback: appending self._resume directly
        # would allocate a fresh bound method on every yield.
        self._on_fire = self._resume
        self._target: Optional[Event] = None  # event this process waits on
        # Current trace context (repro.obs): spans opened while this process
        # runs parent under it; RPC propagates it across process boundaries.
        self.obs_ctx = None
        # Bootstrap: resume on the next scheduling round.
        pool = sim._dpool
        if pool:
            d = pool.pop()
            d.proc = self
            d.ok = True
            d.value = None
            d._qseq = sim._seq
        else:
            d = _Deferred(self, True, None, sim._seq)
        sim._runq.append(d)
        sim._seq += 1

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        # Detach from whatever the process is waiting on.  The subscribed
        # callback stays in place as a tombstone — _resume ignores events
        # the process no longer waits on — so no O(n) callback-list scan.
        self._target = None
        sim = self.sim
        sim._runq.append(_Deferred(self, False, Interrupt(cause), sim._seq))
        sim._seq += 1

    def _finish(self, ok: bool, value: Any) -> None:
        """Terminate: record the outcome and schedule the process event."""
        self._ok = ok
        self._value = value
        # Drop the generator and the pre-bound callbacks: _on_fire is a
        # reference cycle (bound method -> self), and without this a dead
        # process waits for the cyclic GC instead of dying by refcount —
        # measurable pressure in fan-out workloads.  Tombstoned _resume
        # entries in event callback lists hold their own reference and
        # early-return without touching these fields.
        self._generator = None
        self._send = None
        self._throw = None
        self._on_fire = None
        sim = self.sim
        self._qseq = sim._seq
        sim._seq += 1
        sim._runq.append(self)

    def _yield_error(self, target: Any) -> None:
        """The generator yielded something that is not an Event."""
        exc = SimulationError(
            f"process {self.name!r} yielded non-event {target!r}")
        try:
            self._throw(exc)
        except BaseException as err:
            self._finish(False, err)

    def _resume(self, event: Event) -> None:
        # Generator-stepping core, copy 1 of 3 (see module docstring).
        if self._target is not event:
            return  # tombstone: detached by interrupt() before event fired
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event._defused = True
                target = self._throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self._finish(False, exc)
            return
        sim._active_process = None
        try:
            if target._processed:
                # Already processed: resume with its value on the next
                # round, without allocating a poke event.
                if not target._ok:
                    target._defused = True
                pool = sim._dpool
                if pool:
                    d = pool.pop()
                    d.proc = self
                    d.ok = target._ok
                    d.value = target._value
                    d._qseq = sim._seq
                else:
                    d = _Deferred(self, target._ok, target._value, sim._seq)
                sim._seq += 1
                sim._runq.append(d)
            elif target._waiter is None:
                target._waiter = self._on_fire
                self._target = target
            else:
                tcbs = target.callbacks
                if tcbs is None:
                    target.callbacks = [self._on_fire]
                else:
                    tcbs.append(self._on_fire)
                self._target = target
        except AttributeError:
            self._yield_error(target)

    def _advance(self, ok: bool, value: Any) -> None:
        """Step the generator once with an outcome and re-subscribe.

        Generator-stepping core, copy 2 of 3 — kept as a method for the
        single-step :meth:`Simulator.step` API (deferred-resume dispatch).
        """
        sim = self.sim
        sim._active_process = self
        try:
            if ok:
                target = self._send(value)
            else:
                target = self._throw(value)
        except StopIteration as stop:
            sim._active_process = None
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self._finish(False, exc)
            return
        sim._active_process = None
        try:
            if target._processed:
                if not target._ok:
                    target._defused = True
                pool = sim._dpool
                if pool:
                    d = pool.pop()
                    d.proc = self
                    d.ok = target._ok
                    d.value = target._value
                    d._qseq = sim._seq
                else:
                    d = _Deferred(self, target._ok, target._value, sim._seq)
                sim._seq += 1
                sim._runq.append(d)
            elif target._waiter is None:
                target._waiter = self._on_fire
                self._target = target
            else:
                tcbs = target.callbacks
                if tcbs is None:
                    target.callbacks = [self._on_fire]
                else:
                    tcbs.append(self._on_fire)
                self._target = target
        except AttributeError:
            self._yield_error(target)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_done", "_on_child")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        self._on_child = self._check   # pre-bound, one per condition
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._processed:
                self._check(ev)
            else:
                ev.subscribe(self._on_child)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this condition fails with that child's exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is (index, value)."""

    __slots__ = ("_index_of",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        # id -> first position: O(1) completion lookup, and correct (a
        # duplicate *is* the object at its first position) where the old
        # list.index() scan was O(n) per completion.
        index_of: dict[int, int] = {}
        for i, ev in enumerate(events):
            index_of.setdefault(id(ev), i)
        self._index_of = index_of
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((self._index_of[id(event)], event._value))


class Simulator:
    """The event loop.  All simulation state hangs off one instance."""

    #: compact the heap once this many cancelled entries are buried in it
    #: (and they make up more than half of the heap)
    CANCEL_COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Event]] = []
        #: same-time FIFO: Event/_Deferred items at time _now, seq-stamped
        self._runq: deque[Any] = deque()
        self._dpool: list[_Deferred] = []  # recycled resume records
        self._active_process: Optional[Process] = None
        self._cancelled_pending = 0  # cancelled events still scheduled
        self._obs = None  # Observability bundle, installed by repro.obs
        #: events processed since construction — the denominator for
        #: wall-clock kernel throughput (events/sec) in benchmarks.
        #: run() batches the increment and flushes it on return.
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` at absolute sim time ``when`` (>= now).

        The external-injection hook used by the parallel runner
        (:mod:`repro.par`): an injected call is an ordinary event ordered
        by ``(time, seq)`` exactly like native ones, with its seq assigned
        here — so replaying the same injection sequence against the same
        simulator state is deterministic.
        """
        delay = when - self._now
        if delay < 0:
            raise SimulationError(
                f"cannot inject into the past: {when} < {self._now}")
        event = Event(self)
        event._waiter = lambda _ev, _cb=callback, _args=args: _cb(*_args)
        event.succeed(None, delay=delay)
        return event

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            event._qseq = self._seq
            self._runq.append(event)
        elif delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        if (self._cancelled_pending > self.CANCEL_COMPACT_THRESHOLD
                and self._cancelled_pending * 2 > len(self._heap)):
            # In place, so the drain loop's local binding stays valid.
            self._heap[:] = [entry for entry in self._heap
                             if not entry[2]._cancelled]
            heapq.heapify(self._heap)
            # Cancelled entries may also sit in the (usually tiny) run
            # queue; they are skipped on drain, so just recount them.
            self._cancelled_pending = sum(
                1 for item in self._runq if item._cancelled)

    def _prune(self) -> None:
        """Drop cancelled entries from both queue heads (lazy deletion)."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        runq = self._runq
        while runq and runq[0]._cancelled:
            runq.popleft()
            self._cancelled_pending -= 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._prune()
        if self._runq:
            return self._now
        return self._heap[0][0] if self._heap else _INF

    def _dispatch(self, event: Event) -> None:
        """Mark ``event`` processed and run its subscribers, then check
        for unhandled failure.  Shared by step(); _drain inlines it."""
        self.events_processed += 1
        event._processed = True
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter(event)
        callbacks = event.callbacks
        if callbacks is not None:
            event.callbacks = None
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"unhandled event failure: {exc!r}")

    def step(self) -> None:
        """Process exactly one event (single-step API; ``run`` is faster)."""
        self._prune()
        runq = self._runq
        heap = self._heap
        if runq:
            item = runq[0]
            # Run-queue entries are all stamped (now, seq): a heap event
            # preempts only on an equal timestamp with an older seq.
            if heap and heap[0][0] == self._now and heap[0][1] < item._qseq:
                event = heapq.heappop(heap)[2]
            else:
                runq.popleft()
                if item.__class__ is _Deferred:
                    self.events_processed += 1
                    item.proc._advance(item.ok, item.value)
                    return
                event = item
        elif heap:
            when, _, event = heapq.heappop(heap)
            self._now = when
        else:
            raise SimulationError("step() on an empty schedule")
        self._dispatch(event)

    def _drain(self, deadline: Optional[float],
               sentinel: Optional[Event]) -> None:
        """The hot loop behind :meth:`run`: inline choose/advance/dispatch.

        Stops when ``sentinel`` is processed (if given), when the next
        heap event lies beyond ``deadline`` (if given) with the run queue
        empty, or when the whole schedule drains.  Processing order and
        ``events_processed`` accounting are exactly those of repeated
        :meth:`step` calls.
        """
        heappop = heapq.heappop
        heappush = heapq.heappush
        runq = self._runq   # only ever mutated in place
        heap = self._heap   # compaction rewrites it in place too
        pool = self._dpool
        if sentinel is None:
            sentinel = _NEVER
        if deadline is None:
            deadline = _INF
        count = 0
        try:
            while True:
                if sentinel._processed:
                    return
                if runq:
                    item = runq[0]
                    if item._cancelled:
                        self._cancelled_pending -= 1
                        runq.popleft()
                        continue
                    if heap and heap[0][0] == self._now \
                            and heap[0][1] < item._qseq:
                        event = heappop(heap)[2]
                        if event._cancelled:
                            self._cancelled_pending -= 1
                            continue
                    else:
                        runq.popleft()
                        if item.__class__ is _Deferred:
                            # Generator-stepping core, copy 3 of 3 (see
                            # module docstring; mirror of _advance).
                            count += 1
                            proc = item.proc
                            ok = item.ok
                            value = item.value
                            if len(pool) < _DPOOL_MAX:
                                item.proc = None
                                item.value = None
                                pool.append(item)
                            self._active_process = proc
                            try:
                                if ok:
                                    target = proc._send(value)
                                else:
                                    target = proc._throw(value)
                            except StopIteration as stop:
                                self._active_process = None
                                proc._finish(True, stop.value)
                                continue
                            except BaseException as exc:
                                self._active_process = None
                                proc._finish(False, exc)
                                continue
                            self._active_process = None
                            try:
                                if target._processed:
                                    if not target._ok:
                                        target._defused = True
                                    if pool:
                                        d = pool.pop()
                                        d.proc = proc
                                        d.ok = target._ok
                                        d.value = target._value
                                        d._qseq = self._seq
                                    else:
                                        d = _Deferred(proc, target._ok,
                                                      target._value,
                                                      self._seq)
                                    self._seq += 1
                                    runq.append(d)
                                elif target._waiter is None:
                                    target._waiter = proc._on_fire
                                    proc._target = target
                                else:
                                    tcbs = target.callbacks
                                    if tcbs is None:
                                        target.callbacks = [proc._on_fire]
                                    else:
                                        tcbs.append(proc._on_fire)
                                    proc._target = target
                            except AttributeError:
                                proc._yield_error(target)
                            continue
                        event = item
                elif heap:
                    entry = heappop(heap)
                    event = entry[2]
                    if event._cancelled:
                        self._cancelled_pending -= 1
                        continue
                    if entry[0] > deadline:
                        heappush(heap, entry)  # once per run(), at the end
                        return
                    self._now = entry[0]
                else:
                    if sentinel is not _NEVER:
                        raise SimulationError(
                            "schedule drained before the awaited event fired")
                    return
                # Inline _dispatch.
                count += 1
                event._processed = True
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    waiter(event)
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok:
                    if not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise SimulationError(
                            f"unhandled event failure: {exc!r}")
        finally:
            self.events_processed += count

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run to that time, then stop with
        the clock set to it) or an :class:`Event` (run until it is processed
        and return its value).
        """
        if until is None:
            self._drain(None, None)
            return None
        if isinstance(until, Event):
            self._drain(None, until)
            if not until._ok:
                raise until._value
            return until._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is in the past (now={self._now})")
        self._drain(deadline, None)
        self._now = deadline
        return None
