"""Core event loop, events and generator-based processes.

Design notes
------------
* An :class:`Event` moves through three states: *pending* (created),
  *triggered* (scheduled on the simulator heap with a value), *processed*
  (its callbacks have run).  ``succeed``/``fail`` trigger it.
* A :class:`Process` wraps a generator.  Each value the generator yields
  must be an :class:`Event`; the process subscribes to it and is resumed
  with the event's value (or has the event's exception thrown into it).
* A failed event that nobody is waiting on stops the simulation with the
  original exception — silent error-swallowing is the classic sim bug.
* Ties in the event heap are broken by a monotonically increasing sequence
  number, making runs exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised by the event loop for kernel-level misuse or failure."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A one-shot occurrence with a value and subscriber callbacks."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled event: its callbacks will never run.

        Used for the losing arm of a race (e.g. the deadline timer of
        :func:`~repro.sim.rpc.call_with_timeout` when the call wins) so
        abandoned timers don't accumulate on the event heap.  Cancelling a
        processed event is a no-op.
        """
        if self.processed or self._cancelled:
            return
        self._cancelled = True
        self.sim._note_cancel()

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it terminates."""

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None  # event this process waits on
        # Current trace context (repro.obs): spans opened while this process
        # runs parent under it; RPC propagates it across process boundaries.
        self.obs_ctx = None
        # Bootstrap: resume on the next scheduling round.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        # Detach from whatever the process is waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke._defused = True
        poke.callbacks.append(self._resume)
        self.sim._schedule(poke, 0.0)

    def _resume(self, event: Event) -> None:
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self, 0.0)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.sim._schedule(self, 0.0)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")
            try:
                self._generator.throw(exc)
            except BaseException as err:
                self._ok = False
                self._value = err
                self.sim._schedule(self, 0.0)
            return
        if target.callbacks is None:
            # Already processed: resume immediately with its value.
            poke = Event(self.sim)
            poke._ok = target._ok
            poke._value = target._value
            if not target._ok:
                target._defused = True
                poke._defused = True
            poke.callbacks.append(self._resume)
            self.sim._schedule(poke, 0.0)
        else:
            if not target._ok and target.triggered:
                target._defused = True
            target.callbacks.append(self._resume)
            self._target = target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this condition fails with that child's exception.
    """

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is (index, value)."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((self.events.index(event), event._value))


class Simulator:
    """The event loop.  All simulation state hangs off one instance."""

    #: compact the heap once this many cancelled entries are buried in it
    #: (and they make up more than half of the heap)
    CANCEL_COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Event]] = []
        self._active_process: Optional[Process] = None
        self._cancelled_pending = 0  # cancelled events still on the heap
        self._obs = None  # Observability bundle, installed by repro.obs
        #: events processed since construction — the denominator for
        #: wall-clock kernel throughput (events/sec) in benchmarks
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        if (self._cancelled_pending > self.CANCEL_COMPACT_THRESHOLD
                and self._cancelled_pending * 2 > len(self._heap)):
            self._heap = [entry for entry in self._heap
                          if not entry[2]._cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0

    def _prune_head(self) -> None:
        """Drop cancelled events from the head of the heap (lazy deletion)."""
        while self._heap and self._heap[0][2]._cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._prune_head()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        self._prune_head()
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"unhandled event failure: {exc!r}")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run to that time, then stop with
        the clock set to it) or an :class:`Event` (run until it is processed
        and return its value).
        """
        if until is None:
            while self.peek() != float("inf"):
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if self.peek() == float("inf"):
                    raise SimulationError(
                        "schedule drained before the awaited event fired")
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is in the past (now={self._now})")
        while self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None
