"""Workload monitor (§3.1).

"The workload monitor aggregates workload related information such as
users' locations (number of requests from each instance), access patterns,
and object sizes."  This component polls every instance of a Wiera
instance over RPC and keeps a windowed aggregate that the data-placement
advisor (and operators) can consult.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.sim.kernel import Interrupt
from repro.util.stats import OnlineStats


@dataclass
class WorkloadSnapshot:
    """One polling round's view of the whole Wiera instance."""

    time: float
    requests_by_region: dict[str, int] = field(default_factory=dict)
    puts_by_region: dict[str, int] = field(default_factory=dict)
    gets_by_region: dict[str, int] = field(default_factory=dict)
    objects_by_region: dict[str, int] = field(default_factory=dict)
    bytes_by_region: dict[str, int] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_region.values())

    def read_fraction(self) -> float:
        gets = sum(self.gets_by_region.values())
        puts = sum(self.puts_by_region.values())
        total = gets + puts
        return gets / total if total else 0.0


class WorkloadMonitor:
    """Periodically polls instance stats and derives demand aggregates."""

    def __init__(self, tim, poll_interval: float = 10.0,
                 history: int = 64):
        self.tim = tim
        self.sim = tim.sim
        self.poll_interval = poll_interval
        self.snapshots: deque[WorkloadSnapshot] = deque(maxlen=history)
        self.object_size = OnlineStats()
        self._last_counts: dict[str, tuple[int, int]] = {}
        self._proc = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.sim.process(self._run(), name="workload-mon")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
        self._proc = None

    # -- polling -------------------------------------------------------------
    def _run(self) -> Generator:
        try:
            while True:
                yield self.sim.timeout(self.poll_interval)
                yield from self.poll_once()
        except Interrupt:
            return

    def poll_once(self) -> Generator:
        snapshot = WorkloadSnapshot(time=self.sim.now)
        for record in self.tim.instances.values():
            if record.down:
                continue
            try:
                stats = yield self.tim.node.call(record.node, "stats")
            except Exception:
                continue
            region = stats["region"]
            puts, gets = stats["puts_from_app"], stats["gets_from_app"]
            prev_puts, prev_gets = self._last_counts.get(
                record.instance_id, (0, 0))
            self._last_counts[record.instance_id] = (puts, gets)
            dp = max(0, puts - prev_puts)
            dg = max(0, gets - prev_gets)
            snapshot.puts_by_region[region] = (
                snapshot.puts_by_region.get(region, 0) + dp)
            snapshot.gets_by_region[region] = (
                snapshot.gets_by_region.get(region, 0) + dg)
            snapshot.requests_by_region[region] = (
                snapshot.requests_by_region.get(region, 0) + dp + dg)
            snapshot.objects_by_region[region] = stats["objects"]
            snapshot.bytes_by_region[region] = sum(
                t["used"] for t in stats["tiers"].values())
        self.snapshots.append(snapshot)
        self._observe_sizes()
        return snapshot

    def _observe_sizes(self) -> None:
        for record in self.tim.instances.values():
            if record.down:
                continue
            for obj in record.instance.meta.records():
                meta = obj.latest()
                if meta is not None:
                    self.object_size.add(meta.size)
                break  # sample one record per instance per round — cheap

    # -- aggregates --------------------------------------------------------------
    def demand_by_region(self, window: Optional[int] = None) -> dict[str, int]:
        """Summed request deltas per client-facing region.

        ``window`` counts polling rounds from the most recent backwards;
        ``None`` means the whole retained history and ``0`` means an
        empty window (no rounds), never the full history.
        """
        if window is None:
            rounds = self.snapshots
        elif window > 0:
            rounds = list(self.snapshots)[-window:]
        else:
            rounds = []
        out: dict[str, int] = {}
        for snap in rounds:
            for region, n in snap.requests_by_region.items():
                out[region] = out.get(region, 0) + n
        return out

    def busiest_region(self) -> Optional[str]:
        demand = self.demand_by_region()
        if not demand:
            return None
        return max(sorted(demand), key=lambda r: demand[r])

    def read_fraction(self) -> float:
        gets = sum(sum(s.gets_by_region.values()) for s in self.snapshots)
        puts = sum(sum(s.puts_by_region.values()) for s in self.snapshots)
        total = gets + puts
        return gets / total if total else 0.0
