"""Global consistency protocols between Tiera instances (§3.3.1).

Three protocols from the paper, all sharing one duck-typed interface with
:class:`~repro.tiera.local_protocol.LocalOnlyProtocol`:

* :class:`MultiPrimariesProtocol` — every replica accepts writes under a
  global (Zookeeper) lock, updates broadcast synchronously.
* :class:`PrimaryBackupProtocol` — one primary; non-primaries forward
  puts; updates propagate synchronously (``copy``) or asynchronously
  (``queue``) by configuration.
* :class:`EventualConsistencyProtocol` — writes commit locally and are
  queued for lazy distribution; write-write conflicts resolved
  last-write-wins (§4.2).
"""

from repro.core.consistency.base import (
    GlobalProtocol,
    ProtocolError,
    ReplicationQueue,
)
from repro.core.consistency.repair import AntiEntropyRepairer
from repro.core.consistency.multi_primaries import MultiPrimariesProtocol
from repro.core.consistency.primary_backup import (
    PrimaryBackupConfig,
    PrimaryBackupProtocol,
)
from repro.core.consistency.eventual import EventualConsistencyProtocol

PROTOCOL_NAMES = ("multi_primaries", "primary_backup", "eventual", "local")

__all__ = [
    "GlobalProtocol",
    "ProtocolError",
    "ReplicationQueue",
    "AntiEntropyRepairer",
    "MultiPrimariesProtocol",
    "PrimaryBackupProtocol",
    "PrimaryBackupConfig",
    "EventualConsistencyProtocol",
    "PROTOCOL_NAMES",
]
