"""PrimaryBackup consistency (Figure 3(b)).

One instance is the *primary*; every other instance forwards puts to it.
The primary propagates updates to backups either synchronously (the
``copy`` response — minimizes get staleness) or asynchronously (the
``queue`` response — minimizes put latency), per configuration.

The shared :class:`PrimaryBackupConfig` is the single source of truth for
who the primary is; Wiera's ChangePrimary dynamic policy (Figure 5(b))
rewrites it after quiescing the group, and all instances immediately
follow the new primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.consistency.base import (
    GlobalProtocol,
    ProtocolError,
    ReplicationQueue,
)


@dataclass
class PrimaryBackupConfig:
    """Shared, mutable protocol configuration."""

    primary_id: str
    sync_replication: bool = True     # copy (sync) vs queue (async)
    queue_interval: float = 1.0       # flush period for async mode
    get_from: Optional[str] = None    # None=local; "primary"; or instance id
    history: list = field(default_factory=list)  # (time, primary_id)


class PrimaryBackupProtocol(GlobalProtocol):
    """Single-primary replication with configurable update propagation."""

    name = "primary_backup"

    def __init__(self, config: PrimaryBackupConfig):
        self.config = config
        self.forwarded_puts = 0
        self._queues: dict[str, ReplicationQueue] = {}

    # -- lifecycle -----------------------------------------------------------
    def attach(self, instance) -> None:
        if not self.config.sync_replication:
            queue = ReplicationQueue(instance, self.config.queue_interval)
            self._queues[instance.instance_id] = queue
            queue.start()

    def detach(self, instance) -> None:
        queue = self._queues.pop(instance.instance_id, None)
        if queue is not None:
            queue.stop()

    def queue_for(self, instance) -> ReplicationQueue:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            queue = ReplicationQueue(instance, self.config.queue_interval)
            self._queues[instance.instance_id] = queue
            queue.start()
        return queue

    # -- helpers -------------------------------------------------------------
    def is_primary(self, instance) -> bool:
        return instance.instance_id == self.config.primary_id

    def primary_ref(self, instance):
        ref = instance.peers.get(self.config.primary_id)
        if ref is None:
            raise ProtocolError(
                f"{instance.instance_id}: primary {self.config.primary_id!r} "
                f"not in peer table {sorted(instance.peers)}")
        return ref

    def set_primary(self, new_primary_id: str, now: float) -> str:
        previous = self.config.primary_id
        self.config.primary_id = new_primary_id
        self.config.history.append((now, new_primary_id))
        return previous

    # -- data path -------------------------------------------------------------
    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        if self.is_primary(instance):
            version = yield from instance.local_put(key, data, tags=tags)
            args = self.update_args(instance, key, version, data)
            if self.config.sync_replication:
                yield from self.broadcast_sync(instance, "replica_update",
                                               args, size=len(data) + 512)
            else:
                self.queue_for(instance).enqueue(args)
            return {"version": version, "region": instance.region,
                    "primary": instance.instance_id, "consistency": self.name}
        # Not the primary: forward (never re-forward a forwarded request —
        # the primary may have just changed under us).
        if src != "app":
            raise ProtocolError(
                f"{instance.instance_id}: forwarded put arrived at "
                f"non-primary (primary is {self.config.primary_id})")
        self.forwarded_puts += 1
        ref = self.primary_ref(instance)
        result = yield instance.node.call(
            ref.node, "forward_put",
            {"key": key, "data": data, "tags": tuple(tags),
             "origin": instance.instance_id},
            size=len(data) + 512)
        return result

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        target = self.config.get_from
        if target == "primary" and not self.is_primary(instance):
            target = self.config.primary_id
        if target and target != instance.instance_id and target != "primary":
            ref = instance.peers.get(target)
            if ref is not None:
                result = yield instance.node.call(
                    ref.node, "peer_get", {"key": key, "version": version})
                return result
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version}

    def drain(self, instance) -> Generator:
        queue = self._queues.get(instance.instance_id)
        if queue is not None:
            yield from queue.drain()
