"""PrimaryBackup consistency (Figure 3(b)).

One instance is the *primary*; every other instance forwards puts to it.
The primary propagates updates to backups either synchronously (the
``copy`` response — minimizes get staleness) or asynchronously (the
``queue`` response — minimizes put latency), per configuration.

The shared :class:`PrimaryBackupConfig` is the single source of truth for
who the primary is; Wiera's ChangePrimary dynamic policy (Figure 5(b))
rewrites it after quiescing the group, and all instances immediately
follow the new primary.

Forwarded requests are retried with backoff: each attempt re-resolves the
primary from the shared config, so a retry issued while ChangePrimary is
in flight lands on the *new* primary instead of hammering the dead one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.consistency.base import (
    GlobalProtocol,
    ProtocolError,
    ReplicationQueue,
)
from repro.core.consistency.repair import AntiEntropyRepairer
from repro.faults.retry import RetryPolicy, call_with_retries


@dataclass
class PrimaryBackupConfig:
    """Shared, mutable protocol configuration."""

    primary_id: str
    sync_replication: bool = True     # copy (sync) vs queue (async)
    queue_interval: float = 1.0       # flush period for async mode
    get_from: Optional[str] = None    # None=local; "primary"; or instance id
    repair_interval: Optional[float] = None  # anti-entropy period (off=None)
    batch_bytes: float = 0.0          # batch data plane threshold (0 = off)
    history: list = field(default_factory=list)  # (time, primary_id)


class PrimaryBackupProtocol(GlobalProtocol):
    """Single-primary replication with configurable update propagation."""

    name = "primary_backup"

    def __init__(self, config: PrimaryBackupConfig,
                 retry_policy: Optional[RetryPolicy] = None):
        self.config = config
        self.retry_policy = retry_policy or RetryPolicy()
        self.forwarded_puts = 0
        self.forwarded_removes = 0
        self._queues: dict[str, ReplicationQueue] = {}
        self._repairers: dict[str, AntiEntropyRepairer] = {}

    @property
    def batch_bytes(self) -> float:
        # Read through to the shared config so the batch plane follows any
        # runtime reconfiguration the same way primary changes do.
        return self.config.batch_bytes

    # -- lifecycle -----------------------------------------------------------
    def attach(self, instance) -> None:
        if not self.config.sync_replication:
            self.queue_for(instance)
        if self.config.repair_interval is not None:
            # Only the primary originates updates, so only it pushes repairs;
            # the gate re-checks at every round so it follows ChangePrimary.
            repairer = AntiEntropyRepairer(
                instance, self.config.repair_interval,
                queue_for=lambda inst: self._queues.get(inst.instance_id),
                should_push=self.is_primary,
                batch_bytes=self.config.batch_bytes)
            self._repairers[instance.instance_id] = repairer
            repairer.start()

    def detach(self, instance) -> None:
        repairer = self._repairers.pop(instance.instance_id, None)
        if repairer is not None:
            repairer.stop()
        queue = self._queues.pop(instance.instance_id, None)
        if queue is not None:
            queue.stop()  # anything still queued is counted pending_dropped

    def queue_for(self, instance) -> ReplicationQueue:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            queue = ReplicationQueue(instance, self.config.queue_interval,
                                     retry_policy=self.retry_policy,
                                     batch_bytes=self.config.batch_bytes)
            self._queues[instance.instance_id] = queue
            queue.start()
        return queue

    # -- helpers -------------------------------------------------------------
    def is_primary(self, instance) -> bool:
        return instance.instance_id == self.config.primary_id

    def primary_ref(self, instance):
        ref = instance.peers.get(self.config.primary_id)
        if ref is None:
            raise ProtocolError(
                f"{instance.instance_id}: primary {self.config.primary_id!r} "
                f"not in peer table {sorted(instance.peers)}")
        return ref

    def set_primary(self, new_primary_id: str, now: float) -> str:
        previous = self.config.primary_id
        self.config.primary_id = new_primary_id
        self.config.history.append((now, new_primary_id))
        return previous

    def _forward(self, instance, method: str, args: dict,
                 size: int) -> Generator:
        """Forward a request to the primary with retry/backoff.

        The target is re-resolved from the shared config on every attempt,
        so retries survive a primary change (or restart) mid-request.
        """
        def make_call():
            ref = self.primary_ref(instance)
            return instance.node.call(ref.node, method, args, size=size)

        result = yield from call_with_retries(
            instance.sim, make_call, self.retry_policy,
            rng=instance.rng.stream(f"{instance.instance_id}.fwd"),
            label=method)
        return result

    # -- data path -------------------------------------------------------------
    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        if self.is_primary(instance):
            version = yield from instance.local_put(key, data, tags=tags)
            args = self.update_args(instance, key, version, data)
            if self.config.sync_replication:
                yield from self.broadcast_sync(instance, "replica_update",
                                               args, size=len(data) + 512)
            else:
                self.queue_for(instance).enqueue(args)
            return {"version": version, "region": instance.region,
                    "primary": instance.instance_id, "consistency": self.name}
        # Not the primary: forward (never re-forward a forwarded request —
        # the primary may have just changed under us).
        if src != "app":
            raise ProtocolError(
                f"{instance.instance_id}: forwarded put arrived at "
                f"non-primary (primary is {self.config.primary_id})")
        self.forwarded_puts += 1
        result = yield from self._forward(
            instance, "forward_put",
            {"key": key, "data": data, "tags": tuple(tags),
             "origin": instance.instance_id},
            size=len(data) + 512)
        return result

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        target = self.config.get_from
        if target == "primary" and not self.is_primary(instance):
            target = self.config.primary_id
        if target and target != instance.instance_id and target != "primary":
            ref = instance.peers.get(target)
            if ref is not None:
                result = yield instance.node.call(
                    ref.node, "peer_get", {"key": key, "version": version})
                return result
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version}

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        """Removes follow the same propagation mode as puts: applied at the
        primary, replicated synchronously (copy) or via the queue (queue),
        and forwarded from backups — never broadcast out-of-band."""
        if self.is_primary(instance):
            removed = yield from instance.local_remove(key, version)
            args = self.remove_args(instance, key, version)
            if self.config.sync_replication:
                yield from self.broadcast_sync(instance, "replica_remove",
                                               args, size=256)
            else:
                self.queue_for(instance).enqueue(args)
            return {"removed": removed, "primary": instance.instance_id}
        if src != "app":
            raise ProtocolError(
                f"{instance.instance_id}: forwarded remove arrived at "
                f"non-primary (primary is {self.config.primary_id})")
        self.forwarded_removes += 1
        result = yield from self._forward(
            instance, "forward_remove",
            {"key": key, "version": version, "origin": instance.instance_id},
            size=256)
        return result

    def drain(self, instance) -> Generator:
        queue = self._queues.get(instance.instance_id)
        if queue is not None:
            yield from queue.drain()

    def pending_count(self, instance) -> int:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            return 0
        return len(queue.pending) + queue.backlog_size()
