"""Protocol base class, replication queue, and broadcast helpers.

A single protocol object is shared by every instance of one Wiera
instance: all its methods take the acting ``instance`` explicitly and any
per-instance state (replication queues) is keyed by instance id.  Sharing
one object is what makes runtime changes cheap — flipping the primary is
one field write in a shared config, after the TIM has quiesced the group.

Failure handling: a lazy update whose send fails is *never* silently
dropped.  It moves to a per-peer retry backlog and is re-shipped with
capped exponential backoff (:class:`~repro.faults.RetryPolicy`); entries
that exhaust their attempts are left to the anti-entropy repairer
(:mod:`repro.core.consistency.repair`).  The queue tracks every
(peer, key) delivery failure until something — a retry, a fresh write, or
a repair round — lands that key on that peer, so ``outstanding_failures``
is the live count of known replica divergence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.faults.retry import RetryPolicy
from repro.obs.api import get_obs


class ProtocolError(RuntimeError):
    pass


class GlobalProtocol:
    """Interface shared by all consistency protocols."""

    name = "abstract"

    #: per-peer replication batching threshold in payload bytes.  0 (the
    #: default) disables the batch data plane entirely — every replica
    #: update is its own RPC, bit-identical to the pre-batching code.  Any
    #: positive value routes replica traffic through ``call_batch`` /
    #: ``send_oneway_batch`` and makes replication queues flush early once
    #: their pending payload exceeds it (the adaptive size trigger).
    batch_bytes: float = 0.0

    def attach(self, instance) -> None:
        """Called when this protocol becomes active on ``instance``."""

    def detach(self, instance) -> None:
        """Called when the protocol is being replaced on ``instance``."""

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        """Default read: local replica, tagging whether it is known-latest."""
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version}

    def on_replica_update(self, instance, args: dict) -> Generator:
        """Default replica-update handling: last-write-wins merge."""
        result = yield from instance.apply_replica_update(
            key=args["key"], version=args["version"],
            last_modified=args["last_modified"], data=args["data"],
            origin=args.get("origin", ""))
        return result

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        """Default remove: local + asynchronous propagation.

        This matches the *eventual* propagation mode; protocols with a
        synchronous or forwarded write path (MultiPrimaries,
        PrimaryBackup) override it so removes follow the same propagation
        mode as puts.
        """
        removed = yield from instance.local_remove(key, version)
        self.broadcast_async(instance, "replica_remove",
                             {"key": key, "version": version}, size=256)
        return {"removed": removed}

    def on_replica_remove(self, instance, args: dict) -> Generator:
        removed = yield from instance.local_remove(args["key"],
                                                   args.get("version"))
        return {"removed": removed}

    def drain(self, instance) -> Generator:
        return
        yield  # pragma: no cover

    def pending_count(self, instance) -> int:
        """Updates still queued/backlogged for ``instance`` (0 if none)."""
        return 0

    # -- shared helpers -------------------------------------------------------
    @staticmethod
    def update_args(instance, key: str, version: int, data: bytes) -> dict:
        record = instance.meta.get_record(key)
        meta = record.versions[version]
        return {"key": key, "version": version,
                "last_modified": meta.last_modified,
                "origin": instance.instance_id, "data": data}

    @staticmethod
    def remove_args(instance, key: str, version: Optional[int]) -> dict:
        return {"op": "remove", "key": key, "version": version,
                "last_modified": instance.sim.now,
                "origin": instance.instance_id}

    def broadcast_sync(self, instance, method: str, args: dict,
                       size: int) -> Generator:
        """Call every peer in parallel; wait for all replies.

        A peer that is down/partitioned raises — MultiPrimaries treats that
        as a failed put (strong consistency cannot silently lose a replica).
        On the batch data plane a per-entry application failure raises too:
        synchronous broadcast has no requeue machinery to hand it to.
        """
        if self.batch_bytes > 0:
            calls = [instance.node.call_batch(peer.node,
                                              [(method, args, size)])
                     for peer in instance.peers.values()]
            if calls:
                replies = yield instance.sim.all_of(calls)
                for results in replies:
                    for res in results:
                        if not res.get("ok"):
                            raise ProtocolError(
                                f"batched {method} failed at peer: "
                                f"{res.get('error')}")
            return
        calls = [instance.node.call(peer.node, method, args, size=size)
                 for peer in instance.peers.values()]
        if calls:
            yield instance.sim.all_of(calls)

    def broadcast_async(self, instance, method: str, args: dict,
                        size: int) -> None:
        if self.batch_bytes > 0:
            for peer in instance.peers.values():
                instance.node.send_oneway_batch(peer.node,
                                                [(method, args, size)])
            return
        for peer in instance.peers.values():
            instance.node.send_oneway(peer.node, method, args, size=size)


def _entry_sort_key(args: dict) -> tuple:
    """Ordering key for queued entries: LWW time, then version.

    A remove-all (version None) supersedes every earlier write of the key
    at the same timestamp, hence the ``inf`` version stand-in.
    """
    version = args.get("version")
    return (args["last_modified"],
            float("inf") if version is None else version)


def _supersedes(new: dict, old: dict) -> bool:
    """True if ``new`` may replace ``old`` in a pending/backlog slot."""
    return _entry_sort_key(new) >= _entry_sort_key(old)


def _entry_size(args: dict) -> int:
    data = args.get("data")
    return len(data) + 512 if data is not None else 256


def _entry_method(args: dict) -> str:
    return ("replica_remove" if args.get("op") == "remove"
            else "replica_update")


class ReplicationQueue:
    """Per-instance queue of lazy updates (the ``queue`` response).

    Coalesces by key — if a key is updated twice before the flush, only the
    newest version ships, "to reduce on update traffic".  A background
    process flushes every ``interval`` seconds; ``drain`` flushes
    immediately and waits for delivery (used before consistency switches).

    Failed sends go to a per-peer retry backlog (version-aware: a failed
    entry never overwrites a newer one pending for the same key) and are
    retried with capped, jittered exponential backoff on subsequent flush
    rounds.  Entries that exhaust ``retry_policy.max_attempts`` rounds are
    abandoned to anti-entropy repair; the (peer, key) divergence stays in
    ``outstanding_failures`` until something delivers the key.

    With ``batch_bytes > 0`` the queue uses the batch data plane: a flush
    groups pending + due-retry entries *by peer* and ships one
    ``call_batch`` per peer (one envelope, one egress reservation, one
    process) instead of one RPC per (key, peer).  Per-entry outcomes feed
    the same requeue/backoff/outstanding machinery — a poisoned entry
    requeues alone, a transport failure requeues the whole batch.  The
    queue also flushes *early* whenever the pending payload exceeds
    ``batch_bytes`` (the group-commit size trigger), bounding staleness
    under write bursts without shrinking the quiet-time flush interval.
    """

    def __init__(self, instance, interval: float,
                 retry_policy: Optional[RetryPolicy] = None,
                 batch_bytes: float = 0.0):
        self.instance = instance
        self.interval = interval
        self.retry_policy = retry_policy or RetryPolicy()
        self.batch_bytes = batch_bytes
        self.pending: OrderedDict[str, dict] = OrderedDict()
        self._pending_bytes = 0
        self._kick = None   # size-trigger event armed by the flush loop
        self._backlog: dict[str, OrderedDict[str, dict]] = {}
        self._attempts: dict[str, int] = {}      # peer -> failed rounds
        self._retry_at: dict[str, float] = {}    # peer -> next-eligible time
        self._outstanding: set[tuple[str, str]] = set()  # (peer, key)
        self._rng = instance.rng.stream(f"{instance.instance_id}.replq")
        self._proc = None
        self.flushes = 0
        self.updates_sent = 0
        self.coalesced = 0
        self.send_failures = 0
        self.retries = 0
        self.repaired = 0
        self.abandoned = 0
        self.batches = 0
        metrics = get_obs(instance.sim).metrics
        labels = {"instance": instance.instance_id}
        self._m_failures = metrics.counter("replication.send_failures",
                                           **labels)
        self._m_retries = metrics.counter("replication.retries", **labels)
        self._m_repaired = metrics.counter("replication.repaired", **labels)
        self._m_abandoned = metrics.counter("replication.abandoned", **labels)
        self._m_dropped = metrics.counter("replication.pending_dropped",
                                          **labels)
        self._m_batches = metrics.counter("replication.batches", **labels)
        self._h_batch_entries = metrics.histogram("replication.batch_entries",
                                                  **labels)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.instance.sim.process(
                self._loop(), name=f"replq:{self.instance.instance_id}")

    def stop(self) -> None:
        """Stop the flush loop; surface anything still queued as dropped."""
        dropped = len(self.pending) + self.backlog_size()
        if dropped:
            self._m_dropped.inc(dropped)
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("queue stopped")
        self._proc = None

    # -- bookkeeping ----------------------------------------------------------
    def backlog_size(self) -> int:
        return sum(len(entries) for entries in self._backlog.values())

    @property
    def outstanding_failures(self) -> int:
        """(peer, key) deliveries that failed and have not yet been
        repaired by a retry, a newer write, or anti-entropy."""
        return len(self._outstanding)

    def mark_delivered(self, peer_id: str, key: str) -> None:
        """Record that ``key`` reached ``peer_id`` (any path, incl. repair)."""
        if (peer_id, key) in self._outstanding:
            self._outstanding.discard((peer_id, key))
            self.repaired += 1
            self._m_repaired.inc()
        backlog = self._backlog.get(peer_id)
        if backlog is not None:
            backlog.pop(key, None)
            if not backlog:
                self._backlog.pop(peer_id, None)

    def enqueue(self, args: dict) -> None:
        key = args["key"]
        current = self.pending.get(key)
        if current is not None:
            self.coalesced += 1
            if not _supersedes(args, current):
                return
            self._pending_bytes -= _entry_size(current)
        self.pending[key] = args
        self.pending.move_to_end(key)
        self._pending_bytes += _entry_size(args)
        # A fresh update ships to every peer on the next flush, making any
        # older backlogged copy of the key redundant.
        for peer_id in list(self._backlog):
            stale = self._backlog[peer_id].get(key)
            if stale is not None and _supersedes(args, stale):
                self._backlog[peer_id].pop(key)
                if not self._backlog[peer_id]:
                    self._backlog.pop(peer_id)
        # Adaptive size trigger: a pending payload past the batch budget
        # flushes now rather than waiting out the timer (group commit).
        if (self.batch_bytes > 0
                and self._pending_bytes >= self.batch_bytes
                and self._kick is not None and not self._kick.triggered):
            self._kick.succeed()

    def _requeue(self, peer_id: str, args: dict) -> None:
        """Put a failed send back for retry, never burying a newer entry."""
        key = args["key"]
        fresh = self.pending.get(key)
        if fresh is not None and _supersedes(fresh, args):
            return  # the next flush ships something newer to this peer
        backlog = self._backlog.setdefault(peer_id, OrderedDict())
        current = backlog.get(key)
        if current is not None and not _supersedes(args, current):
            return
        backlog[key] = args
        backlog.move_to_end(key)

    # -- the flush machinery ----------------------------------------------------
    def _loop(self) -> Generator:
        from repro.sim.kernel import Interrupt
        sim = self.instance.sim
        try:
            while True:
                if self.batch_bytes > 0:
                    # Race the flush timer against the size trigger armed
                    # in enqueue(); whichever fires first flushes.
                    self._kick = sim.event()
                    if self._pending_bytes >= self.batch_bytes:
                        # Enqueues that landed while the loop was flushing
                        # (kick unarmed) already crossed the threshold.
                        self._kick.succeed()
                    timer = sim.timeout(self.interval)
                    yield sim.any_of([timer, self._kick])
                    self._kick = None
                    timer.cancel()   # no-op if the timer won the race
                    yield from self.flush()
                else:
                    yield sim.timeout(self.interval)
                    yield from self.flush()
        except Interrupt:
            return

    def _reap_departed_peers(self) -> None:
        """Forget retry state for peers no longer in the peer table.

        A detach or rebalance that shrinks ``instance.peers`` used to reap
        only the backlog (entries for missing peers can never ship); the
        per-peer ``_attempts``/``_retry_at`` bookkeeping leaked forever.
        """
        peers = self.instance.peers
        for state in (self._attempts, self._retry_at):
            for peer_id in [p for p in state if p not in peers]:
                del state[peer_id]

    def flush(self) -> Generator:
        """Ship pending updates plus due retries, in parallel per peer."""
        self._reap_departed_peers()
        if self.batch_bytes > 0:
            yield from self._flush_batched()
            return
        instance = self.instance
        now = instance.sim.now
        batch = list(self.pending.values())
        self.pending.clear()
        self._pending_bytes = 0
        if batch:
            self.flushes += 1
        calls = []  # (call, peer_id, args, is_retry)
        for args in batch:
            size = _entry_size(args)
            method = _entry_method(args)
            for peer_id, peer in instance.peers.items():
                call = instance.node.call(peer.node, method, args, size=size)
                # A call may fail (peer down) before we get around to
                # yielding on it; pre-defuse so the kernel treats the
                # failure as handled either way.
                call.defuse()
                calls.append((call, peer_id, args, False))
        # Due retries from the per-peer backlog.
        for peer_id in list(self._backlog):
            if now < self._retry_at.get(peer_id, 0.0):
                continue
            peer = instance.peers.get(peer_id)
            if peer is None:
                continue  # peer left the table; repair owns it now
            entries = list(self._backlog.pop(peer_id).values())
            for args in entries:
                call = instance.node.call(peer.node, _entry_method(args),
                                          args, size=_entry_size(args))
                call.defuse()
                calls.append((call, peer_id, args, True))
                self.retries += 1
                self._m_retries.inc()
        self.updates_sent += len(calls)
        failed_peers: set[str] = set()
        healthy_peers: set[str] = set()
        for call, peer_id, args, is_retry in calls:
            try:
                yield call
            except Exception:
                if not is_retry:
                    self.send_failures += 1
                    self._m_failures.inc()
                self._outstanding.add((peer_id, args["key"]))
                self._requeue(peer_id, args)
                failed_peers.add(peer_id)
            else:
                healthy_peers.add(peer_id)
                self.mark_delivered(peer_id, args["key"])
        self._schedule_retries(failed_peers, healthy_peers, now)

    def _flush_batched(self) -> Generator:
        """Batched flush: group pending + due retries by peer, one batch
        RPC per peer, per-entry outcomes into the retry machinery."""
        instance = self.instance
        now = instance.sim.now
        batch = list(self.pending.values())
        self.pending.clear()
        self._pending_bytes = 0
        if batch:
            self.flushes += 1
        # (args, is_retry) per peer, pending first then that peer's due
        # retries — the destination applies them in this order.
        per_peer: dict[str, list[tuple[dict, bool]]] = {}
        if batch:
            for peer_id in instance.peers:
                per_peer[peer_id] = [(args, False) for args in batch]
        for peer_id in list(self._backlog):
            if now < self._retry_at.get(peer_id, 0.0):
                continue
            if peer_id not in instance.peers:
                continue  # peer left the table; repair owns it now
            entries = list(self._backlog.pop(peer_id).values())
            bucket = per_peer.setdefault(peer_id, [])
            for args in entries:
                bucket.append((args, True))
                self.retries += 1
                self._m_retries.inc()
        calls = []  # (call, peer_id, entries)
        for peer_id, entries in per_peer.items():
            peer = instance.peers[peer_id]
            wire = [(_entry_method(args), args, _entry_size(args))
                    for args, _ in entries]
            call = instance.node.call_batch(peer.node, wire)
            # Pre-defuse: the transport may fail before we yield on it.
            call.defuse()
            calls.append((call, peer_id, entries))
            self.batches += 1
            self._m_batches.inc()
            self._h_batch_entries.observe(len(entries))
            self.updates_sent += len(entries)
        failed_peers: set[str] = set()
        healthy_peers: set[str] = set()
        for call, peer_id, entries in calls:
            try:
                results = yield call
            except Exception:
                # Transport failure (crash/partition mid-batch): nothing
                # was acknowledged, so every entry is outstanding.
                for args, is_retry in entries:
                    self._note_entry_failure(peer_id, args, is_retry)
                failed_peers.add(peer_id)
            else:
                healthy_peers.add(peer_id)
                for (args, is_retry), res in zip(entries, results):
                    if res.get("ok"):
                        self.mark_delivered(peer_id, args["key"])
                    else:
                        # Poisoned entry: the batch landed but this entry
                        # was rejected — requeue it alone.
                        self._note_entry_failure(peer_id, args, is_retry)
                        failed_peers.add(peer_id)
        self._schedule_retries(failed_peers, healthy_peers, now)

    def _note_entry_failure(self, peer_id: str, args: dict,
                            is_retry: bool) -> None:
        if not is_retry:
            self.send_failures += 1
            self._m_failures.inc()
        self._outstanding.add((peer_id, args["key"]))
        self._requeue(peer_id, args)

    def _schedule_retries(self, failed_peers: set, healthy_peers: set,
                          now: float) -> None:
        policy = self.retry_policy
        for peer_id in healthy_peers - failed_peers:
            # The peer answered again: forget its backoff history.
            self._attempts.pop(peer_id, None)
            self._retry_at.pop(peer_id, None)
        for peer_id in failed_peers:
            attempts = self._attempts.get(peer_id, 0) + 1
            if attempts >= policy.max_attempts:
                # Capped out: hand the divergence to anti-entropy repair.
                abandoned = self._backlog.pop(peer_id, None)
                if abandoned:
                    self.abandoned += len(abandoned)
                    self._m_abandoned.inc(len(abandoned))
                self._attempts.pop(peer_id, None)
                self._retry_at.pop(peer_id, None)
            else:
                self._attempts[peer_id] = attempts
                self._retry_at[peer_id] = now + policy.backoff(
                    attempts - 1, self._rng)

    def drain(self) -> Generator:
        """Flush until empty; give the retry backlog a bounded last chance."""
        while self.pending:
            yield from self.flush()
        rounds = 0
        while self.backlog_size() and rounds < self.retry_policy.max_attempts:
            yield self.instance.sim.timeout(
                self.retry_policy.backoff(rounds, self._rng))
            self._retry_at.clear()  # due immediately: we are draining
            yield from self.flush()
            rounds += 1
