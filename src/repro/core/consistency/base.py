"""Protocol base class, replication queue, and broadcast helpers.

A single protocol object is shared by every instance of one Wiera
instance: all its methods take the acting ``instance`` explicitly and any
per-instance state (replication queues) is keyed by instance id.  Sharing
one object is what makes runtime changes cheap — flipping the primary is
one field write in a shared config, after the TIM has quiesced the group.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional


class ProtocolError(RuntimeError):
    pass


class GlobalProtocol:
    """Interface shared by all consistency protocols."""

    name = "abstract"

    def attach(self, instance) -> None:
        """Called when this protocol becomes active on ``instance``."""

    def detach(self, instance) -> None:
        """Called when the protocol is being replaced on ``instance``."""

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        """Default read: local replica, tagging whether it is known-latest."""
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version}

    def on_replica_update(self, instance, args: dict) -> Generator:
        """Default replica-update handling: last-write-wins merge."""
        result = yield from instance.apply_replica_update(
            key=args["key"], version=args["version"],
            last_modified=args["last_modified"], data=args["data"],
            origin=args.get("origin", ""))
        return result

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None) -> Generator:
        removed = yield from instance.local_remove(key, version)
        self.broadcast_async(instance, "replica_remove",
                             {"key": key, "version": version}, size=256)
        return {"removed": removed}

    def on_replica_remove(self, instance, args: dict) -> Generator:
        removed = yield from instance.local_remove(args["key"],
                                                   args.get("version"))
        return {"removed": removed}

    def drain(self, instance) -> Generator:
        return
        yield  # pragma: no cover

    # -- shared helpers -------------------------------------------------------
    @staticmethod
    def update_args(instance, key: str, version: int, data: bytes) -> dict:
        record = instance.meta.get_record(key)
        meta = record.versions[version]
        return {"key": key, "version": version,
                "last_modified": meta.last_modified,
                "origin": instance.instance_id, "data": data}

    @staticmethod
    def broadcast_sync(instance, method: str, args: dict,
                       size: int) -> Generator:
        """Call every peer in parallel; wait for all replies.

        A peer that is down/partitioned raises — MultiPrimaries treats that
        as a failed put (strong consistency cannot silently lose a replica).
        """
        calls = [instance.node.call(peer.node, method, args, size=size)
                 for peer in instance.peers.values()]
        if calls:
            yield instance.sim.all_of(calls)

    @staticmethod
    def broadcast_async(instance, method: str, args: dict, size: int) -> None:
        for peer in instance.peers.values():
            instance.node.send_oneway(peer.node, method, args, size=size)


class ReplicationQueue:
    """Per-instance queue of lazy updates (the ``queue`` response).

    Coalesces by key — if a key is updated twice before the flush, only the
    newest version ships, "to reduce on update traffic".  A background
    process flushes every ``interval`` seconds; ``drain`` flushes
    immediately and waits for delivery (used before consistency switches).
    """

    def __init__(self, instance, interval: float):
        self.instance = instance
        self.interval = interval
        self.pending: OrderedDict[str, dict] = OrderedDict()
        self._proc = None
        self.flushes = 0
        self.updates_sent = 0
        self.coalesced = 0
        self.send_failures = 0

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.instance.sim.process(
                self._loop(), name=f"replq:{self.instance.instance_id}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("queue stopped")
        self._proc = None

    def enqueue(self, args: dict) -> None:
        if args["key"] in self.pending:
            self.coalesced += 1
        self.pending[args["key"]] = args
        self.pending.move_to_end(args["key"])

    def _loop(self) -> Generator:
        from repro.sim.kernel import Interrupt
        try:
            while True:
                yield self.instance.sim.timeout(self.interval)
                yield from self.flush()
        except Interrupt:
            return

    def flush(self) -> Generator:
        """Ship everything pending to all peers, in parallel per peer."""
        if not self.pending:
            return
        batch = list(self.pending.values())
        self.pending.clear()
        self.flushes += 1
        instance = self.instance
        calls = []
        for args in batch:
            size = len(args["data"]) + 512
            for peer in instance.peers.values():
                call = instance.node.call(peer.node, "replica_update",
                                          args, size=size)
                # A call may fail (peer down) before we get around to
                # yielding on it; pre-defuse so the kernel treats the
                # failure as handled either way.
                call.defuse()
                calls.append(call)
        self.updates_sent += len(calls)
        for call in calls:
            try:
                yield call
            except Exception:
                self.send_failures += 1

    def drain(self) -> Generator:
        while self.pending:
            yield from self.flush()
