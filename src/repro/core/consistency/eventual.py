"""Eventual consistency (Figure 4).

A put stores to the local replica and queues the update for background
distribution to all other regions; the application sees only the local
store latency (<10 ms in Fig. 7).  There is no global order of puts, so
each instance resolves write-write conflicts on incoming updates with
last-write-wins (§4.2).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.consistency.base import GlobalProtocol, ReplicationQueue


class EventualConsistencyProtocol(GlobalProtocol):
    """Local commit + lazy replication + LWW conflict resolution."""

    name = "eventual"

    def __init__(self, queue_interval: float = 1.0):
        self.queue_interval = queue_interval
        self._queues: dict[str, ReplicationQueue] = {}

    def attach(self, instance) -> None:
        queue = ReplicationQueue(instance, self.queue_interval)
        self._queues[instance.instance_id] = queue
        queue.start()

    def detach(self, instance) -> None:
        queue = self._queues.pop(instance.instance_id, None)
        if queue is not None:
            queue.stop()

    def queue_for(self, instance) -> ReplicationQueue:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            queue = ReplicationQueue(instance, self.queue_interval)
            self._queues[instance.instance_id] = queue
            queue.start()
        return queue

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        version = yield from instance.local_put(key, data, tags=tags)
        args = self.update_args(instance, key, version, data)
        self.queue_for(instance).enqueue(args)
        return {"version": version, "region": instance.region,
                "consistency": self.name}

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        # Eventual consistency returns the local version (§3.2.1 default).
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version, "strong": False}

    def drain(self, instance) -> Generator:
        queue = self._queues.get(instance.instance_id)
        if queue is not None:
            yield from queue.drain()
