"""Eventual consistency (Figure 4).

A put stores to the local replica and queues the update for background
distribution to all other regions; the application sees only the local
store latency (<10 ms in Fig. 7).  There is no global order of puts, so
each instance resolves write-write conflicts on incoming updates with
last-write-wins (§4.2).

Failed distributions are retried with backoff by the queue itself; when
``repair_interval`` is set, every instance additionally runs an
anti-entropy repairer so replicas that diverged through a long outage
still converge (see :mod:`repro.core.consistency.repair`).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.consistency.base import GlobalProtocol, ReplicationQueue
from repro.core.consistency.repair import AntiEntropyRepairer
from repro.faults.retry import RetryPolicy


class EventualConsistencyProtocol(GlobalProtocol):
    """Local commit + lazy replication + LWW conflict resolution."""

    name = "eventual"

    def __init__(self, queue_interval: float = 1.0,
                 repair_interval: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 batch_bytes: float = 0.0):
        self.queue_interval = queue_interval
        self.repair_interval = repair_interval
        self.retry_policy = retry_policy or RetryPolicy()
        self.batch_bytes = batch_bytes
        self._queues: dict[str, ReplicationQueue] = {}
        self._repairers: dict[str, AntiEntropyRepairer] = {}

    def attach(self, instance) -> None:
        self.queue_for(instance)
        if self.repair_interval is not None:
            repairer = AntiEntropyRepairer(
                instance, self.repair_interval,
                queue_for=lambda inst: self._queues.get(inst.instance_id),
                batch_bytes=self.batch_bytes)
            self._repairers[instance.instance_id] = repairer
            repairer.start()

    def detach(self, instance) -> None:
        repairer = self._repairers.pop(instance.instance_id, None)
        if repairer is not None:
            repairer.stop()
        queue = self._queues.pop(instance.instance_id, None)
        if queue is not None:
            queue.stop()  # anything still queued is counted pending_dropped

    def queue_for(self, instance) -> ReplicationQueue:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            queue = ReplicationQueue(instance, self.queue_interval,
                                     retry_policy=self.retry_policy,
                                     batch_bytes=self.batch_bytes)
            self._queues[instance.instance_id] = queue
            queue.start()
        return queue

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        version = yield from instance.local_put(key, data, tags=tags)
        args = self.update_args(instance, key, version, data)
        self.queue_for(instance).enqueue(args)
        return {"version": version, "region": instance.region,
                "consistency": self.name}

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        # Eventual consistency returns the local version (§3.2.1 default).
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version, "strong": False}

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        """Remove locally, propagate lazily through the replication queue
        so remove propagation gets the same retry/repair guarantees."""
        removed = yield from instance.local_remove(key, version)
        self.queue_for(instance).enqueue(self.remove_args(instance, key,
                                                          version))
        return {"removed": removed}

    def drain(self, instance) -> Generator:
        queue = self._queues.get(instance.instance_id)
        if queue is not None:
            yield from queue.drain()

    def pending_count(self, instance) -> int:
        queue = self._queues.get(instance.instance_id)
        if queue is None:
            return 0
        return len(queue.pending) + queue.backlog_size()
