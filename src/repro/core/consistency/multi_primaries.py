"""MultiPrimaries consistency (Figure 3(a)).

Every replica accepts writes.  A put (1) acquires the global Zookeeper
lock for the key, (2) stores locally per the local policy, (3) broadcasts
the update to all other instances *synchronously*, and (4) releases the
lock.  The application-perceived put latency is therefore

    lock RTT + local store + max peer RTT + release RTT

which is what makes the ~400 ms baseline of Fig. 7 fall out of the WAN
geometry when the lock service sits in US East and replicas span four
regions.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.consistency.base import GlobalProtocol, ProtocolError


class MultiPrimariesProtocol(GlobalProtocol):
    """Strong consistency via a global lock and synchronous broadcast."""

    name = "multi_primaries"

    def __init__(self, batch_bytes: float = 0.0):
        self.batch_bytes = batch_bytes
        self.locked_puts = 0

    def attach(self, instance) -> None:
        if instance.lock_client is None:
            raise ProtocolError(
                f"{instance.instance_id}: MultiPrimaries requires a global "
                "lock client (Zookeeper)")

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        yield from instance.lock_client.acquire(key)
        try:
            version = yield from instance.local_put(key, data, tags=tags)
            args = self.update_args(instance, key, version, data)
            yield from self.broadcast_sync(instance, "replica_update", args,
                                           size=len(data) + 512)
            self.locked_puts += 1
        except GeneratorExit:
            # The operation is being torn down (simulation shutdown); we
            # cannot issue the release RPC from a closing generator — drop
            # the handle and let the lease expiry reclaim the lock, the
            # same way Zookeeper reclaims a crashed client's ephemerals.
            instance.lock_client.held.discard(key)
            raise
        except BaseException:
            yield from instance.lock_client.release(key)
            raise
        yield from instance.lock_client.release(key)
        return {"version": version, "region": instance.region,
                "consistency": self.name}

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        """Removes are writes: same lock + synchronous broadcast as puts.

        The base-class async broadcast would let a concurrent get on a peer
        observe the key after the remove returned — a silent violation of
        the strong-consistency contract this protocol sells.
        """
        yield from instance.lock_client.acquire(key)
        try:
            removed = yield from instance.local_remove(key, version)
            args = self.remove_args(instance, key, version)
            yield from self.broadcast_sync(instance, "replica_remove", args,
                                           size=256)
        except GeneratorExit:
            instance.lock_client.held.discard(key)
            raise
        except BaseException:
            yield from instance.lock_client.release(key)
            raise
        yield from instance.lock_client.release(key)
        return {"removed": removed, "strong": True}

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        # All replicas are synchronously up to date: local read is latest.
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version, "strong": True}

    def on_replica_update(self, instance, args: dict) -> Generator:
        # The sender holds the global lock for this key, so the update can
        # be applied directly — no conflict is possible (§4.2).
        result = yield from instance.apply_replica_update(
            key=args["key"], version=args["version"],
            last_modified=args["last_modified"], data=args["data"],
            origin=args.get("origin", ""))
        return result
