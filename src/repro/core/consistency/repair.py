"""Anti-entropy repair: periodic per-peer digest exchange.

The retry backlog (:class:`~repro.core.consistency.base.ReplicationQueue`)
caps its attempts, so a long outage can still leave a replica behind.  The
:class:`AntiEntropyRepairer` is the backstop: every ``interval`` seconds it
pulls each peer's key digest (``{key: (latest_version, last_modified)}``)
and pushes a full ``replica_update`` for every key where the local latest
wins last-write-wins.  Push-only repair cannot resurrect *removed* keys on
the remote side (a purged record is indistinguishable from a never-seen
one); removes are instead retried by the queue itself.

Repair is off by default — an idle repairer would perturb experiment
timings — and enabled per Wiera instance via
``GlobalPolicySpec.repair_interval``.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.obs.api import get_obs
from repro.sim.kernel import Interrupt


class AntiEntropyRepairer:
    """One background digest/repair loop for one Tiera instance."""

    def __init__(self, instance, interval: float,
                 queue_for: Optional[Callable] = None,
                 should_push: Optional[Callable] = None,
                 batch_bytes: float = 0.0):
        self.instance = instance
        self.interval = interval
        # Hook back to the protocol's replication queue so a successful
        # repair clears the matching outstanding-failure record.
        self._queue_for = queue_for
        # Gate for asymmetric protocols (PrimaryBackup: only the primary
        # originates updates, so only it pushes repairs).
        self._should_push = should_push
        #: when positive, stale keys for a peer are pushed as size-bounded
        #: ``call_batch`` messages instead of one RPC per key (0 = off)
        self.batch_bytes = batch_bytes
        self._proc = None
        self.rounds = 0
        self.keys_pushed = 0
        self.batches = 0
        metrics = get_obs(instance.sim).metrics
        labels = {"instance": instance.instance_id}
        self._m_rounds = metrics.counter("repair.rounds", **labels)
        self._m_pushed = metrics.counter("repair.keys_pushed", **labels)

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.instance.sim.process(
                self._run(), name=f"repair:{self.instance.instance_id}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("repairer stopped")
        self._proc = None

    def _run(self) -> Generator:
        try:
            while True:
                yield self.instance.sim.timeout(self.interval)
                if self._should_push is not None \
                        and not self._should_push(self.instance):
                    continue
                yield from self.repair_round()
        except Interrupt:
            return

    def repair_round(self) -> Generator:
        """Compare digests with every reachable peer; push stale keys."""
        instance = self.instance
        self.rounds += 1
        self._m_rounds.inc()
        for peer_id, peer in list(instance.peers.items()):
            try:
                digest = yield instance.node.call(peer.node, "digest", {})
            except Exception:
                continue  # unreachable peer: next round will see it
            theirs = digest["keys"]
            yield from self._push_stale(peer_id, peer, theirs)

    def _push_stale(self, peer_id: str, peer, theirs: dict) -> Generator:
        instance = self.instance
        stale: list[dict] = []
        for record in list(instance.meta.records()):
            meta = record.latest()
            if meta is None:
                continue
            peer_version, peer_modified = theirs.get(record.key, (0, -1.0))
            if (meta.last_modified, meta.version) <= (peer_modified,
                                                      peer_version):
                # The peer is already current for this key — possibly via a
                # third replica's repair — so any recorded delivery failure
                # for it is resolved divergence, not divergence.
                self._mark_delivered(peer_id, record.key)
                continue
            try:
                args = yield from instance.replica_args(record.key,
                                                        meta.version)
            except Exception:
                continue  # lost locally between digest and read
            if self.batch_bytes > 0:
                stale.append(args)
                continue
            try:
                yield instance.node.call(peer.node, "replica_update", args,
                                         size=len(args["data"]) + 512)
            except Exception:
                continue  # still unreachable; retry next round
            self.keys_pushed += 1
            self._m_pushed.inc()
            self._mark_delivered(peer_id, record.key)
        if stale:
            yield from self._push_batched(peer_id, peer, stale)

    def _push_batched(self, peer_id: str, peer,
                      stale: list[dict]) -> Generator:
        """Ship stale keys in size-bounded batches; ack per entry."""
        instance = self.instance
        batch: list[tuple[str, dict, int]] = []
        batch_size = 0
        batches = [batch]
        for args in stale:
            size = len(args["data"]) + 512
            if batch and batch_size + size > self.batch_bytes:
                batch = []
                batch_size = 0
                batches.append(batch)
            batch.append(("replica_update", args, size))
            batch_size += size
        for entries in batches:
            try:
                results = yield instance.node.call_batch(peer.node, entries)
            except Exception:
                continue  # transport failure: whole batch retries next round
            self.batches += 1
            for (_method, args, _size), res in zip(entries, results):
                if not res.get("ok"):
                    continue  # entry failed at the peer; retry next round
                self.keys_pushed += 1
                self._m_pushed.inc()
                self._mark_delivered(peer_id, args["key"])

    def _mark_delivered(self, peer_id: str, key: str) -> None:
        if self._queue_for is not None:
            queue = self._queue_for(self.instance)
            if queue is not None:
                queue.mark_delivered(peer_id, key)
