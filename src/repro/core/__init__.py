"""Wiera: the geo-distributed management layer (the paper's contribution).

Public surface:

* :class:`WieraService` — WUI API (Table 1), GPM, TSM.
* :class:`GlobalPolicySpec` and friends — global policy definitions.
* Consistency protocols — MultiPrimaries / PrimaryBackup / Eventual.
* :class:`WieraClient` — application handle with proximity + failover.
* Monitors — latency/requests/cold-data dynamism (§3.2.3, §4.3).
"""

from repro.core.wiera import WieraError, WieraService
from repro.core.client import NoInstanceAvailableError, WieraClient
from repro.core.global_policy import (
    AutoscaleSpec,
    ChangePrimarySpec,
    ColdDataSpec,
    DynamicConsistencySpec,
    FailureSpec,
    GlobalPolicySpec,
    LoadBalanceSpec,
    RedundancySpec,
    RegionPlacement,
    ReplicaScaleSpec,
    ShardSpec,
    TierScaleSpec,
)
from repro.core.loadbalance import LoadBalancer
from repro.core.tim import TieraInstanceManager, WieraInstanceError
from repro.core.tsm import TieraServerManager
from repro.core.monitoring import (
    ColdDataCoordinator,
    LatencyMonitor,
    RequestsMonitor,
)
from repro.core.workload_monitor import WorkloadMonitor, WorkloadSnapshot
from repro.core.placement import DataPlacementAdvisor, PlacementAdvice
from repro.core.consistency import (
    EventualConsistencyProtocol,
    MultiPrimariesProtocol,
    PrimaryBackupConfig,
    PrimaryBackupProtocol,
)

__all__ = [
    "WieraService",
    "WieraError",
    "WieraClient",
    "NoInstanceAvailableError",
    "GlobalPolicySpec",
    "RegionPlacement",
    "DynamicConsistencySpec",
    "ChangePrimarySpec",
    "ColdDataSpec",
    "FailureSpec",
    "ShardSpec",
    "RedundancySpec",
    "AutoscaleSpec",
    "ReplicaScaleSpec",
    "TierScaleSpec",
    "TieraInstanceManager",
    "WieraInstanceError",
    "TieraServerManager",
    "LatencyMonitor",
    "RequestsMonitor",
    "ColdDataCoordinator",
    "MultiPrimariesProtocol",
    "PrimaryBackupProtocol",
    "PrimaryBackupConfig",
    "EventualConsistencyProtocol",
    "WorkloadMonitor",
    "WorkloadSnapshot",
    "DataPlacementAdvisor",
    "PlacementAdvice",
    "LoadBalanceSpec",
    "LoadBalancer",
]
