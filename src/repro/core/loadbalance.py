"""Get-load balancing via the ``forward`` response (§3.2.3).

RequestsMonitoring events fire "when a Tiera instance gets more requests
than other instances (and thus, may be overloaded)"; the matching
``forward`` response "forwards a request to another Tiera instance (e.g.,
for load balancing)".  This monitor implements that pair for read traffic:
when an instance's get rate exceeds a threshold while some peer sits well
below it, it installs a probabilistic redirect that sheds a fraction of
the overloaded instance's gets onto the coolest peer — and removes it
again (with hysteresis) once the load subsides.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.global_policy import LoadBalanceSpec
from repro.core.monitoring import MonitorBase
from repro.sim.kernel import Interrupt


class LoadBalancer(MonitorBase):
    """Installs/clears get redirects based on observed get rates."""

    def __init__(self, tim, spec: LoadBalanceSpec):
        super().__init__(tim)
        self.spec = spec
        self.redirects_installed = 0
        self.redirects_cleared = 0
        self._active: dict[str, str] = {}   # overloaded id -> target id

    def _rates(self) -> dict[str, float]:
        return {
            iid: rec.instance.gets_in_window(self.spec.window)
            / self.spec.window
            for iid, rec in self.tim.instances.items() if not rec.down
        }

    def _run(self) -> Generator:
        spec = self.spec
        try:
            while True:
                yield self.sim.timeout(spec.check_interval)
                rates = self._rates()
                if not rates:
                    continue
                # clear redirects whose source has cooled down
                for iid in list(self._active):
                    if rates.get(iid, 0.0) <= spec.clear_rps:
                        yield from self._clear(iid)
                # install redirects for overloaded instances
                for iid, rate in sorted(rates.items()):
                    if iid in self._active or rate <= spec.threshold_rps:
                        continue
                    target = self._coolest_peer(iid, rates)
                    if target is not None:
                        yield from self._install(iid, target)
        except Interrupt:
            return

    def _coolest_peer(self, overloaded: str,
                      rates: dict[str, float]) -> Optional[str]:
        spec = self.spec
        candidates = [
            (rate, iid) for iid, rate in rates.items()
            if iid != overloaded
            and rate < spec.peer_headroom * spec.threshold_rps
            and iid not in self._active
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def _install(self, overloaded: str, target: str) -> Generator:
        record = self.tim.instances[overloaded]
        yield self.tim.node.call(record.node, "ctl_set_redirect",
                                 {"peer": target,
                                  "fraction": self.spec.shed_fraction})
        self._active[overloaded] = target
        self.redirects_installed += 1

    def _clear(self, overloaded: str) -> Generator:
        record = self.tim.instances.get(overloaded)
        if record is not None and not record.down:
            yield self.tim.node.call(record.node, "ctl_set_redirect",
                                     {"peer": None})
        self._active.pop(overloaded, None)
        self.redirects_cleared += 1
