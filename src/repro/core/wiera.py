"""The Wiera service: WUI + Global Policy Manager + Tiera Server Manager.

One WieraService per deployment (the paper hosts it in US East alongside
Zookeeper).  Applications drive it through the Table 1 API —
``startInstances`` / ``stopInstances`` / ``getInstances`` — exposed both as
RPC handlers (for simulated remote applications) and as plain coroutine
methods for harness code.  Wiera manages instances and policies but stays
*off the data path*: object bytes only ever flow between Tiera instances.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.coordination.lock_service import LockService
from repro.core.global_policy import GlobalPolicySpec
from repro.core.tim import TieraInstanceManager
from repro.core.tsm import TieraServerManager
from repro.net.network import Host, Network
from repro.net.topology import US_EAST
from repro.shard.map import ShardManager, ShardMap
from repro.shard.ring import DEFAULT_VNODES
from repro.sim.kernel import Simulator
from repro.sim.rpc import Message, RpcNode


class WieraError(RuntimeError):
    pass


class WieraService:
    """The management plane of a Wiera deployment."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, network: Network,
                 host: Optional[Host] = None, region: str = US_EAST,
                 heartbeat_interval: float = 5.0):
        self.sim = sim
        self.network = network
        if host is None:
            host = network.add_host(f"wiera-{next(self._ids)}", region,
                                    provider="aws", vm="aws.t2_micro")
        self.host = host
        self.region = region
        self.node = RpcNode(sim, network, host, name=f"wui:{host.name}")
        # Zookeeper runs on the same instance as Wiera (§5 setup).
        self.lock_node = RpcNode(sim, network, host, name=f"zk:{host.name}")
        self.lock_service = LockService(sim, self.lock_node)
        # GPM state: policy id -> spec; TIMs: wiera instance id -> TIM.
        self.policies: dict[str, GlobalPolicySpec] = {}
        self.tims: dict[str, TieraInstanceManager] = {}
        # Sharded namespaces: base id -> ShardManager (each shard is an
        # ordinary Wiera instance named "{base}-s{i}" in self.tims).
        self.shard_managers: dict[str, ShardManager] = {}
        self.tsm = TieraServerManager(sim, self.node,
                                      heartbeat_interval=heartbeat_interval)
        self.node.register("start_instances", self.rpc_start_instances)
        self.node.register("stop_instances", self.rpc_stop_instances)
        self.node.register("get_instances", self.rpc_get_instances)
        self.node.register("get_shard_map", self.rpc_get_shard_map)

    # -- WUI API (Table 1), coroutine form -------------------------------------
    def start_instances(self, wiera_instance_id: str,
                        spec: GlobalPolicySpec) -> Generator:
        """Launch the Tiera instances of a new Wiera instance (§4.1 steps
        1-8); returns the instance list the application connects with."""
        if wiera_instance_id in self.tims:
            raise WieraError(f"wiera instance {wiera_instance_id!r} exists")
        self.policies[wiera_instance_id] = spec
        tim = TieraInstanceManager(self.sim, self.network, self,
                                   wiera_instance_id, spec, self.lock_node)
        self.tims[wiera_instance_id] = tim
        instances = yield from tim.launch()
        return instances

    def stop_instances(self, wiera_instance_id: str) -> Generator:
        tim = self.tims.pop(wiera_instance_id, None)
        if tim is None:
            return {"stopped": False}
        yield from tim.stop()
        self.policies.pop(wiera_instance_id, None)
        return {"stopped": True}

    def get_instances(self, wiera_instance_id: str) -> list[dict]:
        tim = self.tims.get(wiera_instance_id)
        if tim is None:
            raise WieraError(f"no wiera instance {wiera_instance_id!r}")
        return tim.instance_list()

    # -- sharded namespaces (repro.shard) -------------------------------------
    def start_sharded_instances(self, base_id: str, spec: GlobalPolicySpec,
                                shards: int,
                                vnodes: int = DEFAULT_VNODES) -> Generator:
        """Launch ``shards`` Wiera instances partitioning one namespace
        and publish the epoch-1 shard map."""
        if base_id in self.shard_managers:
            raise WieraError(f"sharded namespace {base_id!r} exists")
        if base_id in self.tims:
            raise WieraError(f"{base_id!r} already names a wiera instance")
        manager = ShardManager(self.sim, self, base_id, spec, shards,
                               vnodes=vnodes)
        self.shard_managers[base_id] = manager
        try:
            shard_map = yield from manager.launch()
        except BaseException:
            self.shard_managers.pop(base_id, None)
            raise
        return shard_map

    def shard_manager(self, base_id: str) -> ShardManager:
        try:
            return self.shard_managers[base_id]
        except KeyError:
            raise WieraError(
                f"no sharded namespace {base_id!r}") from None

    def get_shard_map(self, base_id: str) -> ShardMap:
        return self.shard_manager(base_id).map

    # -- WUI API, RPC form ---------------------------------------------------
    def rpc_start_instances(self, msg: Message) -> Generator:
        instances = yield from self.start_instances(
            msg.args["wiera_instance_id"], msg.args["policy"])
        return {"instances": instances}

    def rpc_stop_instances(self, msg: Message) -> Generator:
        result = yield from self.stop_instances(msg.args["wiera_instance_id"])
        return result

    def rpc_get_instances(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.0001)
        return {"instances": self.get_instances(msg.args["wiera_instance_id"])}

    def rpc_get_shard_map(self, msg: Message) -> Generator:
        """Serve the current shard map (clients call this on a
        ``WrongShardError`` redirect to recover from a stale epoch)."""
        yield self.sim.timeout(0.0001)
        return {"map": self.get_shard_map(msg.args["base_id"])}

    # -- server bootstrap helper ----------------------------------------------
    def register_servers(self, servers) -> Generator:
        """Connect a collection of Tiera servers to the TSM."""
        for server in servers:
            yield from server.connect_to_tsm(self.node)
        self.tsm.start_heartbeats()

    def tim(self, wiera_instance_id: str) -> TieraInstanceManager:
        try:
            return self.tims[wiera_instance_id]
        except KeyError:
            raise WieraError(
                f"no wiera instance {wiera_instance_id!r}") from None
