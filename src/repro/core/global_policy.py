"""Global policy specification: what a Wiera instance *is*.

A :class:`GlobalPolicySpec` bundles the per-region placements (each with
its local Tiera policy), the consistency protocol between them, and the
optional dynamic rules — DynamicConsistency (Figure 5(a)), ChangePrimary
(Figure 5(b)), cold-data management (Figure 6(a)) and its centralized
variant (§5.3), and minimum-replica failure handling (§4.4).

Specs are plain data, produced either programmatically, by the policy DSL
compiler, or from the built-in policy library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.tiera.policy import LocalPolicy


@dataclass(frozen=True)
class RegionPlacement:
    """One Tiera instance to launch: where, on what, with which policy."""

    region: str
    local_policy: LocalPolicy
    provider: str = "aws"
    primary: bool = False
    server_hint: Optional[str] = None  # pin to a specific Tiera server


@dataclass(frozen=True)
class DynamicConsistencySpec:
    """Switch between strong/weak consistency on sustained latency
    violations (Figure 5(a): 800 ms / 30 s)."""

    op: str = "put"
    latency_threshold: float = 0.8
    period: float = 30.0
    strong: str = "multi_primaries"
    weak: str = "eventual"
    check_interval: float = 1.0
    probe_interval: float = 2.0
    #: give up on a single monitor probe RPC after this many seconds
    probe_timeout: float = 10.0


@dataclass(frozen=True)
class ChangePrimarySpec:
    """Move the primary towards the load (Figure 5(b))."""

    window: float = 30.0        # put-history window examined
    period: float = 15.0        # how long the imbalance must persist
    check_interval: float = 5.0


@dataclass(frozen=True)
class ColdDataSpec:
    """Demote data idle longer than ``age`` to a cheaper tier; optionally
    keep a single centralized replica for the whole Wiera instance."""

    age: float
    target_tier: str
    check_interval: float = 600.0
    bandwidth: Optional[float] = None
    centralize: bool = False
    central_region: Optional[str] = None


@dataclass(frozen=True)
class LoadBalanceSpec:
    """Shed a fraction of an overloaded instance's gets to a cool peer
    (the RequestsMonitoring + forward pairing of §3.2.3)."""

    threshold_rps: float = 50.0
    clear_rps: float = 30.0
    shed_fraction: float = 0.5
    window: float = 10.0
    check_interval: float = 5.0
    peer_headroom: float = 0.5


@dataclass(frozen=True)
class ShardSpec:
    """Partition the namespace across ``shards`` replica groups by
    consistent hashing (repro.shard).  ``shards=1`` means unsharded —
    the namespace runs as a single classic Wiera instance and every
    existing code path is bit-identical."""

    shards: int = 1
    vnodes: int = 128

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {self.vnodes}")


@dataclass(frozen=True)
class FailureSpec:
    """Keep at least ``min_replicas`` instances alive (§4.4)."""

    min_replicas: int = 1
    heartbeat_interval: float = 5.0
    missed_heartbeats: int = 3


@dataclass(frozen=True)
class ReplicaScaleSpec:
    """Autoscaler replica lever: extra replicas per shard once the shard
    lever is exhausted (demand still above band at ``max_shards``)."""

    #: extra instances per shard beyond the policy's placements
    max_extra: int = 1
    #: region to place extras in; None = the busiest region by observed
    #: demand (falling back to the first placement's region)
    region: Optional[str] = None

    def __post_init__(self):
        if self.max_extra < 1:
            raise ValueError(f"max_extra must be >= 1: {self.max_extra}")


@dataclass(frozen=True)
class TierScaleSpec:
    """Autoscaler tier lever: demote idle data to a cheaper tier during
    sustained calm (SkyStore-style cost awareness).  Promotion back to
    the fast tier rides the policy's existing get-triggered rules."""

    #: demote versions idle at least this many seconds
    idle_age: float
    #: policy-local tier name to demote into (e.g. "tier2")
    target_tier: str
    #: consult the Table 4 price book and skip demotion unless the
    #: target tier is actually cheaper per GB-month
    price_aware: bool = True

    def __post_init__(self):
        if self.idle_age < 0:
            raise ValueError(f"idle_age must be >= 0: {self.idle_age}")


@dataclass(frozen=True)
class AutoscaleSpec:
    """Close the loop: watch load signals, actuate shard / replica /
    tier levers (see :mod:`repro.autoscale`).

    The controller compares the offered rate against the deployment's
    current capacity (``shards x target_per_shard``).  Above the
    ``high_water`` fraction of capacity (or on any shed load) it grows
    the shard count toward demand; below ``low_water`` of the capacity
    *after* a removal, sustained for ``scale_down_windows`` consecutive
    decision windows, it shrinks by one shard.  ``cooldown`` seconds
    must pass after an action before the next, and at most
    ``max_actions_in_flight`` rebalances ever run at once — the
    controller never races its own migrations.

    ``autoscale=None`` on the global policy (the default) constructs no
    controller at all: runs are bit-identical to pre-autoscale builds.
    """

    #: ops/sec one shard is sized to absorb (calibrate from the
    #: scale-out bench: achieved_per_sim_sec at 1 shard)
    target_per_shard: float
    decision_interval: float = 5.0
    high_water: float = 0.85
    low_water: float = 0.45
    min_shards: int = 1
    max_shards: int = 8
    #: quiet period after an action completes before the next decision acts
    cooldown: float = 10.0
    #: consecutive calm windows required before scaling down
    scale_down_windows: int = 3
    #: hard cap on concurrently running scale actions (rebalances)
    max_actions_in_flight: int = 1
    #: shed arrivals tolerated per window before a forced scale-up
    shed_tolerance: int = 0
    replicas: Optional[ReplicaScaleSpec] = None
    tier: Optional[TierScaleSpec] = None

    def __post_init__(self):
        if self.target_per_shard <= 0:
            raise ValueError(
                f"target_per_shard must be positive: {self.target_per_shard}")
        if self.decision_interval <= 0:
            raise ValueError(f"decision_interval must be positive: "
                             f"{self.decision_interval}")
        if not 0.0 < self.low_water <= self.high_water:
            raise ValueError(
                f"need 0 < low_water <= high_water, got "
                f"{self.low_water}/{self.high_water}")
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1: {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(f"max_shards {self.max_shards} < min_shards "
                             f"{self.min_shards}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0: {self.cooldown}")
        if self.scale_down_windows < 1:
            raise ValueError(f"scale_down_windows must be >= 1: "
                             f"{self.scale_down_windows}")
        if self.max_actions_in_flight < 1:
            raise ValueError(f"max_actions_in_flight must be >= 1: "
                             f"{self.max_actions_in_flight}")


@dataclass(frozen=True)
class RedundancySpec:
    """Erasure-coded redundancy (repro.ec): store every object as
    ``k + m`` fragments on distinct instances, any ``k`` of which
    reconstruct it.  ``k=1`` degenerates to full replication with
    ``m + 1`` copies, so one knob covers both redundancy shapes.

    ``redundancy=None`` on the global policy (the default) constructs
    nothing — runs are bit-identical to pre-EC builds.
    """

    #: data fragments (1 = full replication)
    k: int = 1
    #: parity fragments = simultaneous fragment losses survived
    m: int = 2
    #: reject candidate schemes surviving fewer than this many losses
    durability_floor: int = 1
    #: optimizer read-latency budget (seconds to gather k fragments)
    read_budget: float = 0.5
    #: optimizer write-latency budget (seconds to land the ack floor)
    write_budget: float = 1.0
    #: fragment-repair loop period; None disables background repair
    repair_interval: Optional[float] = None
    #: repair pipeline window: objects repaired in flight per round.
    #: 1 (the default) keeps the serial seed repairer — one object fully
    #: probed, fetched, rebuilt, and re-pushed before the next begins —
    #: and is golden-pinned bit-identical.  >1 switches to the batched
    #: scanner + holder-local reconstruction pipeline (repro.ec.repair).
    repair_concurrency: int = 1
    #: (key-prefix, k, m) scheme overrides installed at launch
    overrides: tuple[tuple[str, int, int], ...] = ()
    #: (k, m) candidates the optimizer prices against each other
    candidates: tuple[tuple[int, int], ...] = (
        (1, 1), (1, 2), (2, 1), (2, 2), (4, 2))

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1: {self.k}")
        if self.m < 0:
            raise ValueError(f"m must be >= 0: {self.m}")
        if self.k + self.m > 255:
            raise ValueError(
                f"GF(256) caps k + m at 255: {self.k + self.m}")
        if self.durability_floor < 0:
            raise ValueError(
                f"durability_floor must be >= 0: {self.durability_floor}")
        for prefix, k, m in self.overrides:
            if k < 1 or m < 0 or k + m > 255:
                raise ValueError(
                    f"override {prefix!r}: invalid scheme k={k} m={m}")
        if self.repair_interval is not None and self.repair_interval <= 0:
            raise ValueError(
                f"repair_interval must be positive: {self.repair_interval}")
        if self.repair_concurrency < 1:
            raise ValueError(
                f"repair_concurrency must be >= 1: {self.repair_concurrency}")


@dataclass(frozen=True)
class GlobalPolicySpec:
    """A complete Wiera instance definition."""

    name: str
    placements: tuple[RegionPlacement, ...]
    consistency: str = "eventual"   # multi_primaries|primary_backup|eventual|local
    sync_replication: bool = True   # primary_backup: copy vs queue
    queue_interval: float = 1.0     # flush period for lazy replication
    get_from: Optional[str] = None  # None=local, "primary", or instance index tag
    #: anti-entropy digest-exchange period; None disables repair entirely
    #: (the default, so fault-free runs are bit-identical with or without it)
    repair_interval: Optional[float] = None
    #: batched data plane: ship replication traffic to each peer as one
    #: batch RPC per flush, and flush early once this many bytes are
    #: pending.  0 (the default) disables batching entirely — every code
    #: path is bit-identical to the unbatched plane.
    batch_bytes: float = 0.0
    #: keyspace partitioning; None/shards=1 -> one classic instance
    sharding: Optional[ShardSpec] = None
    #: closed-loop elasticity (repro.autoscale); None (the default) builds
    #: no controller — runs are bit-identical to pre-autoscale behavior
    autoscale: Optional[AutoscaleSpec] = None
    dynamic: Optional[DynamicConsistencySpec] = None
    change_primary: Optional[ChangePrimarySpec] = None
    cold: Optional[ColdDataSpec] = None
    load_balance: Optional[LoadBalanceSpec] = None
    failure: Optional[FailureSpec] = None
    #: erasure-coded redundancy plane (repro.ec); None (the default)
    #: constructs nothing — runs are bit-identical to pre-EC builds
    redundancy: Optional[RedundancySpec] = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.placements, tuple):
            object.__setattr__(self, "placements", tuple(self.placements))
        if not self.placements:
            raise ValueError(f"policy {self.name!r} places no instances")
        primaries = [p for p in self.placements if p.primary]
        if self.consistency == "primary_backup" and len(primaries) != 1:
            raise ValueError(
                f"policy {self.name!r}: primary_backup requires exactly one "
                f"primary placement, found {len(primaries)}")
        if self.consistency not in ("multi_primaries", "primary_backup",
                                    "eventual", "local"):
            raise ValueError(f"unknown consistency {self.consistency!r}")
        if self.batch_bytes < 0:
            raise ValueError(
                f"batch_bytes must be >= 0: {self.batch_bytes}")
        if self.redundancy is not None:
            r = self.redundancy
            if self.consistency == "primary_backup":
                raise ValueError(
                    f"policy {self.name!r}: redundancy is incompatible with "
                    "primary_backup (fragments have no single write path)")
            if self.dynamic is not None or self.change_primary is not None:
                raise ValueError(
                    f"policy {self.name!r}: redundancy cannot be combined "
                    "with dynamic consistency or change_primary")
            if self.sharding is not None and self.sharding.shards > 1:
                raise ValueError(
                    f"policy {self.name!r}: redundancy requires an "
                    "unsharded namespace (fragment keys would hash away "
                    "from their manifests)")
            if len(self.placements) < r.k + r.m:
                raise ValueError(
                    f"policy {self.name!r}: EC({r.k},{r.m}) needs "
                    f"{r.k + r.m} placements, found {len(self.placements)}")

    def primary_placement(self) -> Optional[RegionPlacement]:
        for placement in self.placements:
            if placement.primary:
                return placement
        return None

    def regions(self) -> list[str]:
        return [p.region for p in self.placements]
