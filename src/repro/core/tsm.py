"""Tiera Server Manager (TSM).

Holds the registry of Tiera servers across regions/providers, checks their
health with periodic pings (§4.1: "periodically sends a 'ping' message"),
and notifies watching TIMs when a server dies so they can re-create
replicas (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim.kernel import Interrupt
from repro.sim.rpc import Message, RpcNode


@dataclass
class ServerRecord:
    server_id: str
    region: str
    provider: str
    node: RpcNode
    server: object        # in-proc TieraServer handle
    alive: bool = True
    missed: int = 0
    last_seen: float = 0.0

    @property
    def host(self):
        return self.node.host


class TieraServerManager:
    """Server registry + heartbeat prober + failure notifier."""

    def __init__(self, sim, node: RpcNode, heartbeat_interval: float = 5.0,
                 missed_threshold: int = 3):
        self.sim = sim
        self.node = node
        self.heartbeat_interval = heartbeat_interval
        self.missed_threshold = missed_threshold
        self.servers: dict[str, ServerRecord] = {}
        self._watchers: list = []   # TIMs interested in failures
        self._hb_proc = None
        self.deaths_detected = 0
        node.register("register_server", self.rpc_register_server)

    # -- registration -----------------------------------------------------
    def rpc_register_server(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.0001)
        record = ServerRecord(
            server_id=msg.args["server_id"], region=msg.args["region"],
            provider=msg.args["provider"], node=msg.args["server"].node,
            server=msg.args["server"], last_seen=self.sim.now)
        self.servers[record.server_id] = record
        return {"registered": record.server_id}

    def watch(self, tim) -> None:
        if tim not in self._watchers:
            self._watchers.append(tim)

    # -- selection ----------------------------------------------------------
    def pick_server(self, region: str, provider: str = "aws",
                    hint: Optional[str] = None, exclude_down: bool = True,
                    fallback_any: bool = False) -> Optional[ServerRecord]:
        """Choose a server for a placement; ``hint`` pins a server id."""
        if hint is not None:
            record = self.servers.get(hint)
            if record is None:
                raise KeyError(f"no Tiera server {hint!r} registered")
            return record
        candidates = [r for r in self.servers.values()
                      if r.region == region and r.provider == provider
                      and (r.alive or not exclude_down)]
        if not candidates and fallback_any:
            candidates = [r for r in self.servers.values()
                          if r.region == region and (r.alive or not exclude_down)]
        if not candidates and fallback_any:
            candidates = [r for r in self.servers.values() if r.alive]
        if not candidates:
            raise KeyError(
                f"no Tiera server available in {region}/{provider} "
                f"(registered: {sorted(self.servers)})")
        # Least-loaded first (fewest hosted instances), server id as the
        # deterministic tie-break — with one server per (region, provider)
        # this is exactly the old lowest-id choice, so single-server
        # deployments stay bit-identical; with several (see
        # ``build_deployment(servers_per_region=N)``) shard placements
        # spread across hosts instead of stacking on one egress link.
        return sorted(candidates,
                      key=lambda r: (len(r.server.instances),
                                     r.server_id))[0]

    # -- heartbeats --------------------------------------------------------------
    def start_heartbeats(self) -> None:
        if self._hb_proc is None or not self._hb_proc.is_alive:
            self._hb_proc = self.sim.process(self._heartbeat_loop(),
                                             name="tsm:heartbeat")

    def stop_heartbeats(self) -> None:
        if self._hb_proc is not None and self._hb_proc.is_alive:
            self._hb_proc.interrupt("tsm stopped")
        self._hb_proc = None

    def _heartbeat_loop(self) -> Generator:
        try:
            while True:
                yield self.sim.timeout(self.heartbeat_interval)
                for record in list(self.servers.values()):
                    if not record.alive:
                        continue
                    try:
                        yield self.node.call(record.node, "ping")
                        record.missed = 0
                        record.last_seen = self.sim.now
                    except Exception:
                        record.missed += 1
                        if record.missed >= self.missed_threshold:
                            record.alive = False
                            self.deaths_detected += 1
                            for tim in self._watchers:
                                tim.on_server_down(record.server_id)
        except Interrupt:
            return
