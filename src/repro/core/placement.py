"""Automated data-placement advisor.

The paper's §3.1 sketches it and defers it: "Based on this aggregated
information, a data placement manager could generate a dynamic global
policy automatically. ... such automated policy generation is left as
future work."  This module implements a first, deliberately simple
version of that future work:

* **Primary placement** — pick the instance minimizing the
  demand-weighted RTT from client regions (the quantity Table 3 reports).
* **Replica selection** — greedy k-center over demand: repeatedly add the
  replica that most reduces the demand-weighted distance to the nearest
  replica (good get latency with few copies, §3.3.3's "fewer replicas").
* **Consistency suggestion** — if the best achievable strong-put latency
  (lock RTT + widest replica RTT) exceeds the application's latency goal,
  suggest eventual consistency; otherwise strong.

``apply()`` turns a primary recommendation into an actual
``change_primary`` on the TIM, closing the monitoring-to-actuation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.workload_monitor import WorkloadMonitor


@dataclass
class PlacementAdvice:
    primary_instance_id: Optional[str]
    primary_region: Optional[str]
    replica_regions: list[str]
    suggested_consistency: str
    expected_put_ms: float
    expected_get_ms: float
    demand: dict[str, int] = field(default_factory=dict)


class DataPlacementAdvisor:
    """Derives placement recommendations from live monitors."""

    def __init__(self, tim, workload_monitor: WorkloadMonitor,
                 latency_goal: float = 0.8, cost_weight: float = 0.0):
        self.tim = tim
        self.monitor = workload_monitor
        self.latency_goal = latency_goal
        #: dollars-to-seconds exchange rate for cost-aware placement: each
        #: candidate region's score gains ``cost_weight x`` its price-book
        #: monthly cost (storage at current usage + inter-region egress
        #: for remote demand).  0 (the default) skips the price book
        #: entirely — advice is bit-identical to latency-only builds.
        self.cost_weight = cost_weight

    # -- helper geometry -------------------------------------------------------
    def _region_host(self, region: str):
        for record in self.tim.instances.values():
            if record.region == region and not record.down:
                return record.instance.host
        return None

    def _rtt(self, region_a: str, region_b: str) -> float:
        host_a = self._region_host(region_a)
        host_b = self._region_host(region_b)
        if host_a is None or host_b is None:
            return float("inf")
        return self.tim.network.rtt(host_a, host_b)

    def _instance_regions(self) -> list[str]:
        return sorted({rec.region for rec in self.tim.instances.values()
                       if not rec.down})

    def region_monthly_cost(self, region: str,
                            demand: dict[str, int]) -> float:
        """Price-book cost of serving from ``region``: storage at the
        current tier fill plus inter-region egress for remote demand."""
        from repro.storage.cost import network_cost
        from repro.util.units import GB
        storage = 0.0
        for record in self.tim.instances.values():
            if record.region != region or record.down:
                continue
            for backend in record.instance.tiers.values():
                storage += (backend.used_bytes / GB
                            * backend.profile.storage_price)
        avg_bytes = (self.monitor.object_size.mean
                     if self.monitor.object_size.count else 0.0)
        remote_ops = sum(weight for r, weight in demand.items()
                         if r != region)
        return storage + network_cost(remote_ops * avg_bytes,
                                      "inter_region")

    # -- recommendations -----------------------------------------------------
    def weighted_put_latency(self, primary_region: str,
                             demand: dict[str, int]) -> float:
        """Demand-weighted forwarded-put RTT if the primary sat there."""
        total = sum(demand.values())
        if total == 0:
            return 0.0
        acc = 0.0
        for region, weight in demand.items():
            acc += weight * (0.0 if region == primary_region
                             else self._rtt(region, primary_region))
        return acc / total

    def best_primary(self) -> tuple[Optional[str], float]:
        demand = self.monitor.demand_by_region()
        regions = self._instance_regions()
        if not regions:
            return None, 0.0
        best, best_cost, best_score = None, float("inf"), float("inf")
        for region in regions:
            cost = self.weighted_put_latency(region, demand)
            score = cost
            if self.cost_weight:
                score += self.cost_weight * self.region_monthly_cost(
                    region, demand)
            if score < best_score:
                best, best_cost, best_score = region, cost, score
        return best, best_cost

    def replica_set(self, k: int) -> list[str]:
        """Greedy k-center replica selection over current demand."""
        demand = self.monitor.demand_by_region()
        regions = self._instance_regions()
        if not regions:
            return []
        k = min(k, len(regions))
        chosen: list[str] = []

        def cost_with(extra: str) -> float:
            replicas = chosen + [extra]
            acc = 0.0
            for region, weight in demand.items():
                nearest = min((self._rtt(region, r) if region != r else 0.0)
                              for r in replicas)
                acc += weight * nearest
            if self.cost_weight:
                acc += self.cost_weight * self.region_monthly_cost(extra,
                                                                   demand)
            return acc

        while len(chosen) < k:
            candidates = [r for r in regions if r not in chosen]
            if demand:
                chosen.append(min(candidates, key=cost_with))
            else:
                chosen.append(candidates[0])
        return chosen

    def advise(self, replicas: int = 2) -> PlacementAdvice:
        demand = self.monitor.demand_by_region()
        primary_region, put_cost = self.best_primary()
        replica_regions = self.replica_set(replicas)

        # strong-put estimate: lock round trips to the Wiera host plus the
        # widest RTT from the primary to any replica.
        expected_put = put_cost
        strong_put = put_cost
        if primary_region is not None:
            lock_host = self.tim.node.host
            primary_host = self._region_host(primary_region)
            lock_rtt = (self.tim.network.rtt(primary_host, lock_host)
                        if primary_host is not None else 0.0)
            widest = max((self._rtt(primary_region, r)
                          for r in replica_regions if r != primary_region),
                         default=0.0)
            strong_put = 2 * lock_rtt + widest + put_cost
        consistency = ("multi_primaries"
                       if strong_put <= self.latency_goal else "eventual")

        # get estimate: demand-weighted distance to the nearest replica.
        total = sum(demand.values())
        get_cost = 0.0
        if total and replica_regions:
            for region, weight in demand.items():
                nearest = min((self._rtt(region, r) if region != r else 0.0)
                              for r in replica_regions)
                get_cost += weight * nearest
            get_cost /= total

        primary_id = None
        if primary_region is not None:
            for iid, rec in sorted(self.tim.instances.items()):
                if rec.region == primary_region and not rec.down:
                    primary_id = iid
                    break
        return PlacementAdvice(
            primary_instance_id=primary_id,
            primary_region=primary_region,
            replica_regions=replica_regions,
            suggested_consistency=consistency,
            expected_put_ms=expected_put * 1000,
            expected_get_ms=get_cost * 1000,
            demand=demand)

    def apply(self, advice: Optional[PlacementAdvice] = None) -> Generator:
        """Actuate the primary recommendation (PrimaryBackup only)."""
        if advice is None:
            advice = self.advise()
        if advice.primary_instance_id is None:
            return {"changed": False, "reason": "no recommendation"}
        result = yield from self.tim.change_primary(
            advice.primary_instance_id)
        return result
