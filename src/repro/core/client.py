"""Wiera client library.

Applications "connect to the closest instance (placed at the head of the
list)" (§4.1 step 8) and fall back to the next-closest when an instance is
unreachable (§4.4).  The client exposes the full object-versioning API of
Table 2 and records app-perceived operation latencies — the quantity every
latency figure in the paper's evaluation reports.

Failover now covers the full transient-error surface: alongside network
errors, a request that times out (``request_timeout``) or dies inside the
remote handler with an :class:`~repro.sim.rpc.RpcError` (e.g. the instance
crashed mid-operation) moves the client to the next instance.  When a
``retry_policy`` is set, the whole failover sweep is retried with backoff
— the paper's "connect to the closest alive instance" loop, with teeth.
Both knobs default to off so fault-free runs are unchanged.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.faults.retry import RetryPolicy
from repro.net.network import Host, HostDownError, Network, NetworkError
from repro.obs.api import get_obs
from repro.shard.map import WrongShardError
from repro.sim.kernel import Simulator
from repro.sim.rpc import RpcError, RpcNode, call_with_timeout
from repro.util.stats import LatencyRecorder

#: errors that mean "try another instance", not "the request is invalid"
FAILOVER_ERRORS = (HostDownError, NetworkError, TimeoutError, RpcError)

#: shard-map refreshes allowed per operation before treating the
#: epoch-mismatch as a failed attempt (a redirect loop means the service
#: itself is behind, which backoff — not more refreshes — resolves)
MAX_REDIRECTS = 4


class NoInstanceAvailableError(RuntimeError):
    """Every known instance was unreachable."""


class WieraClient:
    """Application-side handle: proximity-ordered instances + failover."""

    def __init__(self, sim: Simulator, network: Network, host: Host,
                 name: Optional[str] = None,
                 request_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng=None):
        self.sim = sim
        self.network = network
        self.host = host
        self.node = RpcNode(sim, network, host,
                            name=name or f"client:{host.name}")
        self.instances: list[dict] = []      # proximity-ordered
        #: per-key routing against a cached ShardMap (sharded namespaces
        #: only; None leaves the classic proximity sweep untouched)
        self.router = None
        self.request_timeout = request_timeout
        self.retry_policy = retry_policy
        self._rng = rng
        self.put_latency = LatencyRecorder("put")
        self.get_latency = LatencyRecorder("get")
        self.failovers = 0
        self.retries = 0
        self._obs = get_obs(sim)
        metrics = self._obs.metrics
        self._op_hists = {
            "put": metrics.histogram("client.op_latency",
                                     client=self.node.name, op="put"),
            "get": metrics.histogram("client.op_latency",
                                     client=self.node.name, op="get"),
        }
        self._failover_counter = metrics.counter("client.failovers",
                                                 client=self.node.name)
        self._retry_counter = metrics.counter("client.retries",
                                              client=self.node.name)

    # -- attachment -----------------------------------------------------------
    def attach(self, instances: list[dict]) -> None:
        """Order the instance list by current network proximity."""
        def distance(info) -> float:
            return self.network.oneway_latency(
                self.host, info["node"].host, include_dynamics=False)
        self.instances = sorted(instances, key=distance)

    @property
    def closest(self) -> dict:
        if not self.instances:
            raise NoInstanceAvailableError("client has no instances attached")
        return self.instances[0]

    def _candidates(self):
        if not self.instances:
            raise NoInstanceAvailableError("client has no instances attached")
        return self.instances

    def _candidates_for(self, args: dict):
        """Candidate sweep order: the owning shard's instances when a
        router is installed and the operation is keyed, else all."""
        if self.router is not None:
            key = args.get("key")
            if key is not None:
                return self.router.candidates(key)
        return self._candidates()

    def _call_one(self, info: dict, method: str, args: dict,
                  size: int) -> Generator:
        """One RPC to one instance, bounded by ``request_timeout`` if set."""
        call = self.node.call(info["node"], method, args, size=size)
        if self.request_timeout is None:
            result = yield call
        else:
            result = yield from call_with_timeout(self.sim, call,
                                                  self.request_timeout)
        return result

    def _invoke(self, method: str, args: dict, size: int) -> Generator:
        """Call the closest (owning) instance, failing over down the list;
        retry the whole sweep with backoff when a retry policy is
        configured.  A ``WrongShardError`` redirect — the contacted shard
        runs a newer map epoch — refreshes the cached shard map and
        re-routes immediately without consuming a backoff attempt."""
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        last_error: Optional[Exception] = None
        attempt = 0
        redirects = 0
        while attempt < attempts:
            if attempt > 0:
                self.retries += 1
                self._retry_counter.inc()
                yield self.sim.timeout(policy.backoff(attempt - 1,
                                                      rng=self._rng))
            redirected = False
            for info in self._candidates_for(args):
                if info.get("down"):
                    continue
                try:
                    result = yield from self._call_one(info, method, args,
                                                       size=size)
                    return result, info
                except WrongShardError as exc:
                    last_error = exc
                    redirected = True
                    break   # stale map: same-shard failover is pointless
                except FAILOVER_ERRORS as exc:
                    last_error = exc
                    self.failovers += 1
                    self._failover_counter.inc()
                    continue
            if redirected and self.router is not None \
                    and redirects < MAX_REDIRECTS:
                redirects += 1
                self.router.note_redirect()
                yield from self.router.refresh()
                continue
            attempt += 1
        raise NoInstanceAvailableError(
            f"all instances unreachable for {method}: {last_error}")

    # -- Table 2 API ------------------------------------------------------------
    def put(self, key: str, data: bytes, tags=()) -> Generator:
        start = self.sim.now
        result, info = yield from self._invoke(
            "put", {"key": key, "data": data, "tags": tuple(tags)},
            size=len(data) + 256)
        elapsed = self.sim.now - start
        self.put_latency.record(start, elapsed, label=info["region"])
        self._op_hists["put"].observe(elapsed)
        result["latency"] = elapsed
        return result

    def get(self, key: str) -> Generator:
        """Retrieve the latest version (per the active consistency model)."""
        start = self.sim.now
        result, info = yield from self._invoke("get", {"key": key}, size=256)
        elapsed = self.sim.now - start
        self.get_latency.record(start, elapsed, label=info["region"])
        self._op_hists["get"].observe(elapsed)
        result["latency"] = elapsed
        return result

    def get_version(self, key: str, version: int) -> Generator:
        result, _ = yield from self._invoke(
            "get_version", {"key": key, "version": version}, size=256)
        return result

    def get_version_list(self, key: str) -> Generator:
        result, _ = yield from self._invoke(
            "get_version_list", {"key": key}, size=256)
        return result["versions"]

    def update(self, key: str, version: int, data: bytes) -> Generator:
        result, _ = yield from self._invoke(
            "update", {"key": key, "version": version, "data": data},
            size=len(data) + 256)
        return result

    def remove(self, key: str) -> Generator:
        result, _ = yield from self._invoke("remove", {"key": key}, size=256)
        return result

    def remove_version(self, key: str, version: int) -> Generator:
        result, _ = yield from self._invoke(
            "remove_version", {"key": key, "version": version}, size=256)
        return result
