"""Wiera's runtime monitors: the "first-class support for dynamism".

Three monitors (§3.2.3 / §4.3), each a dedicated simulation process owned
by a Tiera Instance Manager:

* :class:`LatencyMonitor` — watches put/get latencies against a threshold
  + sustained-violation period and drives consistency switching
  (DynamicConsistency, Figure 5(a)).  While in the weak model it estimates
  what a strong put *would* cost via active probes (peer RTTs + lock-service
  RTT), so it knows when conditions have recovered.
* :class:`RequestsMonitor` — watches the primary's put history and moves
  the primary to the instance forwarding the most requests
  (ChangePrimary, Figure 5(b)).
* :class:`ColdDataCoordinator` — the *centralized* cold-data variant of
  §5.3: demote cold objects at the central instance, drop the other
  replicas and point them at the shared tier.  (The per-instance variant
  is an ordinary local ColdDataEvent rule.)
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.global_policy import (
    ChangePrimarySpec,
    ColdDataSpec,
    DynamicConsistencySpec,
)
from repro.sim.kernel import Interrupt
from repro.sim.rpc import call_with_timeout

#: estimated local-store component of a strong put, used by probe estimates
_LOCAL_STORE_ESTIMATE = 0.004


class MonitorBase:
    """Common start/stop plumbing for monitor processes."""

    def __init__(self, tim):
        self.tim = tim
        self.sim = tim.sim
        self._proc = None

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.sim.process(self._run(),
                                          name=type(self).__name__)

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
        self._proc = None

    def _run(self) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


class LatencyMonitor(MonitorBase):
    """Drives DynamicConsistency switching."""

    def __init__(self, tim, spec: DynamicConsistencySpec):
        super().__init__(tim)
        self.spec = spec
        self.mode = "strong"
        # App-perceived latencies live in the shared MetricsRegistry (every
        # instance records to ``tiera.op_latency``); the monitor only reads.
        self._metrics = tim._obs.metrics
        # Sim-time before which samples are ignored — the registry view of
        # "forget everything" after a consistency switch (shared histograms
        # cannot be cleared by one consumer).
        self._reset_at = 0.0
        # Per-instance violation clocks: each instance has its own
        # dedicated monitoring thread in the paper (§4.3); an instance
        # with no fresh samples keeps its previous verdict rather than
        # resetting the clock.
        self._violating_since: dict[str, Optional[float]] = {}
        self._ok_since: Optional[float] = None
        self.signal_log: list[tuple[float, float, str]] = []
        self._signal_gauge = self._metrics.gauge(
            "wiera.dynamic_signal", wiera=tim.wiera_instance_id)
        self._timeout_counter = self._metrics.counter(
            "monitor.probe_timeouts", wiera=tim.wiera_instance_id)

    def _hist(self, iid: str):
        """The app-latency histogram an instance records into."""
        return self._metrics.histogram("tiera.op_latency", instance=iid,
                                       op=self.spec.op, src="app")

    # -- signal computation ---------------------------------------------------
    def observed_signal(self) -> Optional[float]:
        """Worst recent app-perceived latency across instances."""
        horizon = self.sim.now - max(2 * self.spec.check_interval, 2.0)
        since = max(horizon, self._reset_at)
        worst = None
        for iid in self.tim.instances:
            m = self._hist(iid).max_since(since)
            if m is not None:
                worst = m if worst is None else max(worst, m)
        return worst

    def _update_violation_clocks(self) -> Optional[float]:
        """Advance each instance's violation clock; return the longest
        sustained violation duration (None if nobody is violating)."""
        horizon = self.sim.now - max(4 * self.spec.check_interval, 4.0)
        cutoff = max(horizon, self._reset_at)
        longest = None
        for record in self.tim.instances.values():
            iid = record.instance_id
            recent_max = self._hist(iid).max_since(cutoff)
            if recent_max is not None:
                if recent_max > self.spec.latency_threshold:
                    self._violating_since.setdefault(iid, self.sim.now)
                else:
                    self._violating_since.pop(iid, None)
            # No recent samples: the instance keeps its previous verdict —
            # a slow instance emits samples rarely, which must not clear
            # its own violation clock.
            since = self._violating_since.get(iid)
            if since is not None:
                duration = self.sim.now - since
                longest = duration if longest is None else max(longest,
                                                               duration)
        return longest

    def probe_estimate(self) -> Generator:
        """Estimate a strong (MultiPrimaries) put latency via live probes.

        strong put ~= 2 x lock RTT + max peer RTT + local store.
        Uses the *current* network state, so injected delays and their
        expiry are visible even while the weak model hides them from
        application-perceived latencies.  Probes are raced against
        ``spec.probe_timeout`` so a dead lock service or partitioned peer
        stalls one probe round, not the whole monitor.
        """
        timeout = self.spec.probe_timeout
        worst = 0.0
        for record in self.tim.instances.values():
            instance = record.instance
            if instance.host.down:
                continue
            t0 = self.sim.now
            try:
                yield from call_with_timeout(
                    self.sim,
                    instance.node.call(self.tim.lock_node, "holder",
                                       {"key": "__probe__"}),
                    timeout)
            except TimeoutError:
                self._timeout_counter.inc()
            lock_rtt = self.sim.now - t0
            rtts = []
            for peer in instance.peers.values():
                p0 = self.sim.now
                try:
                    yield from call_with_timeout(
                        self.sim, instance.node.call(peer.node, "probe"),
                        timeout)
                except TimeoutError:
                    self._timeout_counter.inc()
                    rtts.append(self.sim.now - p0)
                    continue
                except Exception:
                    continue
                rtts.append(self.sim.now - p0)
            estimate = (2 * lock_rtt + max(rtts, default=0.0)
                        + _LOCAL_STORE_ESTIMATE)
            worst = max(worst, estimate)
        return worst

    # -- the control loop -------------------------------------------------------
    def _run(self) -> Generator:
        spec = self.spec
        try:
            while True:
                yield self.sim.timeout(spec.check_interval)
                if self.mode == "strong":
                    longest = self._update_violation_clocks()
                    self.signal_log.append(
                        (self.sim.now, longest or 0.0, self.mode))
                    self._signal_gauge.set(longest or 0.0)
                    if longest is not None and longest >= spec.period:
                        yield from self.tim.switch_consistency(spec.weak)
                        self.mode = "weak"
                        self._violating_since.clear()
                        self._reset_at = self.sim.now
                        self._ok_since = None
                else:
                    # Weak mode hides violations from app latencies, so
                    # estimate what a strong put would cost right now.
                    signal = yield from self.probe_estimate()
                    self.signal_log.append((self.sim.now, signal, self.mode))
                    self._signal_gauge.set(signal)
                    if signal <= spec.latency_threshold:
                        if self._ok_since is None:
                            self._ok_since = self.sim.now
                        elif self.sim.now - self._ok_since >= spec.period:
                            yield from self.tim.switch_consistency(spec.strong)
                            self.mode = "strong"
                            self._ok_since = None
                            self._violating_since.clear()
                            self._reset_at = self.sim.now
                    else:
                        self._ok_since = None
        except Interrupt:
            return


class RequestsMonitor(MonitorBase):
    """Drives ChangePrimary: follow the forwarded-request imbalance."""

    def __init__(self, tim, spec: ChangePrimarySpec):
        super().__init__(tim)
        self.spec = spec
        self._candidate: Optional[str] = None
        self._candidate_since: Optional[float] = None
        self._cooldown_until = 0.0
        self.evaluations = 0

    def _primary_instance(self):
        primary_id = self.tim.protocol.config.primary_id
        record = self.tim.instances.get(primary_id)
        return record.instance if record else None

    def _run(self) -> Generator:
        spec = self.spec
        try:
            while True:
                yield self.sim.timeout(spec.check_interval)
                if self.sim.now < self._cooldown_until:
                    continue
                primary = self._primary_instance()
                if primary is None:
                    continue
                self.evaluations += 1
                counts = primary.requests_in_window(spec.window)
                app_count = counts.get("app", 0)
                forwarded = {src: n for src, n in counts.items()
                             if src != "app" and src in self.tim.instances}
                if not forwarded:
                    self._candidate = None
                    self._candidate_since = None
                    continue
                top_src = max(forwarded, key=lambda s: forwarded[s])
                top_count = forwarded[top_src]
                if top_count >= app_count and top_count > 0:
                    if self._candidate != top_src:
                        self._candidate = top_src
                        self._candidate_since = self.sim.now
                    elif (self.sim.now - self._candidate_since
                          >= spec.period):
                        yield from self.tim.change_primary(top_src)
                        self._candidate = None
                        self._candidate_since = None
                        # Let a full history window accumulate under the
                        # new primary before judging again (anti-flap).
                        self._cooldown_until = self.sim.now + spec.window
                else:
                    self._candidate = None
                    self._candidate_since = None
        except Interrupt:
            return


class ColdDataCoordinator(MonitorBase):
    """Centralized cold-data management (§5.3).

    Every ``check_interval``: the central instance demotes objects idle
    for ``age`` seconds into its cheap tier; every other instance then
    drops its local replicas of those objects and records their location
    as the shared tier.
    """

    def __init__(self, tim, spec: ColdDataSpec):
        super().__init__(tim)
        if not spec.centralize:
            raise ValueError("ColdDataCoordinator requires centralize=True")
        self.spec = spec
        self.centralized_objects = 0

    def _central_record(self):
        for record in self.tim.instances.values():
            if record.region == self.spec.central_region:
                return record
        raise RuntimeError(
            f"no instance in central region {self.spec.central_region!r}")

    def _run(self) -> Generator:
        spec = self.spec
        try:
            while True:
                yield self.sim.timeout(spec.check_interval)
                central = self._central_record()
                with self.tim._obs.tracer.span(
                        "policy:demote_cold", cat="policy",
                        component=self.tim.node.name,
                        central=central.instance_id) as span:
                    result = yield self.tim.node.call(
                        central.node, "ctl_demote_cold",
                        {"age": spec.age, "to_tier": spec.target_tier,
                         "bandwidth": spec.bandwidth})
                    demoted = result["demoted"]
                    span.set(demoted=len(demoted))
                    if not demoted:
                        continue
                    self.centralized_objects += len(demoted)
                    self.tim._obs.metrics.counter(
                        "policy.cold_demotions",
                        wiera=self.tim.wiera_instance_id).inc(len(demoted))
                    shared_name = self.tim.shared_cold_tier_name
                    calls = []
                    for iid, record in self.tim.instances.items():
                        if iid == central.instance_id:
                            continue
                        calls.append(self.tim.node.call(
                            record.node, "ctl_adopt_remote_cold",
                            {"tier": shared_name, "objects": demoted}))
                    for call in calls:
                        yield call
        except Interrupt:
            return
