"""Tiera Instance Manager (TIM).

One TIM per running Wiera instance (§3.1 / §4.1): it launches the Tiera
instances via the Tiera servers, propagates the peer table, attaches the
shared consistency protocol, runs the dynamic-policy monitors, and
executes runtime changes — consistency switches (with request gating and
queue draining, §3.3.2) and primary migration — plus replica recovery
after server failures (§4.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from repro.coordination.curator import GlobalLockClient
from repro.core.consistency import (
    EventualConsistencyProtocol,
    MultiPrimariesProtocol,
    PrimaryBackupConfig,
    PrimaryBackupProtocol,
)
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.core.monitoring import (
    ColdDataCoordinator,
    LatencyMonitor,
    RequestsMonitor,
)
from repro.obs.api import get_obs
from repro.sim.rpc import RpcNode
from repro.tiera.instance import InstanceRef
from repro.tiera.instance_tier import InstanceTier
from repro.tiera.local_protocol import LocalOnlyProtocol


class WieraInstanceError(RuntimeError):
    pass


@dataclass
class InstanceRecord:
    """Everything the TIM knows about one spawned Tiera instance."""

    instance_id: str
    region: str
    provider: str
    server_id: str
    node: RpcNode
    instance: object           # in-proc handle (instances run in-server)
    placement: RegionPlacement
    ref: InstanceRef = None
    down: bool = False


class TieraInstanceManager:
    """Manages the Tiera instances of one Wiera instance."""

    _seq = itertools.count(1)

    def __init__(self, sim, network, wiera, wiera_instance_id: str,
                 spec: GlobalPolicySpec, lock_node: RpcNode):
        self.sim = sim
        self.network = network
        self.wiera = wiera
        self.wiera_instance_id = wiera_instance_id
        self.spec = spec
        self.lock_node = lock_node
        self.node = RpcNode(sim, network, wiera.host,
                            name=f"tim:{wiera_instance_id}:{next(self._seq)}")
        self._obs = get_obs(sim)
        self.instances: dict[str, InstanceRecord] = {}
        self.protocol = None
        self.monitors: list = []
        self.switch_log: list[tuple[float, str, str, float]] = []
        #: instance ids added by add_replica (the only ones remove_replica
        #: will retire — spec placements are never scaled away)
        self.elastic_replicas: list[str] = []
        self.shared_cold_tier_name = "shared_cold"
        self.running = False

    # ------------------------------------------------------------------
    # launch (the 8-step protocol of §4.1)
    # ------------------------------------------------------------------
    def launch(self) -> Generator:
        spec = self.spec
        # Steps 3-5: ask each region's Tiera server to spawn an instance.
        for placement in spec.placements:
            server = self.wiera.tsm.pick_server(
                placement.region, placement.provider, placement.server_hint)
            instance_id = self._instance_id(placement)
            result = yield self.node.call(server.node, "spawn_instance", {
                "instance_id": instance_id,
                "policy": placement.local_policy,
            })
            record = InstanceRecord(
                instance_id=instance_id, region=placement.region,
                provider=placement.provider, server_id=server.server_id,
                node=result["node"], instance=result["instance"],
                placement=placement)
            record.ref = InstanceRef(instance_id, placement.region,
                                     record.node)
            self.instances[instance_id] = record
            self._wire(record)
        # Step 6: propagate peer info to all instances.
        yield from self._propagate_peers()
        # Attach the consistency protocol.
        self.protocol = self._build_protocol(spec.consistency)
        yield from self._install_protocol(self.protocol)
        # Centralized cold data needs shared tiers on the non-central
        # instances before its coordinator starts.
        if spec.cold is not None and spec.cold.centralize:
            yield from self._install_shared_cold_tier()
        self._start_monitors()
        if spec.failure is not None:
            self.wiera.tsm.watch(self)
        self.running = True
        return self.instance_list()

    def _instance_id(self, placement: RegionPlacement) -> str:
        base = f"{self.wiera_instance_id}-{placement.region}"
        if placement.provider != "aws":
            base += f"-{placement.provider}"
        candidate, n = base, 1
        while candidate in self.instances:
            n += 1
            candidate = f"{base}-{n}"
        return candidate

    def _wire(self, record: InstanceRecord) -> None:
        instance = record.instance
        instance.wiera = self
        instance.lock_client = GlobalLockClient(instance.node, self.lock_node)

    def alive_records(self) -> list[InstanceRecord]:
        """The instance records still serving (shared by switches,
        recovery, and the shard rebalancer)."""
        return [rec for rec in self.instances.values() if not rec.down]

    def _propagate_peers(self) -> Generator:
        refs = {rec.instance_id: rec.ref for rec in self.alive_records()}
        calls = [self.node.call(rec.node, "ctl_set_peers", {"peers": refs})
                 for rec in self.alive_records()]
        for call in calls:
            yield call

    def _install_protocol(self, protocol) -> Generator:
        calls = [self.node.call(rec.node, "ctl_set_protocol",
                                {"protocol": protocol})
                 for rec in self.alive_records()]
        for call in calls:
            yield call

    def _start_monitors(self) -> None:
        spec = self.spec
        if spec.dynamic is not None:
            self.monitors.append(LatencyMonitor(self, spec.dynamic))
        if spec.change_primary is not None:
            self.monitors.append(RequestsMonitor(self, spec.change_primary))
        if spec.cold is not None and spec.cold.centralize:
            self.monitors.append(ColdDataCoordinator(self, spec.cold))
        if spec.load_balance is not None:
            from repro.core.loadbalance import LoadBalancer
            self.monitors.append(LoadBalancer(self, spec.load_balance))
        for monitor in self.monitors:
            monitor.start()

    # ------------------------------------------------------------------
    # protocol construction
    # ------------------------------------------------------------------
    def _resolve_instance_id(self, region_or_id: Optional[str]) -> Optional[str]:
        if region_or_id in (None, "primary"):
            return region_or_id
        if region_or_id in self.instances:
            return region_or_id
        for iid, rec in self.instances.items():
            if rec.region == region_or_id:
                return iid
        raise WieraInstanceError(
            f"cannot resolve {region_or_id!r} to an instance")

    def _primary_instance_id(self) -> str:
        for iid, rec in self.instances.items():
            if rec.placement.primary:
                return iid
        raise WieraInstanceError(
            f"{self.wiera_instance_id}: no primary placement")

    def _build_protocol(self, name: str):
        spec = self.spec
        if spec.redundancy is not None:
            # The redundancy plane subsumes the consistency knob: writes
            # are synchronous fragment fan-outs, reads gather nearest-k.
            from repro.ec.protocol import ECProtocol
            if isinstance(self.protocol, ECProtocol):
                return self.protocol
            return ECProtocol(spec.redundancy)
        if name == "multi_primaries":
            return MultiPrimariesProtocol(batch_bytes=spec.batch_bytes)
        if name == "primary_backup":
            existing = getattr(self.protocol, "config", None)
            primary_id = (existing.primary_id if existing is not None
                          else self._primary_instance_id())
            config = PrimaryBackupConfig(
                primary_id=primary_id,
                sync_replication=spec.sync_replication,
                queue_interval=spec.queue_interval,
                get_from=self._resolve_instance_id(spec.get_from),
                repair_interval=spec.repair_interval,
                batch_bytes=spec.batch_bytes)
            config.history.append((self.sim.now, primary_id))
            return PrimaryBackupProtocol(config)
        if name == "eventual":
            return EventualConsistencyProtocol(
                spec.queue_interval, repair_interval=spec.repair_interval,
                batch_bytes=spec.batch_bytes)
        if name == "local":
            return LocalOnlyProtocol()
        raise WieraInstanceError(f"unknown protocol {name!r}")

    # ------------------------------------------------------------------
    # runtime changes
    # ------------------------------------------------------------------
    def switch_consistency(self, to_name: str) -> Generator:
        """Gate, drain, swap, reopen (§3.3.2): requests arriving during the
        switch are blocked and queued until the change takes effect."""
        start = self.sim.now
        from_name = self.protocol.name if self.protocol else "none"
        with self._obs.tracer.span("policy:switch_consistency", cat="policy",
                                   component=self.node.name,
                                   to=to_name) as span:
            span.set(**{"from": from_name})
            alive = self.alive_records()
            for rec in alive:
                yield self.node.call(rec.node, "ctl_close_gate")
            for rec in alive:
                drained = yield self.node.call(rec.node, "ctl_drain")
                # A non-empty queue here would be silently dropped by the
                # protocol swap below (detach counts it pending_dropped).
                if drained.get("pending"):
                    raise WieraInstanceError(
                        f"{rec.instance_id}: {drained['pending']} queued "
                        "replication entries survived ctl_drain; refusing "
                        "to drop them in a consistency switch")
            new_protocol = self._build_protocol(to_name)
            yield from self._install_protocol(new_protocol)
            self.protocol = new_protocol
            for rec in alive:
                yield self.node.call(rec.node, "ctl_open_gate")
        self.switch_log.append((start, from_name, to_name, self.sim.now))
        metrics = self._obs.metrics
        metrics.counter("policy.consistency_switches",
                        wiera=self.wiera_instance_id).inc()
        metrics.histogram("policy.switch_duration",
                          wiera=self.wiera_instance_id).observe(
                              self.sim.now - start)
        return {"from": from_name, "to": to_name,
                "took": self.sim.now - start}

    def change_primary(self, new_primary_id: str) -> Generator:
        """Move the primary role (Figure 5(b)); queued updates apply first."""
        if not isinstance(self.protocol, PrimaryBackupProtocol):
            raise WieraInstanceError("change_primary requires primary_backup")
        if new_primary_id not in self.instances:
            raise WieraInstanceError(f"unknown instance {new_primary_id!r}")
        start = self.sim.now
        old_id = self.protocol.config.primary_id
        if old_id == new_primary_id:
            return {"primary": old_id, "changed": False}
        with self._obs.tracer.span("policy:change_primary", cat="policy",
                                   component=self.node.name,
                                   to=new_primary_id) as span:
            span.set(**{"from": old_id})
            alive = self.alive_records()
            for rec in alive:
                yield self.node.call(rec.node, "ctl_close_gate")
            old_rec = self.instances.get(old_id)
            if old_rec is not None and not old_rec.down:
                yield self.node.call(old_rec.node, "ctl_drain")
            self.protocol.set_primary(new_primary_id, self.sim.now)
            for rec in alive:
                yield self.node.call(rec.node, "ctl_open_gate")
        self._obs.metrics.counter("policy.primary_changes",
                                  wiera=self.wiera_instance_id).inc()
        return {"primary": new_primary_id, "previous": old_id,
                "changed": True, "took": self.sim.now - start}

    # ------------------------------------------------------------------
    # failure handling (§4.4)
    # ------------------------------------------------------------------
    def on_server_down(self, server_id: str) -> None:
        affected = [rec for rec in self.instances.values()
                    if rec.server_id == server_id and not rec.down]
        if not affected:
            return
        for rec in affected:
            rec.down = True
        if self.spec.failure is None:
            return
        alive = sum(1 for rec in self.instances.values() if not rec.down)
        if alive < self.spec.failure.min_replicas:
            self.sim.process(self._recover(affected),
                             name=f"recover:{self.wiera_instance_id}")

    def _recover(self, lost: list[InstanceRecord]) -> Generator:
        for rec in lost:
            replacement = self.wiera.tsm.pick_server(
                rec.region, rec.provider, exclude_down=True,
                fallback_any=True)
            if replacement is None:
                continue
            instance_id = f"{rec.instance_id}-r{int(self.sim.now)}"
            result = yield self.node.call(replacement.node, "spawn_instance", {
                "instance_id": instance_id,
                "policy": rec.placement.local_policy,
            })
            new_rec = InstanceRecord(
                instance_id=instance_id, region=replacement.region,
                provider=replacement.provider,
                server_id=replacement.server_id,
                node=result["node"], instance=result["instance"],
                placement=rec.placement)
            new_rec.ref = InstanceRef(instance_id, replacement.region,
                                      new_rec.node)
            self.instances[instance_id] = new_rec
            self._wire(new_rec)
            yield from self._propagate_peers()
            yield self.node.call(new_rec.node, "ctl_set_protocol",
                                 {"protocol": self.protocol})
            yield from self._resync(new_rec)

    def _resync(self, record: InstanceRecord) -> Generator:
        """Pull the latest version of every key from a live peer."""
        donor = next((rec for rec in self.instances.values()
                      if not rec.down and rec is not record), None)
        if donor is None:
            return
        listing = yield self.node.call(donor.node, "list_keys")
        instance = record.instance
        for key, latest in listing["keys"]:
            if latest == 0:
                continue
            try:
                got = yield instance.node.call(donor.node, "peer_get",
                                               {"key": key})
            except Exception:
                continue
            yield from instance.local_put(
                key, got["data"], version=got["version"],
                origin=got.get("origin", donor.instance_id),
                last_modified=got.get("last_modified"))

    # ------------------------------------------------------------------
    # elastic replicas (repro.autoscale replica lever)
    # ------------------------------------------------------------------
    def add_replica(self, region: str, provider: str = "aws") -> Generator:
        """Spawn one extra instance in ``region``, wire it into the peer
        table and protocol, and resync it from a live peer.  Reuses the
        §4.4 recovery machinery, but driven by load instead of failure."""
        template = next((p for p in self.spec.placements
                         if p.region == region), self.spec.placements[0])
        server = self.wiera.tsm.pick_server(region, provider,
                                            exclude_down=True,
                                            fallback_any=True)
        if server is None:
            raise WieraInstanceError(
                f"no live Tiera server to host a replica in {region!r}")
        n = len(self.elastic_replicas)
        instance_id = f"{self.wiera_instance_id}-{region}-e{n}"
        while instance_id in self.instances:
            n += 1
            instance_id = f"{self.wiera_instance_id}-{region}-e{n}"
        result = yield self.node.call(server.node, "spawn_instance", {
            "instance_id": instance_id,
            "policy": template.local_policy,
        })
        record = InstanceRecord(
            instance_id=instance_id, region=server.region,
            provider=server.provider, server_id=server.server_id,
            node=result["node"], instance=result["instance"],
            placement=template)
        record.ref = InstanceRef(instance_id, server.region, record.node)
        self.instances[instance_id] = record
        self._wire(record)
        self.elastic_replicas.append(instance_id)
        yield from self._propagate_peers()
        yield self.node.call(record.node, "ctl_set_protocol",
                             {"protocol": self.protocol})
        yield from self._resync(record)
        return instance_id

    def remove_replica(self, instance_id: Optional[str] = None) -> Generator:
        """Retire one elastic replica (the most recently added when
        ``instance_id`` is None).  Spec placements cannot be removed."""
        if instance_id is None:
            if not self.elastic_replicas:
                raise WieraInstanceError(
                    f"{self.wiera_instance_id}: no elastic replicas to "
                    "remove")
            instance_id = self.elastic_replicas[-1]
        if instance_id not in self.elastic_replicas:
            raise WieraInstanceError(
                f"{instance_id!r} is not an elastic replica")
        record = self.instances.pop(instance_id)
        self.elastic_replicas.remove(instance_id)
        # Drop it from every peer table first, so no new replication is
        # queued toward it, then detach its protocol (stopping its
        # replication queues/repairers) before the server tears it down.
        yield from self._propagate_peers()
        if not record.down:
            yield self.node.call(record.node, "ctl_set_protocol",
                                 {"protocol": LocalOnlyProtocol()})
            server = self.wiera.tsm.servers.get(record.server_id)
            if server is not None and not server.host.down:
                yield self.node.call(server.node, "stop_instance",
                                     {"instance_id": instance_id})
        return instance_id

    # ------------------------------------------------------------------
    # centralized cold data
    # ------------------------------------------------------------------
    def _install_shared_cold_tier(self) -> Generator:
        spec = self.spec.cold
        central = next((rec for rec in self.instances.values()
                        if rec.region == spec.central_region), None)
        if central is None:
            raise WieraInstanceError(
                f"no instance in central region {spec.central_region!r}")
        target_profile = central.instance.tier(spec.target_tier).profile
        for rec in self.instances.values():
            if rec is central:
                continue
            oneway = self.network.oneway_latency(
                rec.instance.host, central.instance.host,
                include_dynamics=False)
            shared = InstanceTier(
                self.sim, rec.instance.node, central.node, spec.target_tier,
                name=self.shared_cold_tier_name,
                remote_profile=target_profile, estimated_oneway=oneway)
            yield self.node.call(rec.node, "ctl_add_tier", {
                "name": self.shared_cold_tier_name, "backend": shared})

    # ------------------------------------------------------------------
    # lifecycle & queries
    # ------------------------------------------------------------------
    def instance_list(self) -> list[dict]:
        return [{"instance_id": iid, "region": rec.region,
                 "provider": rec.provider, "node": rec.node,
                 "down": rec.down}
                for iid, rec in self.instances.items()]

    def stop(self) -> Generator:
        self.running = False
        for monitor in self.monitors:
            monitor.stop()
        self.monitors.clear()
        for rec in self.instances.values():
            if rec.down:
                continue
            server = self.wiera.tsm.servers.get(rec.server_id)
            if server is None or server.host.down:
                continue
            yield self.node.call(server.node, "stop_instance",
                                 {"instance_id": rec.instance_id})
