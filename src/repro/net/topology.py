"""Regions and the inter-region propagation-latency matrix.

The default one-way latencies are scaled to public WAN measurements between
the four regions the paper deploys in (AWS US East/Virginia, US West/N.
California, EU West/Ireland, Asia East/Tokyo).  They were chosen so that the
paper's headline numbers fall out of the geometry: e.g. a put forwarded from
EU West to a primary in Asia East costs one RTT ~= 220 ms, matching the
216.6 ms static-primary latency in Table 3.
"""

from __future__ import annotations

from repro.util.units import MS

US_EAST = "us-east"
US_WEST = "us-west"
EU_WEST = "eu-west"
ASIA_EAST = "asia-east"

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)

# One-way propagation delay in milliseconds between region pairs.
DEFAULT_ONEWAY_MS: dict[frozenset[str], float] = {
    frozenset((US_EAST, US_WEST)): 35.0,
    frozenset((US_EAST, EU_WEST)): 40.0,
    frozenset((US_EAST, ASIA_EAST)): 85.0,
    frozenset((US_WEST, EU_WEST)): 70.0,
    frozenset((US_WEST, ASIA_EAST)): 55.0,
    frozenset((EU_WEST, ASIA_EAST)): 110.0,
}

# Within one provider's DC in a region.
INTRA_DC_MS = 0.25
# Between two providers' DCs in the same region (paper: AWS<->Azure US East
# RTT is around 2 ms; that figure includes VM NIC overheads, so the raw
# propagation component here is 2 x 1.0 ms round trip before NIC delays).
CROSS_PROVIDER_SAME_REGION_MS = 1.0


class Topology:
    """Latency lookup between (region, provider) endpoints.

    Latencies can be overridden per pair, and regions beyond the default
    four can be registered freely (``add_region``); unknown pairs raise so
    configuration errors surface early.
    """

    def __init__(self, oneway_ms: dict[frozenset[str], float] | None = None):
        self._regions: set[str] = set(REGIONS)
        self._oneway: dict[frozenset[str], float] = dict(
            DEFAULT_ONEWAY_MS if oneway_ms is None else oneway_ms)
        self.intra_dc = INTRA_DC_MS * MS
        self.cross_provider_same_region = CROSS_PROVIDER_SAME_REGION_MS * MS

    @property
    def regions(self) -> frozenset[str]:
        return frozenset(self._regions)

    def add_region(self, region: str) -> None:
        self._regions.add(region)

    def set_latency(self, region_a: str, region_b: str, oneway_seconds: float) -> None:
        """Override the one-way latency between two distinct regions."""
        if region_a == region_b:
            raise ValueError("use intra_dc/cross_provider for same-region latency")
        self._regions.add(region_a)
        self._regions.add(region_b)
        self._oneway[frozenset((region_a, region_b))] = oneway_seconds / MS

    def oneway(self, region_a: str, provider_a: str,
               region_b: str, provider_b: str) -> float:
        """One-way propagation latency in seconds between two endpoints."""
        if region_a == region_b:
            if provider_a == provider_b:
                return self.intra_dc
            return self.cross_provider_same_region
        key = frozenset((region_a, region_b))
        ms = self._oneway.get(key)
        if ms is None:
            raise KeyError(f"no latency configured between {region_a} and {region_b}")
        return ms * MS

    def rtt(self, region_a: str, provider_a: str,
            region_b: str, provider_b: str) -> float:
        return 2.0 * self.oneway(region_a, provider_a, region_b, provider_b)
