"""Network monitor: aggregates observed inter-host latencies.

The paper's Wiera architecture includes a network monitor that "aggregates
latency information for handling requests from each instance and latencies
between instances".  This component records per-(src,dst) transfer
latencies and exposes moving-window aggregates that global policies (and a
future automated data-placement manager) can consult.
"""

from __future__ import annotations

from collections import deque

from repro.net.network import Host
from repro.sim.kernel import Simulator
from repro.util.stats import OnlineStats


class NetworkMonitor:
    """Sliding-window latency observations per directed host pair."""

    def __init__(self, sim: Simulator, window: float = 60.0):
        self.sim = sim
        self.window = window
        self._samples: dict[tuple[str, str], deque[tuple[float, float]]] = {}
        self.totals: dict[tuple[str, str], OnlineStats] = {}

    def attach(self, network) -> None:
        network.monitor = self

    def record_transfer(self, src: Host, dst: Host, nbytes: int,
                        elapsed: float) -> None:
        key = (src.name, dst.name)
        dq = self._samples.setdefault(key, deque())
        dq.append((self.sim.now, elapsed))
        self._trim(dq)
        self.totals.setdefault(key, OnlineStats()).add(elapsed)

    def _trim(self, dq: deque) -> None:
        horizon = self.sim.now - self.window
        while dq and dq[0][0] < horizon:
            dq.popleft()

    def recent_latencies(self, src: str, dst: str) -> list[float]:
        dq = self._samples.get((src, dst))
        if not dq:
            return []
        self._trim(dq)
        return [v for _, v in dq]

    def mean_latency(self, src: str, dst: str) -> float | None:
        vals = self.recent_latencies(src, dst)
        return sum(vals) / len(vals) if vals else None

    def observed_pairs(self) -> list[tuple[str, str]]:
        return sorted(self.totals)
