"""Shared bandwidth links with FIFO transmission serialization.

Every host has an egress link; concurrent transfers through one link queue
behind each other, so large replication transfers genuinely contend with
foreground traffic — this is what makes bandwidth-capped ``copy`` responses
(e.g. ``bandwidth: 40KB/s`` in Figure 1(b)) and Azure's VM-size network
throttles (Figs. 11-12) behave realistically.
"""

from __future__ import annotations

from typing import Generator, Iterator

from repro.sim.kernel import Simulator
from repro.sim.primitives import Resource


def iter_chunks(nbytes: int, chunk_bytes: float) -> Iterator[int]:
    """Split ``nbytes`` into successive chunk sizes of at most
    ``chunk_bytes`` (the last chunk carries the remainder).

    ``chunk_bytes <= 0`` means no chunking: the whole payload is one
    piece.  Used by :meth:`repro.net.network.Network.transmit` so a large
    transfer serializes through the egress link as several short
    reservations instead of one indivisible one — foreground traffic can
    interleave between chunks, and a mid-transfer failure has only the
    undelivered chunks left in flight.
    """
    if chunk_bytes <= 0 or nbytes <= chunk_bytes:
        yield nbytes
        return
    step = int(chunk_bytes)
    sent = 0
    while sent < nbytes:
        piece = min(step, nbytes - sent)
        yield piece
        sent += piece


class BandwidthLink:
    """A serialized transmission pipe with a byte/second rate.

    ``transmit(nbytes)`` is a generator (intended for ``yield from`` inside
    a process) that completes once the payload has been clocked onto the
    wire.  An infinite-rate link completes instantly and never queues.
    """

    def __init__(self, sim: Simulator, rate: float = float("inf"), name: str = ""):
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.name = name
        self._channel = Resource(sim, capacity=1)
        self.bytes_sent = 0

    @property
    def queued(self) -> int:
        return self._channel.queued

    def transmission_time(self, nbytes: int) -> float:
        if self.rate == float("inf"):
            return 0.0
        return nbytes / self.rate

    def transmit(self, nbytes: int) -> Generator:
        if nbytes < 0:
            raise ValueError("cannot transmit a negative payload")
        self.bytes_sent += nbytes
        if self.rate == float("inf"):
            return
        yield self._channel.request()
        try:
            yield self.sim.timeout(nbytes / self.rate)
        finally:
            self._channel.release()
