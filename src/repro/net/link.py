"""Shared bandwidth links with FIFO transmission serialization.

Every host has an egress link; concurrent transfers through one link queue
behind each other, so large replication transfers genuinely contend with
foreground traffic — this is what makes bandwidth-capped ``copy`` responses
(e.g. ``bandwidth: 40KB/s`` in Figure 1(b)) and Azure's VM-size network
throttles (Figs. 11-12) behave realistically.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.kernel import Simulator
from repro.sim.primitives import Resource


class BandwidthLink:
    """A serialized transmission pipe with a byte/second rate.

    ``transmit(nbytes)`` is a generator (intended for ``yield from`` inside
    a process) that completes once the payload has been clocked onto the
    wire.  An infinite-rate link completes instantly and never queues.
    """

    def __init__(self, sim: Simulator, rate: float = float("inf"), name: str = ""):
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.name = name
        self._channel = Resource(sim, capacity=1)
        self.bytes_sent = 0

    @property
    def queued(self) -> int:
        return self._channel.queued

    def transmission_time(self, nbytes: int) -> float:
        if self.rate == float("inf"):
            return 0.0
        return nbytes / self.rate

    def transmit(self, nbytes: int) -> Generator:
        if nbytes < 0:
            raise ValueError("cannot transmit a negative payload")
        self.bytes_sent += nbytes
        if self.rate == float("inf"):
            return
        yield self._channel.request()
        try:
            yield self.sim.timeout(nbytes / self.rate)
        finally:
            self._channel.release()
