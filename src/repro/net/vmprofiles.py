"""VM instance-type profiles.

The paper's §5.4 experiments hinge on two provider-imposed throttles:

* Azure caps attached-disk performance at 500 IOPS regardless of VM size
  (their Fig. 11 local-disk line is flat at ~500 IOPS), and
* Azure throttles *network* performance by VM type and size (their prior
  work [15]), which is why remote-memory performance through Wiera scales
  with VM size (Basic A2 < Standard D1 < D2 ~= D3).

We encode both as a per-VM profile: an egress bandwidth cap, a per-message
NIC processing delay (dominates small-message RTT on throttled VMs), a
disk IOPS cap, and a relative CPU factor used by the RUBiS app model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MB, MS


@dataclass(frozen=True)
class VmProfile:
    """Performance envelope of one VM instance type."""

    name: str
    cpus: int
    ram_gb: float
    network_bw: float      # egress bytes/sec
    nic_delay: float       # per-message NIC processing delay, seconds
    disk_iops: float       # attached-disk IOPS cap (inf = unthrottled)
    cpu_factor: float      # relative single-request service-time multiplier

    def __post_init__(self) -> None:
        if self.network_bw <= 0 or self.nic_delay < 0 or self.disk_iops <= 0:
            raise ValueError(f"invalid VM profile {self.name}")


def _mbps(x: float) -> float:
    return x * MB / 8.0


VM_PROFILES: dict[str, VmProfile] = {
    # Azure VM types used in §5.4.  NIC delays are calibrated so the
    # remote-memory IOPS curve of Fig. 11 comes out: heavy per-message
    # virtualization overhead on Basic A2 / Standard D1, light on D2/D3
    # (the paper's prior work [15] measured multi-ms small-message RTTs on
    # throttled small Azure VMs).
    "azure.basic_a2": VmProfile(
        name="azure.basic_a2", cpus=2, ram_gb=3.5,
        network_bw=_mbps(200), nic_delay=3.65 * MS, disk_iops=500,
        cpu_factor=1.6),
    "azure.standard_d1": VmProfile(
        name="azure.standard_d1", cpus=1, ram_gb=3.5,
        network_bw=_mbps(500), nic_delay=2.85 * MS, disk_iops=500,
        cpu_factor=1.3),
    "azure.standard_d2": VmProfile(
        name="azure.standard_d2", cpus=2, ram_gb=7.0,
        network_bw=_mbps(1000), nic_delay=1.30 * MS, disk_iops=500,
        cpu_factor=1.0),
    "azure.standard_d3": VmProfile(
        name="azure.standard_d3", cpus=4, ram_gb=14.0,
        network_bw=_mbps(2000), nic_delay=1.22 * MS, disk_iops=500,
        cpu_factor=0.95),
    # AWS t2.micro, the paper's workhorse for Wiera/Tiera servers.
    "aws.t2_micro": VmProfile(
        name="aws.t2_micro", cpus=1, ram_gb=1.0,
        network_bw=_mbps(250), nic_delay=0.15 * MS, disk_iops=3000,
        cpu_factor=1.2),
    # An unthrottled profile for components whose host performance is not
    # under study (clients, the Wiera management service, Zookeeper).
    "generic": VmProfile(
        name="generic", cpus=4, ram_gb=16.0,
        network_bw=float("inf"), nic_delay=0.0, disk_iops=float("inf"),
        cpu_factor=1.0),
}


def get_profile(name: str) -> VmProfile:
    try:
        return VM_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown VM profile {name!r}; known: {sorted(VM_PROFILES)}") from None
