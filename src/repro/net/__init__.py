"""Simulated wide-area network substrate.

Models the inter-region WAN the paper's evaluation ran over: a one-way
propagation-latency matrix between cloud regions (AWS + Azure), per-VM-size
NIC delays and egress bandwidth throttles (Azure throttles network
performance by VM type, which drives Figs. 11-12), and runtime dynamics —
injected delays, host failures and partitions (which drive Fig. 7).
"""

from repro.net.topology import (
    ASIA_EAST,
    EU_WEST,
    REGIONS,
    US_EAST,
    US_WEST,
    DEFAULT_ONEWAY_MS,
    Topology,
)
from repro.net.link import BandwidthLink
from repro.net.vmprofiles import VM_PROFILES, VmProfile
from repro.net.network import Host, Network, NetworkError, HostDownError
from repro.net.monitor import NetworkMonitor

__all__ = [
    "Topology",
    "REGIONS",
    "US_EAST",
    "US_WEST",
    "EU_WEST",
    "ASIA_EAST",
    "DEFAULT_ONEWAY_MS",
    "BandwidthLink",
    "VmProfile",
    "VM_PROFILES",
    "Network",
    "Host",
    "NetworkError",
    "HostDownError",
    "NetworkMonitor",
]
