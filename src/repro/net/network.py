"""Hosts and the network facade: transfers, dynamics, failures.

The :class:`Network` is the single authority on "how long does it take to
move N bytes from host A to host B right now".  It layers, in order:
per-message NIC delays (VM throttling), egress-link serialization
(bandwidth), propagation latency (topology), and *runtime dynamics* —
injected extra delays on hosts or region pairs, host crashes, partitions.
The dynamics hooks are what the Fig. 7 experiment uses to simulate the
network/storage delays that trip the DynamicConsistency policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.net.link import BandwidthLink, iter_chunks
from repro.net.topology import Topology
from repro.net.vmprofiles import VmProfile, get_profile
from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN
from repro.sim.kernel import Simulator


class NetworkError(RuntimeError):
    """A transfer could not be carried out (partition, unreachable)."""


class HostDownError(NetworkError):
    """The destination host has crashed or been stopped."""


@dataclass
class _Injection:
    """An extra delay active during [start, end)."""

    start: float
    end: float
    extra: float

    def active_extra(self, now: float) -> float:
        return self.extra if self.start <= now < self.end else 0.0


class Host:
    """A simulated machine: placement, VM envelope, and liveness."""

    def __init__(self, sim: Simulator, name: str, region: str,
                 provider: str = "aws", vm: str | VmProfile = "generic"):
        self.sim = sim
        self.name = name
        self.region = region
        self.provider = provider
        self.vm: VmProfile = vm if isinstance(vm, VmProfile) else get_profile(vm)
        self.egress = BandwidthLink(sim, self.vm.network_bw, name=f"{name}.egress")
        self.down = False

    def crash(self) -> None:
        self.down = True

    def recover(self) -> None:
        self.down = False

    def __repr__(self) -> str:
        return f"<Host {self.name} {self.provider}/{self.region} {'DOWN' if self.down else 'up'}>"


class Network:
    """Topology + hosts + dynamics; produces transfer generators."""

    def __init__(self, sim: Simulator, topology: Optional[Topology] = None,
                 chunk_bytes: float = 0.0):
        self.sim = sim
        self.topology = topology or Topology()
        #: transfers above this size serialize through the egress link in
        #: chunks of this many bytes (0 = off: one indivisible reservation)
        self.chunk_bytes = chunk_bytes
        self.hosts: dict[str, Host] = {}
        self._host_injections: dict[str, list[_Injection]] = {}
        self._pair_injections: dict[frozenset[str], list[_Injection]] = {}
        self._partitions: dict[frozenset[str], float] = {}  # pair -> end time
        self.monitor = None  # optional NetworkMonitor
        #: optional CostLedger billing egress; set by build_deployment
        self.ledger = None
        #: every RpcNode bound to this network, by name — the address book
        #: the parallel bridge uses to route cross-worker messages
        self.nodes: dict[str, object] = {}
        #: installed by repro.par when this process is one worker of a
        #: partitioned run; None (always, in single-process mode) keeps
        #: every RPC on the unmodified local path
        self.bridge = None
        self.bytes_transferred = 0
        self.messages_sent = 0
        self._obs = get_obs(sim)
        self._msg_counter = self._obs.metrics.counter("net.messages")
        self._bytes_counter = self._obs.metrics.counter("net.bytes")
        self._chunk_counter = self._obs.metrics.counter("net.chunks")

    # -- host management ----------------------------------------------------
    def add_host(self, name: str, region: str, provider: str = "aws",
                 vm: str | VmProfile = "generic") -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self.sim, name, region, provider, vm)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    # -- dynamics -------------------------------------------------------------
    def inject_host_delay(self, host: str | Host, extra: float,
                          start: float | None = None,
                          duration: float = float("inf")) -> None:
        """Add ``extra`` seconds to every message to/from ``host``.

        This is the knob the Fig. 7 experiment turns: "We inject delays into
        an instance to simulate network or storage delay."
        """
        name = host.name if isinstance(host, Host) else host
        begin = self.sim.now if start is None else start
        self._host_injections.setdefault(name, []).append(
            _Injection(begin, begin + duration, extra))

    def inject_pair_delay(self, region_a: str, region_b: str, extra: float,
                          start: float | None = None,
                          duration: float = float("inf")) -> None:
        begin = self.sim.now if start is None else start
        key = frozenset((region_a, region_b))
        self._pair_injections.setdefault(key, []).append(
            _Injection(begin, begin + duration, extra))

    def partition(self, region_a: str, region_b: str,
                  duration: float = float("inf")) -> None:
        """Drop connectivity between two regions for ``duration`` seconds."""
        key = frozenset((region_a, region_b))
        self._partitions[key] = self.sim.now + duration

    def heal_partition(self, region_a: str, region_b: str) -> None:
        self._partitions.pop(frozenset((region_a, region_b)), None)

    def is_partitioned(self, region_a: str, region_b: str) -> bool:
        key = frozenset((region_a, region_b))
        end = self._partitions.get(key)
        if end is None:
            return False
        if self.sim.now >= end:
            # Elapsed partition: reap it so long fault-heavy runs don't
            # re-examine dead entries on every reachability check.
            del self._partitions[key]
            return False
        return True

    # -- latency queries ------------------------------------------------------
    def _live_injections(self, table: dict, key) -> list[_Injection]:
        """Injections under ``key`` that can still fire, pruning the rest.

        Without pruning, every expired ``inject_*_delay`` window is scanned
        by every message for the remainder of the run — an unbounded
        slowdown in long fault-heavy simulations.
        """
        injections = table.get(key)
        if not injections:
            return []
        now = self.sim.now
        live = [inj for inj in injections if now < inj.end]
        if len(live) != len(injections):
            if live:
                table[key] = live
            else:
                del table[key]
        return live

    def injected_extra(self, src: Host, dst: Host) -> float:
        now = self.sim.now
        extra = 0.0
        for name in (src.name, dst.name):
            for inj in self._live_injections(self._host_injections, name):
                extra += inj.active_extra(now)
        for inj in self._live_injections(
                self._pair_injections, frozenset((src.region, dst.region))):
            extra += inj.active_extra(now)
        return extra

    def oneway_latency(self, src: Host, dst: Host,
                       include_dynamics: bool = True) -> float:
        """Current one-way message latency (excluding bandwidth queueing)."""
        if src is dst:
            # Same machine: loopback, no NIC or propagation cost.
            return self.injected_extra(src, dst) if include_dynamics else 0.0
        base = self.topology.oneway(src.region, src.provider,
                                    dst.region, dst.provider)
        base += src.vm.nic_delay + dst.vm.nic_delay
        if include_dynamics:
            base += self.injected_extra(src, dst)
        return base

    def rtt(self, src: Host, dst: Host) -> float:
        return 2.0 * self.oneway_latency(src, dst)

    def check_reachable(self, src: Host, dst: Host) -> None:
        if dst.down:
            raise HostDownError(f"host {dst.name} is down")
        if src.down:
            raise HostDownError(f"source host {src.name} is down")
        if self.is_partitioned(src.region, dst.region):
            raise NetworkError(
                f"partition between {src.region} and {dst.region}")

    # -- transfer -------------------------------------------------------------
    def transmit(self, src: Host, dst: Host, nbytes: int) -> Generator:
        """Move ``nbytes`` from src to dst; yields until delivery completes.

        Raises :class:`NetworkError`/:class:`HostDownError` if the
        destination is unreachable at send time.

        With ``chunk_bytes`` set, a transfer above that size serializes
        through the egress link as several short reservations instead of
        one indivisible one: foreground traffic interleaves between
        chunks, and a crash or partition mid-transfer aborts with only
        the undelivered chunks outstanding (reachability is re-checked
        between chunks).
        """
        tracer = self._obs.tracer
        span = (tracer.span("net:transmit", cat="net", component=src.name,
                            dst=dst.name, bytes=nbytes)
                if tracer.enabled else NULL_SPAN)
        with span:
            start = self.sim.now
            latency = yield from self.send_to_wire(src, dst, nbytes)
            if latency > 0:
                yield self.sim.timeout(latency)
            # Destination may have died while the message was in flight.
            if dst.down:
                raise HostDownError(
                    f"host {dst.name} went down mid-transfer")
            if self.monitor is not None:
                self.monitor.record_transfer(src, dst, nbytes,
                                             self.sim.now - start)

    def send_to_wire(self, src: Host, dst: Host, nbytes: int) -> Generator:
        """The sender-side half of :meth:`transmit`: reachability check,
        accounting, and egress serialization.  Returns the propagation
        latency the message then spends in flight (computed *after* the
        egress reservation completes, exactly as :meth:`transmit` always
        did).  The parallel bridge (:mod:`repro.par.bridge`) runs this
        locally on the sending worker and ships ``now + latency`` as the
        deterministic arrival time on the destination worker."""
        self.check_reachable(src, dst)
        self.messages_sent += 1
        self.bytes_transferred += nbytes
        self._msg_counter.inc()
        self._bytes_counter.inc(nbytes)
        if self.ledger is not None and src is not dst:
            # Billed once per transfer, before the chunk loop: egress
            # dollars are identical with chunking on or off.
            scope = ("intra_dc" if src.region == dst.region
                     else "inter_region")
            self.ledger.record_network(nbytes, scope)
        if src is dst:
            return 0.0
        chunk = self.chunk_bytes
        if chunk > 0 and nbytes > chunk:
            first = True
            for piece in iter_chunks(nbytes, chunk):
                if not first:
                    # The link was released between chunks: the
                    # world may have changed under the transfer.
                    self.check_reachable(src, dst)
                first = False
                yield from src.egress.transmit(piece)
                self._chunk_counter.inc()
        else:
            yield from src.egress.transmit(nbytes)
        return self.oneway_latency(src, dst)
