"""Curator-like client recipe for the global lock service.

Gives instances a tiny acquire/release interface that hides the RPC and
tracks what this client currently holds (so a crashing instance's locks can
be deliberately abandoned and reclaimed by lease expiry, mirroring
ephemeral znodes).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.rpc import RpcNode


class GlobalLockClient:
    """Client-side handle on the lock service for one owner identity."""

    def __init__(self, node: RpcNode, lock_service_node: RpcNode,
                 owner: Optional[str] = None, lease: float = 30.0,
                 handshake: bool = True):
        self.node = node
        self.service = lock_service_node
        self.owner = owner or node.name
        self.lease = lease
        #: Curator's InterProcessMutex creates a sequential znode and then
        #: reads the children to learn its position — two round trips to
        #: Zookeeper before the lock is known to be held.
        self.handshake = handshake
        self.held: set[str] = set()

    def acquire(self, key: str) -> Generator:
        """``yield from`` this to block until the global lock is granted."""
        if self.handshake:
            yield self.node.call(self.service, "holder", {"key": key})
        result = yield self.node.call(
            self.service, "acquire",
            {"key": key, "owner": self.owner, "lease": self.lease})
        self.held.add(key)
        return result

    def release(self, key: str) -> Generator:
        if key not in self.held:
            raise RuntimeError(f"{self.owner} does not hold lock {key!r}")
        result = yield self.node.call(
            self.service, "release", {"key": key, "owner": self.owner})
        self.held.discard(key)
        return result

    def renew(self, key: str) -> Generator:
        result = yield self.node.call(
            self.service, "renew",
            {"key": key, "owner": self.owner, "lease": self.lease})
        return result

    def abandon_all(self) -> None:
        """Forget held locks without releasing (crash path; leases reclaim)."""
        self.held.clear()
