"""Coordination services: the Zookeeper/Curator substitute.

Wiera relies on Zookeeper (via the Curator library) for global locking in
the MultiPrimaries consistency policy.  We provide a lock *service* hosted
on a simulated host (so lock acquisition pays real WAN round trips to the
lock region, which dominates MultiPrimaries put latency) and a Curator-like
client recipe with acquire/release and lease expiry.
"""

from repro.coordination.lock_service import LockService, LockState
from repro.coordination.curator import GlobalLockClient

__all__ = ["LockService", "LockState", "GlobalLockClient"]
