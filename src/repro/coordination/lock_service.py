"""A Zookeeper-like global lock service.

Per-key exclusive locks with FIFO waiter queues (Curator's InterProcessMutex
over sequential ephemeral znodes grants in arrival order).  Locks carry an
optional lease: if the holder does not release (or renew) within the lease,
the lock is revoked and granted onward — the ephemeral-znode behaviour that
keeps a crashed client from wedging the system.

The service is an RPC service: ``acquire`` replies only once the lock is
granted, so callers simply ``yield node.call(lock_node, "acquire", ...)``
and the WAN round trip plus any queueing is charged naturally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN
from repro.sim.kernel import Event, Simulator
from repro.sim.rpc import Message, RpcNode


class LockServiceError(RuntimeError):
    pass


@dataclass
class LockState:
    """Bookkeeping for one lock key."""

    holder: Optional[str] = None
    acquired_at: float = 0.0
    lease_expires: float = float("inf")
    waiters: deque = field(default_factory=deque)  # (owner, grant Event)


class LockService:
    """Exclusive, FIFO, leased locks keyed by string."""

    def __init__(self, sim: Simulator, node: RpcNode,
                 default_lease: float = 30.0,
                 service_time: float = 0.0005):
        self.sim = sim
        self.node = node
        self.default_lease = default_lease
        self.service_time = service_time
        self._locks: dict[str, LockState] = {}
        self.grants = 0
        self.releases = 0
        self.expirations = 0
        self._obs = get_obs(sim)
        self._wait_hist = self._obs.metrics.histogram("lock.wait",
                                                      node=node.name)
        self._expire_counter = self._obs.metrics.counter("lock.expirations",
                                                         node=node.name)
        node.register("acquire", self.rpc_acquire)
        node.register("release", self.rpc_release)
        node.register("renew", self.rpc_renew)
        node.register("holder", self.rpc_holder)

    # -- RPC handlers -----------------------------------------------------
    def rpc_acquire(self, msg: Message) -> Generator:
        key = msg.args["key"]
        owner = msg.args["owner"]
        lease = msg.args.get("lease", self.default_lease)
        tracer = self._obs.tracer
        span = (tracer.span("lock:acquire", cat="lock",
                            component=self.node.name, key=key, owner=owner)
                if tracer.enabled else NULL_SPAN)
        with span:
            arrived = self.sim.now
            yield self.sim.timeout(self.service_time)
            state = self._locks.setdefault(key, LockState())
            if state.holder is None:
                self._grant(key, state, owner, lease)
                self._wait_hist.observe(self.sim.now - arrived)
                return {"granted": True, "holder": owner}
            if state.holder == owner:
                # Re-entrant acquisition just refreshes the lease.
                state.lease_expires = self.sim.now + lease
                self._wait_hist.observe(self.sim.now - arrived)
                return {"granted": True, "holder": owner, "reentrant": True}
            grant = Event(self.sim)
            state.waiters.append((owner, lease, grant))
            span.set(queued=True)
            yield grant
            self._wait_hist.observe(self.sim.now - arrived)
            return {"granted": True, "holder": owner}

    def rpc_release(self, msg: Message) -> Generator:
        key = msg.args["key"]
        owner = msg.args["owner"]
        tracer = self._obs.tracer
        span = (tracer.span("lock:release", cat="lock",
                            component=self.node.name, key=key, owner=owner)
                if tracer.enabled else NULL_SPAN)
        with span:
            yield self.sim.timeout(self.service_time)
            state = self._locks.get(key)
            if state is None or state.holder != owner:
                raise LockServiceError(
                    f"release of {key!r} by non-holder {owner!r} "
                    f"(holder={state.holder if state else None})")
            self.releases += 1
            self._pass_on(key, state)
            return {"released": True}

    def rpc_renew(self, msg: Message) -> Generator:
        key = msg.args["key"]
        owner = msg.args["owner"]
        lease = msg.args.get("lease", self.default_lease)
        yield self.sim.timeout(self.service_time)
        state = self._locks.get(key)
        if state is None or state.holder != owner:
            return {"renewed": False}
        state.lease_expires = self.sim.now + lease
        return {"renewed": True}

    def rpc_holder(self, msg: Message) -> Generator:
        yield self.sim.timeout(self.service_time)
        state = self._locks.get(msg.args["key"])
        return {"holder": state.holder if state else None,
                "queued": len(state.waiters) if state else 0}

    # -- internals -------------------------------------------------------------
    def _grant(self, key: str, state: LockState, owner: str, lease: float) -> None:
        state.holder = owner
        state.acquired_at = self.sim.now
        state.lease_expires = self.sim.now + lease
        self.grants += 1
        self.sim.process(self._lease_watch(key, owner, state.lease_expires),
                         name=f"lease:{key}")

    def _pass_on(self, key: str, state: LockState) -> None:
        if state.waiters:
            owner, lease, grant = state.waiters.popleft()
            self._grant(key, state, owner, lease)
            grant.succeed()
        else:
            del self._locks[key]

    def _lease_watch(self, key: str, owner: str, expires: float) -> Generator:
        """Revoke the lock if the lease runs out unrenewed."""
        while True:
            yield self.sim.timeout(max(0.0, expires - self.sim.now))
            state = self._locks.get(key)
            if state is None or state.holder != owner:
                return  # released normally (or already revoked)
            if self.sim.now >= state.lease_expires:
                self.expirations += 1
                self._expire_counter.inc()
                self._pass_on(key, state)
                return
            expires = state.lease_expires  # lease was renewed; keep watching

    # -- introspection -----------------------------------------------------------
    def held_keys(self) -> list[str]:
        return sorted(k for k, s in self._locks.items() if s.holder)
