"""Closed-loop elasticity on the rebalance plane (PR 7).

``repro.autoscale`` watches the load signals the rest of the system
already emits (``load.*`` counters, cohort queues, egress links) and
actuates the elasticity primitives the earlier PRs built: shard
add/remove (PR 5's rebalancer), per-shard replica growth (§4.4 recovery
machinery), and tier demotion (Figure 6(a) cold-data plumbing).

Enable it per policy with ``GlobalPolicySpec(autoscale=AutoscaleSpec(
target_per_shard=...))`` — the default of ``None`` constructs nothing
and leaves every run bit-identical — or per deployment with
``build_deployment(autoscale=...)``.
"""

from repro.autoscale.controller import Autoscaler, AutoscaleDecision
from repro.autoscale.signals import SignalReader, SignalSample

__all__ = [
    "Autoscaler",
    "AutoscaleDecision",
    "SignalReader",
    "SignalSample",
]
