"""The autoscaler: close the loop between load signals and elasticity.

PR 6 built the open-loop load engine and the scale-out bend; PR 5 built
live shard rebalancing.  This controller connects them: a single
simulation process samples the :class:`~repro.autoscale.signals.
SignalReader` every ``decision_interval`` sim-seconds and actuates three
levers, cheapest-to-observe first:

1. **Shards** — offered rate above ``high_water`` of current capacity
   (``shards x target_per_shard``), any shed beyond ``shed_tolerance``,
   or a saturated egress link grows the shard count toward demand via
   :meth:`~repro.shard.map.ShardManager.add_shard`; a rate that would
   still fit under ``low_water`` of the *post-removal* capacity,
   sustained for ``scale_down_windows`` consecutive windows, shrinks it
   by one via ``remove_shard``.  The asymmetric bands plus the
   post-removal capacity test are the hysteresis that stops flapping.
2. **Replicas** — once the shard lever is pinned at ``max_shards`` and
   demand is still hot, grow each shard's replica group with elastic
   instances (:meth:`~repro.core.tim.TieraInstanceManager.add_replica`)
   placed in the busiest observed region; calm retires them first,
   before any shard is removed.
3. **Tier** — sustained calm with nothing left to shrink demotes idle
   data to a cheaper tier (``ctl_demote_cold``), consulting the Table 4
   price book first when ``price_aware``; promotion back rides the
   policy's existing get-triggered rules.

Every action is performed inline in the decision process and bracketed
by ``cooldown``; ``max_actions_in_flight`` is enforced as a hard guard
on top, so the controller can never race its own rebalances.  Every
decision — including the ones that do nothing, and why — is kept as an
:class:`AutoscaleDecision` audit record and counted under
``autoscale.*`` metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro.autoscale.signals import SignalReader, SignalSample
from repro.core.global_policy import AutoscaleSpec
from repro.obs.api import get_obs
from repro.sim.kernel import Interrupt
from repro.storage.cost import PRICE_BOOK


@dataclass(frozen=True)
class AutoscaleDecision:
    """Audit record for one decision window."""

    time: float
    offered_rate: float
    shed: int
    queue_depth: int
    egress_utilization: float
    shards: int           # shard count when the decision was taken
    desired: int          # shard count the controller wanted
    action: str           # hold|scale_up|scale_down|replica_add|
                          # replica_remove|tier_demote|skip_cooldown|skip_busy
    reason: str
    took: float = 0.0     # sim-seconds the actuation cost
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "time": self.time, "offered_rate": self.offered_rate,
            "shed": self.shed, "queue_depth": self.queue_depth,
            "egress_utilization": self.egress_utilization,
            "shards": self.shards, "desired": self.desired,
            "action": self.action, "reason": self.reason,
            "took": self.took, "detail": self.detail,
        }


class Autoscaler:
    """One controller per sharded namespace (see module docstring)."""

    def __init__(self, manager, spec: AutoscaleSpec,
                 reader: SignalReader, retry_policy=None):
        self.manager = manager            # repro.shard.map.ShardManager
        self.sim = manager.sim
        self.spec = spec
        self.reader = reader
        self.retry_policy = retry_policy
        self._proc = None
        self._obs = get_obs(self.sim)
        self._cooldown_until = 0.0
        self._calm_streak = 0
        self._in_flight = 0
        self.decisions: list[AutoscaleDecision] = []
        metrics = self._obs.metrics
        ns = manager.base_id
        self._c_decisions = metrics.counter("autoscale.decisions",
                                            namespace=ns)
        self._c_scale_ups = metrics.counter("autoscale.scale_ups",
                                            namespace=ns)
        self._c_scale_downs = metrics.counter("autoscale.scale_downs",
                                              namespace=ns)
        self._c_replica_adds = metrics.counter("autoscale.replica_adds",
                                               namespace=ns)
        self._c_replica_removes = metrics.counter(
            "autoscale.replica_removes", namespace=ns)
        self._c_tier_demotions = metrics.counter(
            "autoscale.tier_demotions", namespace=ns)
        self._g_desired = metrics.gauge("autoscale.desired_shards",
                                        namespace=ns)
        self._g_offered = metrics.gauge("autoscale.offered_rate",
                                        namespace=ns)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.sim.process(
                self._run(), name=f"autoscaler:{self.manager.base_id}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
        self._proc = None

    # -- state queries -------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.manager.map.shards) if self.manager.map else 0

    def shard_ids(self) -> list[str]:
        return sorted(self.manager.map.shards) if self.manager.map else []

    def elastic_replica_count(self) -> int:
        wiera = self.manager.wiera
        return sum(len(wiera.tim(sid).elastic_replicas)
                   for sid in self.shard_ids())

    def audit(self) -> list[dict]:
        return [d.as_dict() for d in self.decisions]

    # -- the control loop ----------------------------------------------------
    def _run(self) -> Generator:
        spec = self.spec
        try:
            # Prime the reader: the first sample has no window behind it.
            self.reader.sample(self.sim.now)
            while True:
                yield self.sim.timeout(spec.decision_interval)
                sample = self.reader.sample(self.sim.now)
                yield from self._decide(sample)
        except Interrupt:
            return

    def _decide(self, sample: SignalSample) -> Generator:
        spec = self.spec
        shards = self.shards
        capacity = shards * spec.target_per_shard
        self._g_offered.set(sample.offered_rate)
        self._c_decisions.inc()

        hot = (sample.shed > spec.shed_tolerance
               or sample.offered_rate > spec.high_water * capacity
               or sample.egress_utilization > spec.high_water)
        # Hysteresis: scale down only if demand fits comfortably under the
        # capacity we would have AFTER losing one shard (or one replica
        # set) — otherwise removal would immediately re-trigger growth.
        calm = (not hot
                and sample.offered_rate
                <= spec.low_water * spec.target_per_shard * max(shards - 1, 1)
                and sample.queue_depth == 0)

        desired = shards
        if hot:
            desired = max(
                shards + 1,
                math.ceil(sample.offered_rate
                          / (spec.high_water * spec.target_per_shard)))
            # Shed load is an emergency, not a band violation: demand
            # already exceeds what we can observe (the queue is
            # overflowing, so offered_rate under-reports it) and every
            # window spent converging sheds more.  Go straight to the
            # ceiling; the calm path brings it back down afterwards.
            if sample.shed > spec.shed_tolerance:
                desired = spec.max_shards
        desired = min(max(desired, spec.min_shards), spec.max_shards)
        self._g_desired.set(desired)

        if self.sim.now < self._cooldown_until:
            self._record(sample, shards, desired, "skip_cooldown",
                         f"cooldown until t={self._cooldown_until:.1f}")
            return
        if self._in_flight >= spec.max_actions_in_flight:
            self._record(sample, shards, desired, "skip_busy",
                         f"{self._in_flight} action(s) already in flight")
            return

        if hot:
            self._calm_streak = 0
            if desired > shards:
                yield from self._act(sample, shards, desired, "scale_up",
                                     self._scale_up(desired))
            elif self._replica_headroom() > 0:
                yield from self._act(sample, shards, desired, "replica_add",
                                     self._add_replicas(sample))
            else:
                self._record(sample, shards, desired, "hold",
                             "hot but all levers exhausted")
            return

        if calm:
            self._calm_streak += 1
            if self._calm_streak < spec.scale_down_windows:
                self._record(
                    sample, shards, desired, "hold",
                    f"calm {self._calm_streak}/{spec.scale_down_windows}")
                return
            self._calm_streak = 0
            if self.elastic_replica_count() > 0:
                yield from self._act(sample, shards, desired,
                                     "replica_remove",
                                     self._remove_replicas())
            elif shards > spec.min_shards:
                yield from self._act(sample, shards, shards - 1,
                                     "scale_down", self._scale_down())
            elif spec.tier is not None:
                yield from self._act(sample, shards, desired, "tier_demote",
                                     self._demote_cold())
            else:
                self._record(sample, shards, desired, "hold",
                             "calm at floor; nothing to shrink")
            return

        self._calm_streak = 0
        self._record(sample, shards, desired, "hold", "within band")

    # -- actuation -----------------------------------------------------------
    def _act(self, sample: SignalSample, shards: int, desired: int,
             action: str, gen: Generator) -> Generator:
        t0 = self.sim.now
        self._in_flight += 1
        try:
            with self._obs.tracer.span(
                    f"autoscale:{action}", cat="autoscale",
                    component=f"autoscaler:{self.manager.base_id}",
                    shards=shards, desired=desired) as span:
                detail = yield from gen
                span.set(detail=detail)
        finally:
            self._in_flight -= 1
        self._cooldown_until = self.sim.now + self.spec.cooldown
        self._record(sample, shards, desired, action,
                     self._reason_for(sample, action),
                     took=self.sim.now - t0, detail=detail)

    def _reason_for(self, sample: SignalSample, action: str) -> str:
        if action in ("scale_up", "replica_add"):
            return (f"offered={sample.offered_rate:.0f}/s "
                    f"shed={sample.shed} "
                    f"egress={sample.egress_utilization:.2f}")
        return (f"calm for {self.spec.scale_down_windows} windows "
                f"(offered={sample.offered_rate:.0f}/s)")

    def _scale_up(self, desired: int) -> Generator:
        added = []
        while self.shards < desired:
            result = yield from self.manager.add_shard(
                retry_policy=self.retry_policy)
            added.append(result["shard"])
            self._c_scale_ups.inc()
        return f"added {added} (epoch {self.manager.epoch})"

    def _scale_down(self) -> Generator:
        victim = self._newest_shard()
        result = yield from self.manager.remove_shard(
            victim, retry_policy=self.retry_policy)
        self._c_scale_downs.inc()
        return f"removed {result['removed']} (epoch {self.manager.epoch})"

    def _newest_shard(self) -> str:
        base = self.manager.base_id
        def ordinal(shard_id: str) -> int:
            return int(shard_id[len(base) + 2:])
        return max(self.shard_ids(), key=ordinal)

    # -- replica lever -------------------------------------------------------
    def _replica_headroom(self) -> int:
        if self.spec.replicas is None:
            return 0
        cap = self.spec.replicas.max_extra * self.shards
        return cap - self.elastic_replica_count()

    def _add_replicas(self, sample: SignalSample) -> Generator:
        rspec = self.spec.replicas
        wiera = self.manager.wiera
        region = (rspec.region or sample.busiest_region()
                  or self.manager.spec.placements[0].region)
        added = []
        for sid in self.shard_ids():
            tim = wiera.tim(sid)
            if len(tim.elastic_replicas) >= rspec.max_extra:
                continue
            iid = yield from tim.add_replica(region)
            added.append(iid)
            self._c_replica_adds.inc()
        if added:
            yield from self._republish()
        return f"added replicas {added} in {region}"

    def _remove_replicas(self) -> Generator:
        wiera = self.manager.wiera
        removed = []
        for sid in self.shard_ids():
            tim = wiera.tim(sid)
            if not tim.elastic_replicas:
                continue
            iid = yield from tim.remove_replica()
            removed.append(iid)
            self._c_replica_removes.inc()
        if removed:
            yield from self._republish()
        return f"removed replicas {removed}"

    def _republish(self) -> Generator:
        """Publish a new epoch with the same ring but refreshed instance
        lists, so clients and guards learn about replica membership."""
        mgr = self.manager
        shards_new = {sid: tuple(mgr.wiera.tim(sid).instance_list())
                      for sid in mgr.map.shards}
        mgr.publish(mgr.map.ring, shards_new)
        yield from mgr.install_guards(mgr.map)

    # -- tier lever ----------------------------------------------------------
    def _demote_cold(self) -> Generator:
        tspec = self.spec.tier
        if tspec.price_aware and not self._target_tier_cheaper():
            return "skipped: target tier not cheaper"
        wiera = self.manager.wiera
        demoted = 0
        for sid in self.shard_ids():
            tim = wiera.tim(sid)
            for rec in tim.alive_records():
                result = yield tim.node.call(
                    rec.node, "ctl_demote_cold",
                    {"age": tspec.idle_age, "to_tier": tspec.target_tier,
                     "bandwidth": None})
                demoted += len(result["demoted"])
        if demoted:
            self._c_tier_demotions.inc(demoted)
        return f"demoted {demoted} version(s) to {tspec.target_tier}"

    def _target_tier_cheaper(self) -> bool:
        """Consult the Table 4 price book: is the demotion target actually
        cheaper per GB-month than the policy's default store tier?"""
        policy = self.manager.spec.placements[0].local_policy
        profiles = {t.name: t.profile for t in policy.tiers}
        source = profiles.get(policy.default_store_tier())
        target = profiles.get(self.spec.tier.target_tier)
        if source is None or target is None:
            return True   # unknown tiers: let the demotion proceed
        if source not in PRICE_BOOK or target not in PRICE_BOOK:
            return True
        return PRICE_BOOK[target].storage < PRICE_BOOK[source].storage

    # -- bookkeeping ---------------------------------------------------------
    def _record(self, sample: SignalSample, shards: int, desired: int,
                action: str, reason: str, took: float = 0.0,
                detail: str = "") -> None:
        self.decisions.append(AutoscaleDecision(
            time=self.sim.now, offered_rate=sample.offered_rate,
            shed=sample.shed, queue_depth=sample.queue_depth,
            egress_utilization=sample.egress_utilization,
            shards=shards, desired=desired, action=action, reason=reason,
            took=took, detail=detail))
