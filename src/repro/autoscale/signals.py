"""Signal plane for the autoscaler: what the controller watches.

The controller never instruments the data path itself — every signal is
derived from state other subsystems already maintain:

* **offered / achieved / shed rate** — windowed deltas of the load
  engine's ``load.*`` counters in the shared metrics registry (every
  cohort records them; the reader sums across cohorts).
* **queue depth** — arrivals waiting for a pooled connection, summed
  across the deployment's cohorts (the leading indicator: queues grow
  before shed starts).
* **per-host egress utilization** — bytes clocked through each Tiera
  host's egress link over the window divided by the link's capacity;
  the binding resource for large-value read traffic.
* **demand by region** — per-region offered deltas (from cohort stats,
  or :class:`~repro.core.workload_monitor.WorkloadMonitor` windows when
  monitors are attached), used to place elastic replicas where the
  crowd actually is.

All reads are pull-based and free of simulated time: sampling a window
costs zero sim-seconds, so an idle autoscaler perturbs nothing but the
kernel event count of its own timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: counters summed across cohorts for the headline rates
_LOAD_COUNTERS = ("load.offered", "load.achieved", "load.shed")


@dataclass(frozen=True)
class SignalSample:
    """One decision window's worth of observed load."""

    time: float
    interval: float
    offered_rate: float = 0.0
    achieved_rate: float = 0.0
    shed: int = 0                 # arrivals shed during the window
    queue_depth: int = 0          # arrivals waiting right now
    egress_utilization: float = 0.0   # worst host, 0..1 (0 if unbounded)
    demand_by_region: dict[str, float] = field(default_factory=dict)

    def busiest_region(self) -> Optional[str]:
        demand = self.demand_by_region
        if not demand:
            return None
        return max(sorted(demand), key=lambda r: demand[r])


class SignalReader:
    """Windowed view over the metrics registry, cohorts, and network.

    ``engine_provider`` is a zero-arg callable returning the deployment's
    :class:`~repro.load.engine.LoadEngine` (or None while no cohorts
    exist yet — the harness creates the engine lazily, usually *after*
    the autoscaler starts).  ``hosts_provider`` returns the Tiera hosts
    whose egress links to watch.  ``monitors`` optionally attaches
    :class:`~repro.core.workload_monitor.WorkloadMonitor` instances whose
    last polling round overrides the cohort-derived region demand.
    """

    def __init__(self, metrics, engine_provider: Optional[Callable] = None,
                 hosts_provider: Optional[Callable] = None,
                 monitors: Optional[list] = None):
        self.metrics = metrics
        self.engine_provider = engine_provider
        self.hosts_provider = hosts_provider
        self.monitors = list(monitors) if monitors else []
        self._last_totals: dict[str, int] = {}
        self._last_by_region: dict[str, int] = {}
        self._last_egress: dict[str, int] = {}
        self._last_time: Optional[float] = None

    # -- raw totals ---------------------------------------------------------
    def _counter_totals(self) -> dict[str, int]:
        totals = dict.fromkeys(_LOAD_COUNTERS, 0)
        for metric in self.metrics:
            if metric.kind == "counter" and metric.name in totals:
                totals[metric.name] += metric.value
        return totals

    def _offered_by_region(self) -> dict[str, int]:
        engine = self.engine_provider() if self.engine_provider else None
        if engine is None:
            return {}
        out: dict[str, int] = {}
        for cohort in engine:
            region = cohort.spec.region
            out[region] = out.get(region, 0) + cohort.stats.offered
        return out

    def _queue_depth(self) -> int:
        engine = self.engine_provider() if self.engine_provider else None
        if engine is None:
            return 0
        return sum(cohort.queued for cohort in engine)

    def _egress_utilization(self, now: float, interval: float) -> float:
        hosts = self.hosts_provider() if self.hosts_provider else ()
        worst = 0.0
        seen: dict[str, int] = {}
        for host in hosts:
            link = host.egress
            if host.name in seen:
                continue
            seen[host.name] = link.bytes_sent
            if link.rate == float("inf"):
                continue
            sent = link.bytes_sent - self._last_egress.get(host.name, 0)
            worst = max(worst, sent / (link.rate * interval))
        self._last_egress = seen
        return worst

    # -- the sampling entry point -------------------------------------------
    def sample(self, now: float) -> SignalSample:
        """Observe one window ending at ``now``; deltas are measured
        against the previous call."""
        interval = (now - self._last_time
                    if self._last_time is not None else 0.0)
        interval = max(interval, 1e-12)
        totals = self._counter_totals()
        deltas = {name: totals[name] - self._last_totals.get(name, 0)
                  for name in totals}
        self._last_totals = totals

        by_region_now = self._offered_by_region()
        region_deltas = {
            region: (count - self._last_by_region.get(region, 0)) / interval
            for region, count in by_region_now.items()}
        self._last_by_region = by_region_now
        if self.monitors:
            demand: dict[str, float] = {}
            for monitor in self.monitors:
                for region, n in monitor.demand_by_region(window=1).items():
                    demand[region] = demand.get(region, 0.0) + n
            region_deltas = demand or region_deltas

        utilization = self._egress_utilization(now, interval)
        if self._last_time is None:
            # First observation: no window yet, report a quiet sample.
            self._last_time = now
            return SignalSample(time=now, interval=0.0,
                                queue_depth=self._queue_depth(),
                                egress_utilization=0.0)
        self._last_time = now
        return SignalSample(
            time=now,
            interval=interval,
            offered_rate=deltas["load.offered"] / interval,
            achieved_rate=deltas["load.achieved"] / interval,
            shed=deltas["load.shed"],
            queue_depth=self._queue_depth(),
            egress_utilization=utilization,
            demand_by_region=region_deltas,
        )
