"""Shared utilities: unit parsing, deterministic RNG streams, statistics."""

from repro.util.units import (
    parse_size,
    parse_duration,
    parse_bandwidth,
    format_size,
    format_duration,
    KB,
    MB,
    GB,
    TB,
    MS,
    SECOND,
    MINUTE,
    HOUR,
)
from repro.util.rng import RngRegistry
from repro.util.stats import LatencyRecorder, OnlineStats, percentile

__all__ = [
    "parse_size",
    "parse_duration",
    "parse_bandwidth",
    "format_size",
    "format_duration",
    "KB",
    "MB",
    "GB",
    "TB",
    "MS",
    "SECOND",
    "MINUTE",
    "HOUR",
    "RngRegistry",
    "LatencyRecorder",
    "OnlineStats",
    "percentile",
]
