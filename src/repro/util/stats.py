"""Lightweight statistics helpers used by monitors and the bench harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    return percentile_sorted(sorted(samples), q)


def percentile_sorted(data: list[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sample list.

    Lets callers computing several quantiles (p50/p95/p99) sort once and
    share the sorted list instead of paying one sort per quantile.
    """
    if not data:
        raise ValueError("percentile of empty sample set")
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    # lo + diff*frac (not the two-product form): exact when both ends are
    # equal, and clamped so rounding can never leave [data[lo], data[hi]].
    value = data[lo] + (data[hi] - data[lo]) * frac
    return min(max(value, data[lo]), data[hi])


class OnlineStats:
    """Welford online mean/variance plus min/max, O(1) memory."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (Chan et al. parallel
        combine): the result is exactly what one accumulator fed both
        sample streams would hold, up to float rounding."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        n1, n2 = self.count, other.count
        total = n1 + n2
        delta = other._mean - self._mean
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


@dataclass
class LatencyRecorder:
    """Timestamped latency samples, with windowed and aggregate views.

    Used both by experiment harnesses (to build the figures' time series)
    and by Wiera's latency monitor (to evaluate threshold violations over a
    sliding window, as in the DynamicConsistency policy).
    """

    name: str = "latency"
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    def record(self, t: float, latency: float, label: str = "") -> None:
        self.times.append(t)
        self.values.append(latency)
        self.labels.append(label)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def window(self, start: float, end: float) -> list[float]:
        """Samples recorded in the half-open time interval [start, end)."""
        return [v for t, v in zip(self.times, self.values) if start <= t < end]

    def filtered(self, label: str) -> "LatencyRecorder":
        out = LatencyRecorder(name=f"{self.name}[{label}]")
        for t, v, lbl in zip(self.times, self.values, self.labels):
            if lbl == label:
                out.record(t, v, lbl)
        return out

    def series(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))
