"""Unit parsing and formatting for the policy DSL and configuration.

The Wiera/Tiera policy notation uses human-readable quantities such as
``5G`` (tier capacity), ``40KB/s`` (copy bandwidth caps), ``800 ms``
(latency thresholds) and ``120 hours`` (cold-data thresholds).  This module
provides the canonical parsers.  Internally, sizes are bytes (int),
durations are seconds (float) and bandwidths are bytes/second (float).
"""

from __future__ import annotations

import re

# Size constants (binary multiples, as cloud tier sizes are conventionally
# advertised in GiB even when written "GB").
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Duration constants (seconds).
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "KIB": KB,
    "M": MB,
    "MB": MB,
    "MIB": MB,
    "G": GB,
    "GB": GB,
    "GIB": GB,
    "T": TB,
    "TB": TB,
    "TIB": TB,
}

_DURATION_SUFFIXES = {
    "US": 1e-6,
    "MS": MS,
    "MSEC": MS,
    "MILLISECOND": MS,
    "MILLISECONDS": MS,
    "S": SECOND,
    "SEC": SECOND,
    "SECS": SECOND,
    "SECOND": SECOND,
    "SECONDS": SECOND,
    "MIN": MINUTE,
    "MINS": MINUTE,
    "MINUTE": MINUTE,
    "MINUTES": MINUTE,
    "H": HOUR,
    "HR": HOUR,
    "HRS": HOUR,
    "HOUR": HOUR,
    "HOURS": HOUR,
    "D": DAY,
    "DAY": DAY,
    "DAYS": DAY,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z/]*)\s*$")


class UnitParseError(ValueError):
    """Raised when a quantity string cannot be parsed."""


def _split(text: str | int | float) -> tuple[float, str]:
    if isinstance(text, (int, float)):
        return float(text), ""
    m = _QUANTITY_RE.match(text)
    if not m:
        raise UnitParseError(f"cannot parse quantity: {text!r}")
    return float(m.group(1)), m.group(2).upper()


def parse_size(text: str | int | float) -> int:
    """Parse a size such as ``"5G"``, ``"4 KB"`` or ``1024`` into bytes."""
    value, suffix = _split(text)
    if suffix not in _SIZE_SUFFIXES:
        raise UnitParseError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def parse_duration(text: str | int | float) -> float:
    """Parse a duration such as ``"800 ms"`` or ``"120 hours"`` into seconds.

    A bare number is interpreted as seconds.
    """
    value, suffix = _split(text)
    if suffix == "":
        return value
    if suffix not in _DURATION_SUFFIXES:
        raise UnitParseError(f"unknown duration suffix {suffix!r} in {text!r}")
    return value * _DURATION_SUFFIXES[suffix]


def parse_bandwidth(text: str | int | float) -> float:
    """Parse a bandwidth such as ``"40KB/s"`` or ``"1Gbps"`` into bytes/sec."""
    if isinstance(text, (int, float)):
        return float(text)
    raw = text.strip()
    upper = raw.upper()
    if upper.endswith("BPS"):  # bits per second, e.g. 500Mbps
        value, suffix = _split(raw[:-3])
        if suffix not in _SIZE_SUFFIXES:
            raise UnitParseError(f"unknown bandwidth suffix in {text!r}")
        # Network rates use decimal multiples; keep binary for consistency
        # with parse_size so 1KB/s == parse_size("1KB") per second.
        return value * _SIZE_SUFFIXES[suffix] / 8.0
    if "/" in raw:
        size_part, _, per = raw.partition("/")
        if per.strip().lower() not in ("s", "sec", "second"):
            raise UnitParseError(f"bandwidth must be per-second: {text!r}")
        return float(parse_size(size_part))
    return float(parse_size(raw))


def format_size(nbytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``4.0KB``."""
    value = float(nbytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or suffix == "TB":
            return f"{value:.1f}{suffix}" if suffix != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Format a duration compactly, e.g. ``1.5ms``, ``30.0s``, ``2.0h``."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}min"
    return f"{seconds / HOUR:.1f}h"
