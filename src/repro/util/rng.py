"""Deterministic per-component random streams.

Every stochastic component (workload generators, jitter models, failure
injectors) draws from its own named ``numpy.random.Generator`` derived from
one root seed, so adding a component never perturbs the draws seen by the
others and every experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent, deterministically-seeded random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the registry seed with a stable hash of the
        name, so streams are independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment trial)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))
