"""Deterministic per-component random streams.

Every stochastic component (workload generators, jitter models, failure
injectors) draws from its own named ``numpy.random.Generator`` derived from
one root seed, so adding a component never perturbs the draws seen by the
others and every experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent, deterministically-seeded random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the registry seed with a stable hash of the
        name, so streams are independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def substream(self, name: str, key: int | str) -> np.random.Generator:
        """An indexed member of a named stream family.

        ``substream("load.cohort", 7)`` and ``substream("load.cohort", 8)``
        are statistically independent generators with no shared state, so
        two client cohorts drawing inter-arrival times never perturb each
        other's sequences — adding, removing, or reordering cohorts leaves
        every other cohort's draws bit-identical.  Each (name, key) pair
        maps to one cached generator; the split is by seed derivation, not
        by jumping a shared stream, so there is no cross-talk by
        construction.
        """
        return self.stream(f"{name}[{key}]")

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment trial)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))


def exponential_interarrival(rng: np.random.Generator, rate: float) -> float:
    """One exponential inter-arrival gap (seconds) for a Poisson process
    of ``rate`` events/second.  Deterministic given the generator state."""
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    return float(rng.exponential(1.0 / rate))


def interarrival_times(rng: np.random.Generator, rate: float,
                       horizon: float):
    """Yield successive Poisson arrival offsets in ``[0, horizon)``.

    A convenience for tests and trace construction; the open-loop engine
    itself draws incrementally via :func:`exponential_interarrival` so
    arrivals interleave with simulation time.
    """
    t = exponential_interarrival(rng, rate)
    while t < horizon:
        yield t
        t += exponential_interarrival(rng, rate)
