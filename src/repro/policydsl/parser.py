"""Recursive-descent parser for the policy notation.

Grammar (see the package docstring for an example)::

    policy      := ("Tiera" | "Wiera") IDENT "(" params? ")" "{" item* "}"
    params      := IDENT IDENT ("," IDENT IDENT)*
    item        := tier_decl | region_decl | option_decl | event_rule
    tier_decl   := IDENT ":" braced_props ";"?
    region_decl := IDENT "=" braced_props ";"?
    option_decl := IDENT "=" value ";"
    event_rule  := "event" "(" expr ")" ":" "response" "{" stmt* "}"
    stmt        := if_stmt | assign ";" | action ";"
    assign      := path "=" expr
    action      := IDENT "(" (IDENT ":" expr ("," IDENT ":" expr)*)? ")"
    if_stmt     := "if" "(" expr ")" body ("else" (if_stmt | body))?
    body        := "{" stmt* "}" | stmt
    expr        := and_expr ("||" and_expr)*
    and_expr    := cmp ("&&" cmp)*
    cmp         := operand (CMPOP operand)?
    operand     := path | literal
    literal     := NUMBER [unit-IDENT] | QUANTITY | STRING | true | false

Inside braced property maps, ``:`` and ``=`` both separate key from
value, and nested braces declare per-region tier overrides (as in
Figure 3(a)).
"""

from __future__ import annotations

from typing import Optional

from repro.policydsl import ast_nodes as ast
from repro.policydsl.lexer import Token, tokenize

_CMP_OPS = ("==", "!=", ">=", "<=", ">", "<", "=")
_UNIT_WORDS = {
    "ms", "msec", "milliseconds", "millisecond",
    "s", "sec", "secs", "second", "seconds",
    "min", "mins", "minute", "minutes",
    "h", "hr", "hrs", "hour", "hours",
    "d", "day", "days",
    "b", "kb", "mb", "gb", "tb", "k", "m", "g", "t",
}


class ParseError(ValueError):
    def __init__(self, msg: str, token: Token):
        super().__init__(f"{msg} (got {token.kind} {token.value!r} "
                         f"at line {token.line}, column {token.col})")
        self.token = token


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self.cur
        self.pos += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.cur
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}", self.cur)
        return token

    def _accept_ident(self, *words: str) -> Optional[Token]:
        token = self.cur
        if token.kind == "IDENT" and token.value.lower() in words:
            return self._next()
        return None

    # -- entry point ----------------------------------------------------------
    def parse(self) -> ast.PolicyDoc:
        scope_tok = self._expect("IDENT")
        scope = scope_tok.value.lower()
        if scope not in ("tiera", "wiera"):
            raise ParseError("policy must start with 'Tiera' or 'Wiera'",
                             scope_tok)
        name = self._expect("IDENT").value
        params = self._parse_params()
        self._expect("PUNCT", "{")
        tiers: list[ast.TierDecl] = []
        regions: list[ast.RegionDecl] = []
        options: dict[str, ast.Expr] = {}
        rules: list[ast.EventRule] = []
        while not self._accept("PUNCT", "}"):
            if self.cur.kind == "EOF":
                raise ParseError("unexpected end of policy", self.cur)
            if self.cur.kind == "IDENT" and self.cur.value.lower() == "event":
                rules.append(self._parse_event_rule())
                continue
            name_tok = self._expect("IDENT")
            if self._accept("PUNCT", ":"):
                props = self._parse_props()
                self._accept("PUNCT", ";")
                tiers.append(ast.TierDecl(name_tok.value, props))
            elif self._accept("PUNCT", "="):
                if self.cur.kind == "PUNCT" and self.cur.value == "{":
                    props, nested = self._parse_props_with_nested()
                    self._accept("PUNCT", ";")
                    regions.append(ast.RegionDecl(name_tok.value, props,
                                                  nested))
                else:
                    options[name_tok.value] = self._parse_expr()
                    self._expect("PUNCT", ";")
            else:
                raise ParseError("expected ':' or '=' after identifier",
                                 self.cur)
        return ast.PolicyDoc(scope=scope, name=name, params=tuple(params),
                             tiers=tuple(tiers), regions=tuple(regions),
                             options=options, rules=tuple(rules))

    def _parse_params(self) -> list[ast.Param]:
        self._expect("PUNCT", "(")
        params: list[ast.Param] = []
        if not self._accept("PUNCT", ")"):
            while True:
                kind = self._expect("IDENT").value
                name = self._expect("IDENT").value
                params.append(ast.Param(kind=kind, name=name))
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ")")
        return params

    # -- property maps ------------------------------------------------------
    def _parse_props(self) -> dict[str, ast.Expr]:
        props, nested = self._parse_props_with_nested()
        if nested:
            raise ParseError("nested tier declarations are only allowed in "
                             "region declarations", self.cur)
        return props

    def _parse_props_with_nested(self):
        self._expect("PUNCT", "{")
        props: dict[str, ast.Expr] = {}
        nested: dict[str, dict[str, ast.Expr]] = {}
        while not self._accept("PUNCT", "}"):
            key = self._expect("IDENT").value
            if not (self._accept("PUNCT", ":") or self._accept("PUNCT", "=")):
                raise ParseError("expected ':' or '=' in property map",
                                 self.cur)
            if self.cur.kind == "PUNCT" and self.cur.value == "{":
                sub, sub_nested = self._parse_props_with_nested()
                if sub_nested:
                    raise ParseError("tier overrides cannot nest further",
                                     self.cur)
                nested[key] = sub
            else:
                props[key] = self._parse_expr()
            self._accept("PUNCT", ",")
        return props, nested

    # -- rules & statements -----------------------------------------------------
    def _parse_event_rule(self) -> ast.EventRule:
        self._expect("IDENT")  # 'event'
        self._expect("PUNCT", "(")
        event = self._parse_expr()
        self._expect("PUNCT", ")")
        self._expect("PUNCT", ":")
        kw = self._expect("IDENT")
        if kw.value.lower() != "response":
            raise ParseError("expected 'response'", kw)
        body = self._parse_block()
        return ast.EventRule(event=event, body=tuple(body))

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect("PUNCT", "{")
        stmts: list[ast.Stmt] = []
        while not self._accept("PUNCT", "}"):
            if self.cur.kind == "EOF":
                raise ParseError("unterminated block", self.cur)
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_body(self) -> list[ast.Stmt]:
        if self.cur.kind == "PUNCT" and self.cur.value == "{":
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_stmt(self) -> ast.Stmt:
        if self.cur.kind == "IDENT" and self.cur.value.lower() == "if":
            return self._parse_if()
        # assignment starts with a path followed by '=' (but not '==')
        if (self.cur.kind == "IDENT"
                and self._looks_like_assignment()):
            target = self._parse_path()
            self._expect("PUNCT", "=")
            value = self._parse_expr()
            self._accept("PUNCT", ";")
            return ast.Assign(target=target, value=value)
        name = self._expect("IDENT").value
        self._expect("PUNCT", "(")
        args: dict[str, ast.Expr] = {}
        if not self._accept("PUNCT", ")"):
            while True:
                key = self._expect("IDENT").value
                self._expect("PUNCT", ":")
                args[key] = self._parse_expr()
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ")")
        self._accept("PUNCT", ";")
        return ast.Action(name=name, args=args)

    def _looks_like_assignment(self) -> bool:
        """Lookahead: IDENT (.IDENT)* '=' but not '=='."""
        i = self.pos
        toks = self.tokens
        if toks[i].kind != "IDENT":
            return False
        i += 1
        while (toks[i].kind == "PUNCT" and toks[i].value == "."
               and toks[i + 1].kind == "IDENT"):
            i += 2
        return toks[i].kind == "PUNCT" and toks[i].value == "="

    def _parse_if(self) -> ast.If:
        self._expect("IDENT")  # 'if'
        self._expect("PUNCT", "(")
        cond = self._parse_expr()
        self._expect("PUNCT", ")")
        then = self._parse_body()
        orelse: list[ast.Stmt] = []
        if self._accept_ident("else"):
            if self.cur.kind == "IDENT" and self.cur.value.lower() == "if":
                orelse = [self._parse_if()]
            else:
                orelse = self._parse_body()
        return ast.If(cond=cond, then=tuple(then), orelse=tuple(orelse))

    # -- expressions -----------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept("PUNCT", "||"):
            right = self._parse_and()
            left = ast.BinOp(op="||", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_cmp()
        while self._accept("PUNCT", "&&"):
            right = self._parse_cmp()
            left = ast.BinOp(op="&&", left=left, right=right)
        return left

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_operand()
        for op in _CMP_OPS:
            if self._accept("PUNCT", op):
                right = self._parse_operand()
                return ast.BinOp(op="==" if op == "=" else op,
                                 left=left, right=right)
        return left

    def _parse_operand(self) -> ast.Expr:
        token = self.cur
        if token.kind == "NUMBER":
            self._next()
            unit = ""
            if (self.cur.kind == "IDENT"
                    and self.cur.value.lower() in _UNIT_WORDS):
                unit = self._next().value
            if unit:
                return ast.Literal(ast.Quantity(float(token.value), unit))
            return ast.Literal(float(token.value))
        if token.kind == "QUANTITY":
            self._next()
            number = ""
            for i, ch in enumerate(token.value):
                if ch.isdigit() or ch == ".":
                    number += ch
                else:
                    return ast.Literal(ast.Quantity(float(number),
                                                    token.value[i:]))
            raise ParseError("malformed quantity", token)
        if token.kind == "STRING":
            self._next()
            return ast.Literal(token.value)
        if token.kind == "IDENT":
            low = token.value.lower()
            if low in ("true", "false"):
                self._next()
                return ast.Literal(low == "true")
            return self._parse_path()
        raise ParseError("expected an operand", token)

    def _parse_path(self) -> ast.Path:
        parts = [self._expect("IDENT").value]
        while self.cur.kind == "PUNCT" and self.cur.value == ".":
            if self._peek().kind != "IDENT":
                break
            self._next()
            parts.append(self._expect("IDENT").value)
        return ast.Path(tuple(parts))


def parse_policy(text: str) -> ast.PolicyDoc:
    """Parse a policy document into its AST."""
    return Parser(text).parse()
