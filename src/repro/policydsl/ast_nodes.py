"""AST node definitions for the policy notation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Quantity:
    """A number with a unit suffix: 5G, 800 ms, 40KB/s, 50%."""

    number: float
    unit: str   # "" | "G" | "ms" | "KB/s" | "%" | "hours" ...

    def __str__(self) -> str:
        n = int(self.number) if self.number == int(self.number) else self.number
        return f"{n}{self.unit}"


@dataclass(frozen=True)
class Literal:
    value: object   # str | float | bool | Quantity


@dataclass(frozen=True)
class Path:
    """Dotted reference: insert.into, object.dirty, threshold.latency."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)

    def matches(self, *parts: str) -> bool:
        return self.parts == parts


@dataclass(frozen=True)
class BinOp:
    op: str            # == != > < >= <= && || =
    left: "Expr"
    right: "Expr"


Expr = Union[Literal, Path, BinOp]


@dataclass(frozen=True)
class Assign:
    """insert.object.dirty = true;"""

    target: Path
    value: Expr


@dataclass(frozen=True)
class Action:
    """store(what: insert.object, to: tier1);"""

    name: str
    args: dict[str, Expr] = field(default_factory=dict)


@dataclass(frozen=True)
class If:
    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()   # may hold a nested If for elif chains


Stmt = Union[Assign, Action, If]


@dataclass(frozen=True)
class EventRule:
    event: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class TierDecl:
    """tier1: {name: Memcached, size: 5G};"""

    name: str
    props: dict[str, Expr]


@dataclass(frozen=True)
class RegionDecl:
    """Region1 = {name: LowLatencyInstance, region: US-West, primary: True,
    tier1 = {...}};"""

    name: str
    props: dict[str, Expr]
    tiers: dict[str, dict[str, Expr]] = field(default_factory=dict)


@dataclass(frozen=True)
class Param:
    """A formal parameter: ``time t`` declares t of kind time."""

    kind: str
    name: str


@dataclass(frozen=True)
class PolicyDoc:
    """A full Tiera or Wiera policy document."""

    scope: str                      # "tiera" | "wiera"
    name: str
    params: tuple[Param, ...] = ()
    tiers: tuple[TierDecl, ...] = ()
    regions: tuple[RegionDecl, ...] = ()
    options: dict[str, Expr] = field(default_factory=dict)
    rules: tuple[EventRule, ...] = ()
