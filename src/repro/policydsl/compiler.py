"""Compile policy ASTs to runtime policy objects.

``Tiera`` documents compile to :class:`~repro.tiera.policy.LocalPolicy`;
``Wiera`` documents compile to
:class:`~repro.core.global_policy.GlobalPolicySpec`, with the consistency
protocol *inferred from the event-response rules themselves* — a rule that
takes a global lock and synchronously copies to all regions is
MultiPrimaries; an isPrimary branch with forward is PrimaryBackup; a local
store plus queue is Eventual — mirroring how the paper's figures express
them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.core.global_policy import (
    ChangePrimarySpec,
    DynamicConsistencySpec,
    GlobalPolicySpec,
    RegionPlacement,
)
from repro.policydsl import ast_nodes as ast
from repro.policydsl.parser import parse_policy
from repro.storage.profiles import get_tier_profile
from repro.tiera.events import (
    ColdDataEvent,
    FilledEvent,
    InsertEvent,
    OperationEvent,
    TimerEvent,
)
from repro.tiera.policy import LocalPolicy, Rule, TierSpec
from repro.tiera.responses import (
    INSERT_OBJECT,
    CompressResponse,
    CopyResponse,
    DeleteResponse,
    EncryptResponse,
    GrowResponse,
    MoveResponse,
    ObjectSelector,
    SetAttrResponse,
    StoreResponse,
)
from repro.util.units import parse_bandwidth, parse_duration, parse_size


class CompileError(ValueError):
    pass


# ---------------------------------------------------------------------------
# value coercion
# ---------------------------------------------------------------------------

def _as_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Path):
        return str(expr)
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return expr.value
    raise CompileError(f"expected a name, got {expr!r}")


def _as_bool(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.Path):
        return str(expr).lower() == "true"
    raise CompileError(f"expected a boolean, got {expr!r}")


def _quantity_text(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        v = expr.value
        if isinstance(v, ast.Quantity):
            return f"{v.number}{v.unit}"
        if isinstance(v, (int, float)):
            return str(v)
        if isinstance(v, str):
            return v
    raise CompileError(f"expected a quantity, got {expr!r}")


def _as_size(expr: ast.Expr) -> int:
    return parse_size(_quantity_text(expr))


def _as_duration(expr: ast.Expr) -> float:
    return parse_duration(_quantity_text(expr))


def _as_bandwidth(expr: ast.Expr) -> float:
    return parse_bandwidth(_quantity_text(expr))


def _as_fraction(expr: ast.Expr) -> float:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, ast.Quantity):
        if expr.value.unit == "%":
            return expr.value.number / 100.0
    if isinstance(expr, ast.Literal) and isinstance(expr.value, float):
        return expr.value
    raise CompileError(f"expected a percentage, got {expr!r}")


def normalize_region(name: str) -> str:
    return name.strip().lower()


_POLICY_NAME_MAP = {
    "eventualconsistency": "eventual",
    "eventual": "eventual",
    "multiprimariesconsistency": "multi_primaries",
    "multipleprimariesconsistency": "multi_primaries",
    "multiprimaries": "multi_primaries",
    "strong": "multi_primaries",
    "primarybackupconsistency": "primary_backup",
    "primarybackup": "primary_backup",
    "local": "local",
}


def _consistency_name(name: str) -> str:
    key = name.lower().replace("_", "").replace("-", "")
    try:
        return _POLICY_NAME_MAP[key]
    except KeyError:
        raise CompileError(f"unknown consistency policy name {name!r}") from None


# ---------------------------------------------------------------------------
# shared expression helpers
# ---------------------------------------------------------------------------

def _flatten_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinOp) and expr.op == "&&":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _flatten_stmts(stmts: Iterable[ast.Stmt]) -> list[ast.Stmt]:
    out: list[ast.Stmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, ast.If):
            out.extend(_flatten_stmts(stmt.then))
            out.extend(_flatten_stmts(stmt.orelse))
    return out


def _actions(stmts: Iterable[ast.Stmt]) -> list[ast.Action]:
    return [s for s in _flatten_stmts(stmts) if isinstance(s, ast.Action)]


def _compile_selector(expr: ast.Expr,
                      min_idle: Optional[float] = None) -> ObjectSelector:
    """object.location == tier1 && object.dirty == true -> ObjectSelector."""
    location: Optional[str] = None
    dirty: Optional[bool] = None
    tags: set[str] = set()
    prefix: Optional[str] = None
    for clause in _flatten_and(expr):
        if not isinstance(clause, ast.BinOp):
            raise CompileError(f"cannot compile selector clause {clause!r}")
        left, right = clause.left, clause.right
        if not isinstance(left, ast.Path):
            raise CompileError(f"selector clause must start with a path: "
                               f"{clause!r}")
        field = left.parts[-1].lower()
        if field == "location":
            location = _as_name(right)
        elif field == "dirty":
            dirty = _as_bool(right)
        elif field == "tag" or field == "tags":
            tags.add(_as_name(right))
        elif field in ("lastaccessedtime", "idle"):
            min_idle = _as_duration(right)
        elif field in ("key", "prefix"):
            prefix = _as_name(right)
        else:
            raise CompileError(f"unknown selector attribute {field!r}")
    return ObjectSelector(location=location, dirty=dirty,
                          tags=frozenset(tags), min_idle=min_idle,
                          key_prefix=prefix)


def _what_argument(args: dict[str, ast.Expr],
                   cold_age: Optional[float] = None):
    what = args.get("what")
    if what is None or (isinstance(what, ast.Path)
                        and str(what) in ("insert.object", "insert.oject",
                                          "get.object", "accessed.object")):
        # (the figure text itself contains the 'insert.oject' typo)
        return INSERT_OBJECT
    if isinstance(what, ast.Path) and str(what) == "insert.key":
        return INSERT_OBJECT
    return _compile_selector(what, min_idle=cold_age)


# ---------------------------------------------------------------------------
# Tiera (local) compilation
# ---------------------------------------------------------------------------

_LOCAL_ACTIONS = ("store", "copy", "move", "delete", "remove", "compress",
                  "encrypt", "grow")


def _compile_local_response(action: ast.Action,
                            cold_age: Optional[float] = None):
    name = action.name.lower()
    args = action.args
    what = _what_argument(args, cold_age)
    to = _as_name(args["to"]) if "to" in args else None
    bandwidth = _as_bandwidth(args["bandwidth"]) if "bandwidth" in args else None
    if name == "store":
        if to is None:
            raise CompileError("store requires a 'to' tier")
        return StoreResponse(to=to)
    if name == "copy":
        if to is None:
            raise CompileError("copy requires a 'to' tier")
        clear = ("dirty" in str(args.get("what", "")).lower()
                 or (isinstance(what, ObjectSelector) and what.dirty is True))
        return CopyResponse(what=what, to=to, bandwidth=bandwidth,
                            clear_dirty=bool(clear))
    if name == "move":
        if to is None:
            raise CompileError("move requires a 'to' tier")
        from_tier = (what.location
                     if isinstance(what, ObjectSelector) else None)
        return MoveResponse(what=what, to=to, from_tier=from_tier,
                            bandwidth=bandwidth)
    if name in ("delete", "remove"):
        return DeleteResponse(what=what)
    if name == "compress":
        level = 6
        if "level" in args:
            level = int(_as_duration(args["level"]))
        return CompressResponse(what=what, level=level)
    if name == "encrypt":
        key_id = _as_name(args["key"]) if "key" in args else "default"
        return EncryptResponse(what=what, key_id=key_id)
    if name == "grow":
        tier = _as_name(args["tier"]) if "tier" in args else (to or "tier1")
        return GrowResponse(tier=tier, amount=_as_size(args["by"]))
    raise CompileError(f"unknown local response {action.name!r}")


def _compile_local_event(expr: ast.Expr, params: dict):
    """Map an event expression to a Tiera event descriptor."""
    if isinstance(expr, ast.Path):
        if expr.matches("insert", "into"):
            return InsertEvent(tier=None)
        if expr.matches("get", "from"):
            return OperationEvent(op="get", tier=None)
        raise CompileError(f"unknown event {expr!r}")
    if not isinstance(expr, ast.BinOp):
        raise CompileError(f"cannot compile event expression {expr!r}")
    left, op, right = expr.left, expr.op, expr.right
    if isinstance(left, ast.Path):
        if left.matches("insert", "into") and op == "==":
            return InsertEvent(tier=_as_name(right))
        if left.matches("get", "from") and op == "==":
            return OperationEvent(op="get", tier=_as_name(right))
        if left.matches("time"):
            if isinstance(right, ast.Path):
                pname = str(right)
                if pname not in params:
                    raise CompileError(
                        f"timer parameter {pname!r} not supplied "
                        f"(have {sorted(params)})")
                return TimerEvent(period=float(params[pname]))
            return TimerEvent(period=_as_duration(right))
        if len(left.parts) == 2 and left.parts[1].lower() == "filled":
            return FilledEvent(tier=left.parts[0],
                               fraction=_as_fraction(right))
        if (left.parts[-1].lower() in ("lastaccessedtime", "idle")
                and op in (">", ">=")):
            age = _as_duration(right)
            interval = params.get("cold_check_interval", 600.0)
            return ColdDataEvent(age=age, check_interval=float(interval))
    raise CompileError(f"cannot compile event expression {expr!r}")


def _compile_tiera(doc: ast.PolicyDoc,
                   params: Optional[dict] = None) -> LocalPolicy:
    params = dict(params or {})
    tiers = []
    for decl in doc.tiers:
        profile = _as_name(decl.props["name"])
        get_tier_profile(profile)  # fail fast on unknown tiers
        capacity = (_as_size(decl.props["size"])
                    if "size" in decl.props else None)
        tiers.append(TierSpec(name=decl.name, profile=profile,
                              capacity=capacity))
    rules = []
    keep_versions = None
    for key, value in doc.options.items():
        if key.lower() == "keep_versions":
            keep_versions = int(_as_duration(value))
        elif key.lower() == "cold_check_interval":
            params["cold_check_interval"] = _as_duration(value)
        else:
            params[key] = value
    for rule in doc.rules:
        event = _compile_local_event(rule.event, params)
        cold_age = event.age if isinstance(event, ColdDataEvent) else None
        responses = []
        for stmt in rule.body:
            if isinstance(stmt, ast.Assign):
                if stmt.target.parts[-1].lower() == "dirty":
                    responses.append(SetAttrResponse(
                        "dirty", _as_bool(stmt.value)))
                else:
                    raise CompileError(
                        f"cannot assign {stmt.target} in a local policy")
            elif isinstance(stmt, ast.Action):
                responses.append(_compile_local_response(stmt, cold_age))
            else:
                raise CompileError(
                    "if-statements are not supported in local policies")
        rules.append(Rule(event=event, responses=tuple(responses)))
    return LocalPolicy(name=doc.name, tiers=tuple(tiers), rules=tuple(rules),
                       keep_versions=keep_versions)


# ---------------------------------------------------------------------------
# Wiera (global) compilation
# ---------------------------------------------------------------------------

def _threshold_values(cond: ast.Expr) -> dict[str, float]:
    """Pull threshold.latency / threshold.period bounds out of an if cond."""
    out: dict[str, float] = {}
    for clause in _flatten_and(cond):
        if isinstance(clause, ast.BinOp) and isinstance(clause.left, ast.Path):
            field = clause.left.parts[-1].lower()
            if field in ("latency", "period"):
                out[field] = _as_duration(clause.right)
    return out


def _infer_consistency(rule: ast.EventRule) -> tuple[str, bool]:
    """Classify an insert.into rule: (consistency, sync_replication)."""
    actions = {a.name.lower() for a in _actions(rule.body)}
    has_primary_branch = any(
        isinstance(s, ast.If) and any(
            isinstance(c, ast.BinOp) and isinstance(c.left, ast.Path)
            and c.left.parts[-1].lower() == "isprimary"
            for c in _flatten_and(s.cond))
        for s in rule.body)
    if "lock" in actions:
        return "multi_primaries", True
    if has_primary_branch or "forward" in actions:
        return "primary_backup", "queue" not in actions
    if "queue" in actions:
        return "eventual", False
    if "store" in actions:
        return "local", True
    raise CompileError("cannot infer a consistency model from the "
                       "insert.into rule")


def _compile_dynamic(rule: ast.EventRule) -> DynamicConsistencySpec:
    """event(threshold.type == put) -> DynamicConsistencySpec."""
    weak = strong = None
    latency = 0.8
    period = 30.0

    def walk(stmts):
        nonlocal weak, strong, latency, period
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                vals = _threshold_values(stmt.cond)
                exceeds = any(
                    isinstance(c, ast.BinOp) and c.op in (">", ">=")
                    and isinstance(c.left, ast.Path)
                    and c.left.parts[-1].lower() == "latency"
                    for c in _flatten_and(stmt.cond))
                for inner in stmt.then:
                    if (isinstance(inner, ast.Action)
                            and inner.name.lower()
                            in ("change_policy", "chage_policy")):
                        target = _consistency_name(_as_name(inner.args["to"]))
                        if exceeds:
                            weak = weak or target
                            latency = vals.get("latency", latency)
                            period = vals.get("period", period)
                        else:
                            strong = strong or target
                walk(stmt.orelse)

    walk(rule.body)
    if weak is None:
        raise CompileError("dynamic-consistency rule has no weak target")
    return DynamicConsistencySpec(latency_threshold=latency, period=period,
                                  weak=weak,
                                  strong=strong or "multi_primaries")


def _compile_change_primary(rule: ast.EventRule) -> ChangePrimarySpec:
    period = 15.0
    window = 30.0
    for stmt in rule.body:
        if isinstance(stmt, ast.If):
            vals = _threshold_values(stmt.cond)
            period = vals.get("period", period)
    return ChangePrimarySpec(window=window, period=min(period, 600.0),
                             check_interval=5.0)


def _event_is(rule: ast.EventRule, path_parts: tuple[str, ...],
              value: Optional[str] = None) -> bool:
    ev = rule.event
    if isinstance(ev, ast.BinOp) and isinstance(ev.left, ast.Path):
        if ev.left.parts == path_parts:
            if value is None:
                return True
            try:
                return _as_name(ev.right).lower() == value
            except CompileError:
                return False
    if isinstance(ev, ast.Path) and ev.parts == path_parts:
        return value is None
    return False


def _compile_wiera(doc: ast.PolicyDoc, params: Optional[dict],
                   env: Optional[dict]) -> GlobalPolicySpec:
    params = dict(params or {})
    env = dict(env or {})
    if not doc.regions:
        raise CompileError(
            f"Wiera policy {doc.name!r} declares no region placements")
    # Options.
    queue_interval = 1.0
    get_from = None
    for key, value in doc.options.items():
        low = key.lower()
        if low == "queue_interval":
            queue_interval = _as_duration(value)
        elif low == "get_from":
            get_from = _as_name(value)
    # Placements.
    placements = []
    for decl in doc.regions:
        local_name = _as_name(decl.props["name"])
        local = env.get(local_name)
        if local is None:
            raise CompileError(
                f"region {decl.name!r} references unknown local policy "
                f"{local_name!r}; pass it via env=")
        if decl.tiers:
            # Per-region tier overrides (Figure 3(a)).
            overrides = {}
            for tname, props in decl.tiers.items():
                profile = (_as_name(props["name"]) if "name" in props
                           else None)
                size = _as_size(props["size"]) if "size" in props else None
                overrides[tname] = (profile, size)
            new_tiers = []
            for spec in local.tiers:
                if spec.name in overrides:
                    profile, size = overrides.pop(spec.name)
                    new_tiers.append(replace(
                        spec,
                        profile=profile if profile is not None else spec.profile,
                        capacity=size if size is not None else spec.capacity))
                else:
                    new_tiers.append(spec)
            for tname, (profile, size) in overrides.items():
                if profile is None:
                    raise CompileError(
                        f"new tier {tname!r} needs a 'name' (profile)")
                new_tiers.append(TierSpec(name=tname, profile=profile,
                                          capacity=size))
            local = replace(local, tiers=tuple(new_tiers))
        region = normalize_region(_as_name(decl.props["region"]))
        primary = ("primary" in decl.props
                   and _as_bool(decl.props["primary"]))
        placements.append(RegionPlacement(region=region, local_policy=local,
                                          provider=_as_name(
                                              decl.props["provider"])
                                          if "provider" in decl.props
                                          else "aws",
                                          primary=primary))
    # Rules.
    consistency = "eventual"
    sync_replication = True
    dynamic = None
    change_primary = None
    cold = None
    inferred = False
    extra_local_rules: list[Rule] = []
    for rule in doc.rules:
        if _event_is(rule, ("insert", "into")):
            consistency, sync_replication = _infer_consistency(rule)
            inferred = True
        elif _event_is(rule, ("threshold", "type"), "put"):
            dynamic = _compile_dynamic(rule)
        elif _event_is(rule, ("threshold", "type"), "primary"):
            change_primary = _compile_change_primary(rule)
        elif (isinstance(rule.event, ast.BinOp)
              and isinstance(rule.event.left, ast.Path)
              and rule.event.left.parts[-1].lower() == "lastaccessedtime"):
            # Wiera-scope cold-data rule: attach to every placement.
            event = _compile_local_event(rule.event, params)
            responses = tuple(
                _compile_local_response(a, event.age)
                for a in rule.body if isinstance(a, ast.Action))
            extra_local_rules.append(Rule(event=event, responses=responses))
        else:
            raise CompileError(
                f"cannot compile global event {rule.event!r}")
    if not inferred and len(placements) == 1:
        consistency = "local"  # a single replica needs no replication
    if extra_local_rules:
        placements = [
            replace(p, local_policy=replace(
                p.local_policy,
                rules=p.local_policy.rules + tuple(extra_local_rules)))
            for p in placements]
    if consistency == "primary_backup" and not any(
            p.primary for p in placements):
        placements[0] = replace(placements[0], primary=True)
    return GlobalPolicySpec(
        name=doc.name, placements=tuple(placements),
        consistency=consistency, sync_replication=sync_replication,
        queue_interval=queue_interval, get_from=get_from,
        dynamic=dynamic, change_primary=change_primary, cold=cold)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def compile_policy(source: str | ast.PolicyDoc,
                   params: Optional[dict] = None,
                   env: Optional[dict] = None):
    """Compile DSL text (or a parsed doc) to a runtime policy object.

    ``params`` supplies values for the document's formal parameters (e.g.
    the flush period ``t`` of LowLatencyInstance).  ``env`` maps local
    policy names to :class:`LocalPolicy` objects for Wiera region
    declarations; when omitted, the built-in policy library is used.
    """
    doc = parse_policy(source) if isinstance(source, str) else source
    if doc.scope == "tiera":
        return _compile_tiera(doc, params)
    if env is None:
        from repro.policydsl.builtin_policies import local_policy_env
        env = local_policy_env(params)
    return _compile_wiera(doc, params, env)
