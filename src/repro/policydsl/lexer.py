"""Tokenizer for the policy notation.

Token kinds:

* ``IDENT`` — identifiers; may contain ``-`` (``US-West``) and ``_``.
* ``NUMBER`` — bare numbers (``800``, ``0.5``).
* ``QUANTITY`` — a number immediately followed by letters/percent/slash,
  e.g. ``5G``, ``40KB/s``, ``50%`` (no intervening space).
* ``STRING`` — single/double-quoted.
* ``PUNCT`` — one of ``{ } ( ) : ; , .`` and the operators
  ``== != >= <= > < = && ||``.

Comments run from ``%`` to end of line, matching the figures — except a
``%`` glued directly to a number, which is the percent suffix.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class LexerError(ValueError):
    def __init__(self, msg: str, line: int, col: int):
        super().__init__(f"{msg} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str          # IDENT | NUMBER | QUANTITY | STRING | PUNCT | EOF
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.line}:{self.col})"


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_-]*")
_NUMBER_RE = re.compile(r"[0-9]+(?:\.[0-9]+)?")
_QSUFFIX_RE = re.compile(r"(?:%|[A-Za-z]+(?:/[A-Za-z]+)?)")
_TWO_CHAR_OPS = ("==", "!=", ">=", "<=", "&&", "||")
_ONE_CHAR = set("{}():;,.=<>")


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def _advance(self, n: int) -> None:
        chunk = self.text[self.pos:self.pos + n]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.col = n - chunk.rfind("\n")
        else:
            self.col += n
        self.pos += n

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self._advance(1)
                continue
            if ch == "%":
                # comment to end of line (a percent-suffix % is consumed
                # as part of a QUANTITY token, never seen here)
                end = text.find("\n", self.pos)
                self._advance((end - self.pos) if end != -1
                              else len(text) - self.pos)
                continue
            if ch in "\"'":
                end = text.find(ch, self.pos + 1)
                if end == -1:
                    raise LexerError("unterminated string", self.line, self.col)
                out.append(Token("STRING", text[self.pos + 1:end],
                                 self.line, self.col))
                self._advance(end + 1 - self.pos)
                continue
            m = _NUMBER_RE.match(text, self.pos)
            if m:
                number = m.group(0)
                line, col = self.line, self.col
                self._advance(len(number))
                sm = _QSUFFIX_RE.match(text, self.pos)
                if sm:
                    suffix = sm.group(0)
                    self._advance(len(suffix))
                    out.append(Token("QUANTITY", number + suffix, line, col))
                else:
                    out.append(Token("NUMBER", number, line, col))
                continue
            m = _IDENT_RE.match(text, self.pos)
            if m:
                out.append(Token("IDENT", m.group(0), self.line, self.col))
                self._advance(len(m.group(0)))
                continue
            two = text[self.pos:self.pos + 2]
            if two in _TWO_CHAR_OPS:
                out.append(Token("PUNCT", two, self.line, self.col))
                self._advance(2)
                continue
            if ch in _ONE_CHAR or ch == "/":
                out.append(Token("PUNCT", ch, self.line, self.col))
                self._advance(1)
                continue
            raise LexerError(f"unexpected character {ch!r}", self.line, self.col)
        out.append(Token("EOF", "", self.line, self.col))
        return out


def tokenize(text: str) -> list[Token]:
    return Lexer(text).tokens()
