"""The Tiera/Wiera policy notation: lexer, parser, AST, compiler.

The paper's figures define instances and global policies in a concise
event-response notation::

    Tiera LowLatencyInstance(time t) {
        tier1: {name: Memcached, size: 5G};
        tier2: {name: EBS, size: 5G};
        event(insert.into) : response {
            insert.object.dirty = true;
            store(what: insert.object, to: tier1);
        }
        event(time = t) : response {
            copy(what: object.location == tier1 && object.dirty == true,
                 to: tier2);
        }
    }

This package parses that notation (and the Wiera global-policy variant
with Region declarations, consistency events, and dynamic change_policy
responses) into an AST and compiles it to the runtime policy objects —
:class:`~repro.tiera.policy.LocalPolicy` and
:class:`~repro.core.global_policy.GlobalPolicySpec`.  Every policy from
the paper's figures ships as DSL text in
:mod:`repro.policydsl.builtin_policies`.
"""

from repro.policydsl.lexer import Lexer, LexerError, Token
from repro.policydsl.parser import ParseError, Parser, parse_policy
from repro.policydsl.compiler import CompileError, compile_policy
from repro.policydsl import ast_nodes as ast
from repro.policydsl.builtin_policies import BUILTIN_POLICIES, builtin_policy

__all__ = [
    "Lexer",
    "LexerError",
    "Token",
    "Parser",
    "ParseError",
    "parse_policy",
    "compile_policy",
    "CompileError",
    "ast",
    "BUILTIN_POLICIES",
    "builtin_policy",
]
