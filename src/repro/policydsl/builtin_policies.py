"""The paper's figure policies as DSL text.

Each constant is the (lightly normalized) text of one figure from the
paper; ``builtin_policy(name)`` parses + compiles it.  These are exercised
by the test suite and the benchmark harness, so the DSL path — not
hand-wired Python — is what actually runs the paper's policies.
"""

from __future__ import annotations

from typing import Optional

# -- Figure 1(a): LowLatency Tiera instance --------------------------------
LOW_LATENCY_INSTANCE = """
Tiera LowLatencyInstance(time t) {
    % two tiers specified with initial sizes
    tier1: {name: Memcached, size: 5G};
    tier2: {name: EBS, size: 5G};
    % action event defined to always store data into Memcached
    event(insert.into) : response {
        insert.object.dirty = true;
        store(what: insert.object, to: tier1);
    }
    % write back policy: copying data to persistent store on a timer event
    event(time = t) : response {
        copy(what: object.location == tier1 && object.dirty == true,
             to: tier2);
    }
}
"""

# -- Figure 1(b): Persistent Tiera instance --------------------------------
PERSISTENT_INSTANCE = """
Tiera PersistentInstance(time t) {
    tier1: {name: Memcached, size: 5G};
    tier2: {name: EBS, size: 5G};
    tier3: {name: S3, size: 10G};
    % write-through policy using action event and copy response
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
    event(insert.into == tier1) : response {
        copy(what: insert.object, to: tier2);
    }
    % simple backup policy
    event(tier2.filled == 50%) : response {
        copy(what: object.location == tier2, to: tier3,
             bandwidth: 40KB/s);
    }
}
"""

# -- auxiliary local instances used by the global policies ------------------
MEMORY_INSTANCE = """
Tiera MemoryInstance() {
    tier1: {name: LocalMemory, size: 5G};
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
}
"""

DISK_INSTANCE = """
Tiera DiskInstance() {
    tier1: {name: LocalDisk, size: 30G};
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
}
"""

FORWARDING_INSTANCE = """
Tiera ForwardingInstance() {
    % a small local cache; puts are forwarded by the global policy
    tier1: {name: LocalMemory, size: 1G};
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
}
"""

# -- Figure 3(a): Multiple Primaries consistency ----------------------------
MULTI_PRIMARIES_CONSISTENCY = """
Wiera MultiPrimariesConsistency() {
    Region1 = {name: LowLatencyInstance, region: US-West,
        tier1 = {name: LocalMemory, size: 5G},
        tier2 = {name: LocalDisk, size: 5G}};
    Region2 = {name: LowLatencyInstance, region: US-East,
        tier1 = {name: LocalMemory, size: 5G},
        tier2 = {name: LocalDisk, size: 5G}};
    Region3 = {name: LowLatencyInstance, region: EU-West,
        tier1 = {name: LocalMemory, size: 5G},
        tier2 = {name: LocalDisk, size: 5G}};

    % MultiPrimaries Consistency
    event(insert.into) : response {
        lock(what: insert.key);
        store(what: insert.object, to: local_instance);
        copy(what: insert.object, to: all_regions);
        release(what: insert.key);
    }
}
"""

# -- Figure 3(b): Primary Backup consistency -------------------------------
PRIMARY_BACKUP_CONSISTENCY = """
Wiera PrimaryBackupConsistency() {
    % Primary instance is running on Region1
    Region1 = {name: LowLatencyInstance, region: US-West, primary: True};
    Region2 = {name: LowLatencyInstance, region: US-East};
    Region3 = {name: LowLatencyInstance, region: EU-West};

    % PrimaryBackup Consistency
    event(insert.into) : response {
        if (local_instance.isPrimary == True) {
            store(what: insert.object, to: local_instance);
            copy(what: insert.object, to: all_regions);
        } else
            forward(what: insert.object, to: primary_instance);
    }
}
"""

# -- Figure 4: Eventual consistency -----------------------------------------
EVENTUAL_CONSISTENCY = """
Wiera EventualConsistency() {
    Region1 = {name: LowLatencyInstance, region: US-West};
    Region2 = {name: LowLatencyInstance, region: US-East};
    Region3 = {name: LowLatencyInstance, region: EU-West};

    % Eventual Consistency
    event(insert.into) : response {
        store(what: insert.object, to: local_instance);
        queue(what: insert.object, to: all_regions);
    }
}
"""

# -- Figure 5(a): Dynamic consistency ---------------------------------------
DYNAMIC_CONSISTENCY = """
Wiera DynamicConsistency() {
    Region1 = {name: LowLatencyInstance, region: US-West};
    Region2 = {name: LowLatencyInstance, region: US-East};
    Region3 = {name: LowLatencyInstance, region: EU-West};
    Region4 = {name: LowLatencyInstance, region: Asia-East};

    % start in Multiple-Primaries Consistency
    event(insert.into) : response {
        lock(what: insert.key);
        store(what: insert.object, to: local_instance);
        copy(what: insert.object, to: all_regions);
        release(what: insert.key);
    }

    % Put operation spends more time than threshold
    % required for specific amount of time
    event(threshold.type == put) : response {
        if (threshold.latency > 800 ms && threshold.period > 30 seconds)
            change_policy(what: consistency, to: EventualConsistency);
        else if (threshold.latency <= 800 ms
                 && threshold.period > 30 seconds)
            change_policy(what: consistency, to: MultiPrimariesConsistency);
    }
}
"""

# -- Figure 5(b): Changing the primary ---------------------------------------
CHANGE_PRIMARY = """
Wiera ChangePrimary() {
    Region1 = {name: LowLatencyInstance, region: Asia-East, primary: True};
    Region2 = {name: LowLatencyInstance, region: EU-West};
    Region3 = {name: LowLatencyInstance, region: US-West};

    queue_interval = 60 seconds;

    % In Primary-Backup Consistency
    event(insert.into) : response {
        if (local_instance.isPrimary == True) {
            store(what: insert.object, to: local_instance);
            queue(what: insert.object, to: all_regions);
        } else
            forward(what: insert.object, to: primary_instance);
    }

    % If there is an instance which received more requests
    % than primary received from application.
    event(threshold.type == primary) : response {
        if (forwarded_requests_per_each_instance >= updates_from_primary
            && threshold.period == 15 seconds)
            change_policy(what: primary_instance, to: instance_forward_most);
    }
}
"""

# -- Figure 6(a): Reducing cost with cheaper storage -------------------------
REDUCED_COST_POLICY = """
Wiera ReducedCostPolicy() {
    Region1 = {name: PersistentInstance, region: US-West,
        tier1 = {name: LocalDisk, size: 5G},
        tier2 = {name: CheapestArchival, size: 5G}};

    % Data is getting cold
    event(object.lastAccessedTime > 120 hours) : response {
        move(what: object.location == tier1, to: tier2,
             bandwidth: 100KB/s);
    }
}
"""

# A variant used by §5.3: demote cold EBS data to S3-IA.
COLD_TO_S3IA_POLICY = """
Wiera ColdToInfrequentAccess() {
    Region1 = {name: SsdWithIaInstance, region: US-East};

    event(object.lastAccessedTime > 120 hours) : response {
        move(what: object.location == tier1, to: tier2);
    }
}
"""

SSD_WITH_IA_INSTANCE = """
Tiera SsdWithIaInstance() {
    tier1: {name: EBS, size: 20T};
    tier2: {name: S3-IA, size: 20T};
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
}
"""

# -- Figure 6(b): Simpler consistency via a fast centralized tier -------------
SIMPLER_CONSISTENCY = """
Wiera SimplerConsistency() {
    Region1 = {name: LowLatencyInstance, region: US-West-1, primary: True,
        tier1 = {name: LocalMemory, size: 30G},
        tier2 = {name: LocalDisk, size: 30G}};
    Region2 = {name: ForwardingInstance, region: US-West-2};
    Region3 = {name: ForwardingInstance, region: US-West-3};

    % PrimaryBackup Consistency
    event(insert.into) : response {
        if (local_instance.isPrimary == True) {
            store(what: insert.object, to: local_instance);
            copy(what: insert.object, to: all_regions);
        } else
            forward(what: insert.object, to: primary_instance);
    }
}
"""

#: name -> (scope, DSL text, default params)
BUILTIN_POLICIES: dict[str, tuple[str, str, dict]] = {
    "LowLatencyInstance": ("tiera", LOW_LATENCY_INSTANCE, {"t": 5.0}),
    "PersistentInstance": ("tiera", PERSISTENT_INSTANCE, {"t": 5.0}),
    "MemoryInstance": ("tiera", MEMORY_INSTANCE, {}),
    "DiskInstance": ("tiera", DISK_INSTANCE, {}),
    "ForwardingInstance": ("tiera", FORWARDING_INSTANCE, {}),
    "SsdWithIaInstance": ("tiera", SSD_WITH_IA_INSTANCE, {}),
    "MultiPrimariesConsistency": ("wiera", MULTI_PRIMARIES_CONSISTENCY, {}),
    "PrimaryBackupConsistency": ("wiera", PRIMARY_BACKUP_CONSISTENCY, {}),
    "EventualConsistency": ("wiera", EVENTUAL_CONSISTENCY, {}),
    "DynamicConsistency": ("wiera", DYNAMIC_CONSISTENCY, {}),
    "ChangePrimary": ("wiera", CHANGE_PRIMARY, {}),
    "ReducedCostPolicy": ("wiera", REDUCED_COST_POLICY, {}),
    "ColdToInfrequentAccess": ("wiera", COLD_TO_S3IA_POLICY, {}),
    "SimplerConsistency": ("wiera", SIMPLER_CONSISTENCY, {}),
}


def local_policy_env(params: Optional[dict] = None) -> dict:
    """Compile every built-in *Tiera* policy into a name -> LocalPolicy map
    (the default environment for Wiera region declarations)."""
    from repro.policydsl.compiler import compile_policy
    env = {}
    for name, (scope, text, defaults) in BUILTIN_POLICIES.items():
        if scope != "tiera":
            continue
        merged = dict(defaults)
        merged.update(params or {})
        env[name] = compile_policy(text, params=merged)
    # The figure text of Fig. 6(a) spells it "PersistanceInstance".
    env["PersistanceInstance"] = env["PersistentInstance"]
    return env


def builtin_policy(name: str, params: Optional[dict] = None):
    """Parse + compile a built-in policy by figure name."""
    from repro.policydsl.compiler import compile_policy
    try:
        scope, text, defaults = BUILTIN_POLICIES[name]
    except KeyError:
        raise KeyError(f"no built-in policy {name!r}; "
                       f"known: {sorted(BUILTIN_POLICIES)}") from None
    merged = dict(defaults)
    merged.update(params or {})
    if scope == "tiera":
        return compile_policy(text, params=merged)
    return compile_policy(text, params=merged, env=local_policy_env(merged))
