"""Base simulated storage backend.

A backend really stores bytes in a dict and enforces its capacity; reads
and writes are generators that consume modeled service time (base latency +
streaming time, under an optional IOPS completion cap).  Subclasses add
family-specific behaviour (volatility, restore jobs, request billing).
"""

from __future__ import annotations

from typing import Generator, Iterator, Optional

import numpy as np

from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN
from repro.sim.kernel import Simulator
from repro.sim.primitives import Resource
from repro.storage.profiles import TierProfile, get_tier_profile


class StorageError(RuntimeError):
    """Base class for storage failures."""


class CapacityExceededError(StorageError):
    """A write would overflow the tier's provisioned capacity."""


class ObjectMissingError(StorageError, KeyError):
    """Read or delete of a key the tier does not hold."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return RuntimeError.__str__(self)


class StorageBackend:
    """One storage tier instance: capacity, contents, timing, accounting."""

    def __init__(self, sim: Simulator, profile: str | TierProfile,
                 capacity: float, name: str = "",
                 rng: Optional[np.random.Generator] = None,
                 ledger=None, region: str = ""):
        self.sim = sim
        self.profile = (profile if isinstance(profile, TierProfile)
                        else get_tier_profile(profile))
        if capacity <= 0:
            raise StorageError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name or self.profile.name
        self.region = region
        self._data: dict[str, bytes] = {}
        self.used_bytes = 0
        self._rng = rng
        self._ledger = ledger
        # IOPS cap: a serialized completion channel; each op holds it for
        # 1/iops seconds, so completions are spaced at the device's rate.
        self._iops_channel: Optional[Resource] = None
        if self.profile.iops != float("inf"):
            self._iops_channel = Resource(sim, capacity=1)
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self._obs = get_obs(sim)
        self._op_counter = {
            op: self._obs.metrics.counter("storage.ops", tier=self.name, op=op)
            for op in ("read", "write", "delete")}

    # -- capacity & contents -------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())

    def size_of(self, key: str) -> int:
        try:
            return len(self._data[key])
        except KeyError:
            raise ObjectMissingError(f"{self.name}: no object {key!r}") from None

    @property
    def free_bytes(self) -> float:
        return self.capacity - self.used_bytes

    @property
    def fill_fraction(self) -> float:
        return self.used_bytes / self.capacity

    def preload(self, key: str, data: bytes) -> None:
        """Install bytes instantly (zero simulated time).

        Setup-phase helper for experiments that need terabytes "already
        there" (e.g. the prepared SysBench file, the populated RUBiS
        database) — not part of the timed data path.
        """
        data = bytes(data)
        previous = len(self._data.get(key, b""))
        new_used = self.used_bytes - previous + len(data)
        if new_used > self.capacity:
            raise CapacityExceededError(
                f"{self.name}: preload of {len(data)}B would overflow")
        self._data[key] = data
        self.used_bytes = new_used
        if self._ledger is not None:
            self._ledger.record_usage(self)

    def peek(self, key: str) -> bytes:
        """Zero-time read for assertions/tests — not part of the data path."""
        try:
            return self._data[key]
        except KeyError:
            raise ObjectMissingError(f"{self.name}: no object {key!r}") from None

    # -- timing helpers -------------------------------------------------------
    def _jitter(self) -> float:
        sigma = self.profile.jitter_sigma
        if self._rng is None or sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=sigma))

    def _occupy(self, service: float) -> Generator:
        """Consume service time, honouring the IOPS completion cap."""
        if self._iops_channel is not None:
            spacing = 1.0 / self.profile.iops
            yield self._iops_channel.request()
            try:
                yield self.sim.timeout(max(service, spacing))
            finally:
                self._iops_channel.release()
        elif service > 0:
            yield self.sim.timeout(service)

    # -- data path -------------------------------------------------------------
    def write(self, key: str, data: bytes) -> Generator:
        """Store ``data`` under ``key`` (overwrite allowed); yields time."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"storage data must be bytes, got {type(data)}")
        data = bytes(data)
        tracer = self._obs.tracer
        span = (tracer.span("storage:write", cat="storage",
                            component=self.name, key=key, bytes=len(data))
                if tracer.enabled else NULL_SPAN)
        with span:
            previous = len(self._data.get(key, b""))
            new_used = self.used_bytes - previous + len(data)
            if new_used > self.capacity:
                raise CapacityExceededError(
                    f"{self.name}: writing {len(data)}B would use {new_used}B "
                    f"of {self.capacity}B")
            service = (self.profile.service_time(len(data), write=True)
                       * self._jitter())
            yield from self._occupy(service)
            # Commit after the service time so concurrent readers cannot
            # observe a write that has not completed.
            previous = len(self._data.get(key, b""))
            self._data[key] = data
            self.used_bytes += len(data) - previous
            self.writes += 1
            self._op_counter["write"].inc()
            if self._ledger is not None:
                self._ledger.record_put(self)
                self._ledger.record_usage(self)

    def read(self, key: str) -> Generator:
        """Return the bytes stored under ``key``; yields time."""
        if key not in self._data:
            raise ObjectMissingError(f"{self.name}: no object {key!r}")
        nbytes = len(self._data[key])
        tracer = self._obs.tracer
        span = (tracer.span("storage:read", cat="storage",
                            component=self.name, key=key, bytes=nbytes)
                if tracer.enabled else NULL_SPAN)
        with span:
            service = (self.profile.service_time(nbytes, write=False)
                       * self._jitter())
            yield from self._occupy(service)
            self.reads += 1
            self._op_counter["read"].inc()
            if self._ledger is not None:
                self._ledger.record_get(self)
            data = self._data.get(key)
            if data is None:
                raise ObjectMissingError(
                    f"{self.name}: object {key!r} deleted during read")
            return data

    def delete(self, key: str) -> Generator:
        """Remove ``key``; yields a small metadata-update time."""
        if key not in self._data:
            raise ObjectMissingError(f"{self.name}: no object {key!r}")
        tracer = self._obs.tracer
        span = (tracer.span("storage:delete", cat="storage",
                            component=self.name, key=key)
                if tracer.enabled else NULL_SPAN)
        with span:
            yield self.sim.timeout(self.profile.write_latency * 0.5)
            data = self._data.pop(key, None)
            if data is not None:
                self.used_bytes -= len(data)
            self.deletes += 1
            self._op_counter["delete"].inc()
            if self._ledger is not None:
                self._ledger.record_usage(self)

    def grow(self, additional: float) -> None:
        """Extend provisioned capacity (the Tiera ``grow`` response)."""
        if additional <= 0:
            raise StorageError("grow() requires a positive amount")
        self.capacity += additional
        if self._ledger is not None:
            self._ledger.record_usage(self)

    def wipe(self) -> None:
        """Drop all contents instantly (volatile tier losing its host)."""
        self._data.clear()
        self.used_bytes = 0

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} "
                f"{self.used_bytes}/{int(self.capacity)}B {len(self)} objs>")
