"""Block-device tiers (EBS SSD/HDD, Azure attached disks).

Adds an optional OS buffer-cache model: with the cache enabled, recently
touched objects are served at memory speed (the paper notes EBS shows
<1 ms regardless of type when the buffer cache is warm, and disables it
with O_DIRECT / memory pressure to measure native latency — our
``direct_io`` flag is that switch).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator

from repro.storage.backend import StorageBackend
from repro.util.units import MB, MS

_BUFFER_CACHE_LATENCY = 0.08 * MS


class BlockTier(StorageBackend):
    """EBS-like block tier with a modeled OS buffer cache."""

    def __init__(self, *args, direct_io: bool = True,
                 buffer_cache_bytes: float = 256 * MB, **kwargs):
        super().__init__(*args, **kwargs)
        if self.profile.kind != "block":
            raise ValueError(
                f"BlockTier requires a block profile, got {self.profile.name}")
        self.direct_io = direct_io
        self.buffer_cache_bytes = buffer_cache_bytes
        self._cache: OrderedDict[str, int] = OrderedDict()  # key -> size
        self._cache_used = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def _cache_admit(self, key: str, size: int) -> None:
        if self.direct_io or size > self.buffer_cache_bytes:
            return
        if key in self._cache:
            self._cache_used -= self._cache.pop(key)
        while self._cache_used + size > self.buffer_cache_bytes and self._cache:
            _, victim_size = self._cache.popitem(last=False)
            self._cache_used -= victim_size
        self._cache[key] = size
        self._cache_used += size

    def write(self, key: str, data: bytes) -> Generator:
        yield from super().write(key, data)
        self._cache_admit(key, len(data))

    def read(self, key: str) -> Generator:
        if not self.direct_io and key in self._cache:
            # Buffer-cache hit: memory-speed service, no device occupancy.
            self._cache.move_to_end(key)
            self.cache_hits += 1
            yield self.sim.timeout(_BUFFER_CACHE_LATENCY)
            self.reads += 1
            if self._ledger is not None:
                self._ledger.record_get(self)
            data = self._data.get(key)
            if data is None:
                from repro.storage.backend import ObjectMissingError
                raise ObjectMissingError(f"{self.name}: no object {key!r}")
            return data
        self.cache_misses += 1
        data = yield from super().read(key)
        self._cache_admit(key, len(data))
        return data

    def delete(self, key: str) -> Generator:
        yield from super().delete(key)
        if key in self._cache:
            self._cache_used -= self._cache.pop(key)
