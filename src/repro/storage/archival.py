"""Archival tier (Glacier).

Writes behave like an object store, but reads require a *restore job*: the
first read of an object starts a retrieval whose first byte arrives after
``profile.retrieval_delay`` (hours for Glacier).  Once restored, an object
stays readable for a configurable window.  This reproduces the asymmetry
the paper leans on in §3.3.3: Glacier is for cold data you essentially
never read synchronously.
"""

from __future__ import annotations

from typing import Generator

from repro.storage.backend import StorageBackend, StorageError


class NotYetRestoredError(StorageError):
    """A non-blocking read was attempted before the restore completed."""

    def __init__(self, msg: str, ready_at: float):
        super().__init__(msg)
        self.ready_at = ready_at


class ArchivalTier(StorageBackend):
    """Glacier-like tier with restore jobs and a restored-copy window."""

    UNBOUNDED = float(1 << 60)

    def __init__(self, sim, profile, capacity: float | None = None,
                 restore_window: float = 24 * 3600.0, **kwargs):
        super().__init__(sim, profile,
                         self.UNBOUNDED if capacity is None else capacity,
                         **kwargs)
        if self.profile.kind != "archival":
            raise ValueError(
                f"ArchivalTier requires an archival profile, got {self.profile.name}")
        self.restore_window = restore_window
        self._ready_at: dict[str, float] = {}  # key -> restore completion time
        self.restores_started = 0

    def is_restored(self, key: str) -> bool:
        ready = self._ready_at.get(key)
        return (ready is not None
                and ready <= self.sim.now <= ready + self.restore_window)

    def restore_pending(self, key: str) -> bool:
        ready = self._ready_at.get(key)
        return ready is not None and self.sim.now < ready

    def request_restore(self, key: str) -> float:
        """Start (or refresh) a restore job; returns the ready time."""
        if key not in self._data:
            from repro.storage.backend import ObjectMissingError
            raise ObjectMissingError(f"{self.name}: no object {key!r}")
        if self.is_restored(key):
            return self.sim.now
        if self.restore_pending(key):
            return self._ready_at[key]
        ready_at = self.sim.now + self.profile.retrieval_delay
        self._ready_at[key] = ready_at
        self.restores_started += 1
        return ready_at

    def read(self, key: str, blocking: bool = True) -> Generator:
        """Read an archived object.

        ``blocking=True`` waits out the restore job (simulated hours);
        ``blocking=False`` raises :class:`NotYetRestoredError` carrying the
        ready time, letting policies schedule a later retry instead.
        """
        if not self.is_restored(key):
            ready_at = self.request_restore(key)
            if not blocking:
                raise NotYetRestoredError(
                    f"{self.name}: {key!r} restoring until t={ready_at:.0f}s",
                    ready_at)
            yield self.sim.timeout(max(0.0, ready_at - self.sim.now))
        data = yield from super().read(key)
        return data
