"""In-memory cache tier (memcached / ElastiCache).

Volatile: contents vanish when the hosting VM crashes.  Supports LRU
eviction when used as a cache in front of durable tiers (Tiera's
PersistentInstance keeps "a small Memcached area to cache the most recently
written data").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator

from repro.storage.backend import CapacityExceededError, StorageBackend


class MemoryTier(StorageBackend):
    """memcached-like tier with optional LRU eviction."""

    def __init__(self, *args, evict_lru: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        if not self.profile.volatile:
            raise ValueError(
                f"MemoryTier requires a volatile profile, got {self.profile.name}")
        self.evict_lru = evict_lru
        self._lru: OrderedDict[str, None] = OrderedDict()
        self.evictions = 0

    def write(self, key: str, data: bytes) -> Generator:
        if self.evict_lru:
            self._make_room(len(data), exclude=key)
        yield from super().write(key, data)
        self._lru[key] = None
        self._lru.move_to_end(key)

    def read(self, key: str) -> Generator:
        data = yield from super().read(key)
        if key in self._lru:
            self._lru.move_to_end(key)
        return data

    def delete(self, key: str) -> Generator:
        yield from super().delete(key)
        self._lru.pop(key, None)

    def _make_room(self, incoming: int, exclude: str) -> None:
        """Evict least-recently-used entries until ``incoming`` bytes fit."""
        if incoming > self.capacity:
            raise CapacityExceededError(
                f"{self.name}: object of {incoming}B exceeds tier capacity")
        reclaimable = self.used_bytes - len(self._data.get(exclude, b""))
        while (self.used_bytes - len(self._data.get(exclude, b""))
               + incoming > self.capacity) and self._lru:
            victim = next(iter(self._lru))
            if victim == exclude:
                self._lru.move_to_end(victim)
                if len(self._lru) == 1:
                    break
                continue
            self._lru.pop(victim)
            dropped = self._data.pop(victim, b"")
            self.used_bytes -= len(dropped)
            self.evictions += 1
        del reclaimable

    def on_host_crash(self) -> None:
        """Volatile memory loses everything when the host dies."""
        self.wipe()
        self._lru.clear()
