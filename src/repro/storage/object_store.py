"""HTTP object-store tiers (S3, S3-IA).

Object stores have no provisioned volume: you pay for what you store, so
the default capacity is effectively unbounded and ``fill`` events are not
meaningful.  Requests are individually billed (Table 4), which the ledger
records on every read/write.
"""

from __future__ import annotations

from repro.storage.backend import StorageBackend


class ObjectStoreTier(StorageBackend):
    """S3-like tier: pay-per-use, practically unbounded capacity."""

    #: 1 EiB stand-in for "unbounded"
    UNBOUNDED = float(1 << 60)

    def __init__(self, sim, profile, capacity: float | None = None, **kwargs):
        super().__init__(sim, profile,
                         self.UNBOUNDED if capacity is None else capacity,
                         **kwargs)
        if self.profile.kind != "object":
            raise ValueError(
                f"ObjectStoreTier requires an object profile, got {self.profile.name}")
