"""Tier factory: build the right backend class from a profile name.

Policies name tiers with DSL-friendly strings ("Memcached", "EBS", "S3",
"LocalDisk", ...); this maps each to the matching backend family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.kernel import Simulator
from repro.storage.archival import ArchivalTier
from repro.storage.backend import StorageBackend
from repro.storage.block import BlockTier
from repro.storage.memory import MemoryTier
from repro.storage.object_store import ObjectStoreTier
from repro.storage.profiles import TierProfile, get_tier_profile

_KIND_CLASSES = {
    "memory": MemoryTier,
    "block": BlockTier,
    "object": ObjectStoreTier,
    "archival": ArchivalTier,
}


def make_tier(sim: Simulator, profile: str | TierProfile, capacity: float,
              name: str = "", rng: Optional[np.random.Generator] = None,
              ledger=None, region: str = "", **kwargs) -> StorageBackend:
    """Instantiate the backend class matching the profile's kind.

    Extra keyword arguments are forwarded to the family constructor
    (e.g. ``direct_io`` for block tiers, ``evict_lru`` for memory tiers).
    """
    prof = profile if isinstance(profile, TierProfile) else get_tier_profile(profile)
    cls = _KIND_CLASSES[prof.kind]
    if cls in (ObjectStoreTier, ArchivalTier) and capacity is None:
        return cls(sim, prof, None, name=name, rng=rng, ledger=ledger,
                   region=region, **kwargs)
    return cls(sim, prof, capacity, name=name, rng=rng, ledger=ledger,
               region=region, **kwargs)
