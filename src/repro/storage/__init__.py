"""Simulated cloud storage tiers.

One backend class per storage family the paper uses — memory caches
(memcached/ElastiCache), block devices (EBS SSD/HDD, Azure attached disks),
object stores (S3, S3-IA) and archival stores (Glacier) — each driven by a
:class:`~repro.storage.profiles.TierProfile` giving its latency model,
concurrency/IOPS envelope, durability and prices.  Bytes are really stored
and capacities really enforced; only service *times* are modeled.
"""

from repro.storage.profiles import (
    TIER_PROFILES,
    TierProfile,
    get_tier_profile,
)
from repro.storage.backend import (
    CapacityExceededError,
    ObjectMissingError,
    StorageBackend,
    StorageError,
)
from repro.storage.memory import MemoryTier
from repro.storage.block import BlockTier
from repro.storage.object_store import ObjectStoreTier
from repro.storage.archival import ArchivalTier, NotYetRestoredError
from repro.storage.cost import (
    NETWORK_PRICES,
    PRICE_BOOK,
    CostLedger,
    PriceEntry,
    monthly_storage_cost,
)
from repro.storage.factory import make_tier

__all__ = [
    "TierProfile",
    "TIER_PROFILES",
    "get_tier_profile",
    "StorageBackend",
    "StorageError",
    "CapacityExceededError",
    "ObjectMissingError",
    "MemoryTier",
    "BlockTier",
    "ObjectStoreTier",
    "ArchivalTier",
    "NotYetRestoredError",
    "PriceEntry",
    "PRICE_BOOK",
    "NETWORK_PRICES",
    "CostLedger",
    "monthly_storage_cost",
    "make_tier",
]
