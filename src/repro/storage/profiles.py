"""Per-tier performance/durability profiles.

Latency model per operation::

    service_time = base_latency + nbytes / throughput        (+ jitter)

with an optional device-level IOPS cap implemented as serialized completion
spacing (at most ``iops`` completions per second regardless of queue
depth) — this is how Azure's flat 500-IOPS attached-disk throttle shows up
in Fig. 11.  Base latencies are calibrated to the paper's Fig. 9 (4 KB ops
in US East: EBS-SSD ~1-2 ms native, EBS-HDD ~8-10 ms, S3 tens of ms, S3-IA
slightly above S3) and Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import GB, HOUR, MB, MS


@dataclass(frozen=True)
class TierProfile:
    """Static description of one storage service's behaviour and pricing."""

    name: str
    kind: str                  # memory | block | object | archival
    read_latency: float        # base seconds per read
    write_latency: float       # base seconds per write
    read_throughput: float     # bytes/sec streaming
    write_throughput: float    # bytes/sec streaming
    iops: float = float("inf")  # completion-rate cap
    durability_nines: float = 4.0
    volatile: bool = False     # data lost if the host crashes
    storage_price: float = 0.0  # $ per GB-month provisioned/stored
    put_price: float = 0.0      # $ per 10,000 put requests
    get_price: float = 0.0      # $ per 10,000 get requests
    retrieval_delay: float = 0.0  # archival first-byte delay, seconds
    jitter_sigma: float = 0.05    # lognormal sigma on service time

    def with_overrides(self, **kwargs) -> "TierProfile":
        return replace(self, **kwargs)

    def service_time(self, nbytes: int, write: bool) -> float:
        if write:
            return self.write_latency + nbytes / self.write_throughput
        return self.read_latency + nbytes / self.read_throughput


TIER_PROFILES: dict[str, TierProfile] = {
    # In-memory cache (memcached / ElastiCache).  Sub-millisecond; data is
    # volatile.  Priced at the ElastiCache node-equivalent $/GB-month.
    "memcached": TierProfile(
        name="memcached", kind="memory",
        read_latency=0.15 * MS, write_latency=0.18 * MS,
        read_throughput=1.2 * GB, write_throughput=1.0 * GB,
        durability_nines=0.0, volatile=True,
        storage_price=22.0, jitter_sigma=0.03),
    # EBS gp2 SSD: ~1-2 ms native 4 KB latency once the OS buffer cache is
    # out of the picture (the paper throttles memory to measure this).
    "ebs_ssd": TierProfile(
        name="ebs_ssd", kind="block",
        read_latency=1.1 * MS, write_latency=1.4 * MS,
        read_throughput=160 * MB, write_throughput=160 * MB,
        iops=10000, durability_nines=5.0,
        storage_price=0.10, jitter_sigma=0.08),
    # EBS magnetic: seek-bound, ~8-10 ms.
    "ebs_hdd": TierProfile(
        name="ebs_hdd", kind="block",
        read_latency=8.2 * MS, write_latency=9.0 * MS,
        read_throughput=90 * MB, write_throughput=90 * MB,
        iops=200, durability_nines=5.0,
        storage_price=0.05, put_price=0.0005, get_price=0.0005,
        jitter_sigma=0.12),
    # Azure attached disk with host cache off: throttled to 500 IOPS flat.
    "azure_disk": TierProfile(
        name="azure_disk", kind="block",
        read_latency=0.05 * MS, write_latency=0.05 * MS,
        read_throughput=120 * MB, write_throughput=120 * MB,
        iops=500, durability_nines=5.0,
        storage_price=0.05, jitter_sigma=0.05),
    # S3 standard: HTTP object store, tens of ms.
    "s3": TierProfile(
        name="s3", kind="object",
        read_latency=24.0 * MS, write_latency=52.0 * MS,
        read_throughput=60 * MB, write_throughput=45 * MB,
        durability_nines=11.0,
        storage_price=0.03, put_price=0.05, get_price=0.004,
        jitter_sigma=0.15),
    # S3 Infrequent Access: same data path, slightly higher first-byte
    # latency, cheaper storage but pricier requests.
    "s3_ia": TierProfile(
        name="s3_ia", kind="object",
        read_latency=28.0 * MS, write_latency=58.0 * MS,
        read_throughput=55 * MB, write_throughput=42 * MB,
        durability_nines=11.0,
        storage_price=0.0125, put_price=0.10, get_price=0.01,
        jitter_sigma=0.15),
    # Glacier: cheap, archival; reads require a restore job (hours).
    "glacier": TierProfile(
        name="glacier", kind="archival",
        read_latency=60.0 * MS, write_latency=80.0 * MS,
        read_throughput=30 * MB, write_throughput=30 * MB,
        durability_nines=11.0,
        storage_price=0.007, put_price=0.05, get_price=0.05,
        retrieval_delay=3.5 * HOUR, jitter_sigma=0.10),
}

# Convenience aliases used by the policy DSL figures.
TIER_ALIASES = {
    "localmemory": "memcached",
    "memory": "memcached",
    "elasticache": "memcached",
    "localdisk": "ebs_ssd",
    "ebs": "ebs_ssd",
    "disk": "ebs_ssd",
    "cheapestarchival": "glacier",
    "archival": "glacier",
    "s3-ia": "s3_ia",
}


def get_tier_profile(name: str) -> TierProfile:
    """Look up a profile by canonical name or DSL alias (case-insensitive)."""
    key = name.lower().replace(" ", "")
    key = TIER_ALIASES.get(key, key)
    try:
        return TIER_PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown storage tier {name!r}; known: "
            f"{sorted(TIER_PROFILES)} plus aliases {sorted(TIER_ALIASES)}"
        ) from None
