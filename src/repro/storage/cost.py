"""Cost model: the Table 4 price book and runtime cost accounting.

Two layers:

* **Static estimation** — :func:`monthly_storage_cost` and friends compute
  the dollar arithmetic the paper does in §5.3 (e.g. moving 8 TB of cold
  data from EBS SSD to S3-IA saves $700/month per instance).
* **Runtime accounting** — :class:`CostLedger` integrates byte-hours,
  counts billable requests per tier and network egress per byte, so any
  simulated experiment can report its accumulated bill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, HOUR

#: Hours per billing month (AWS convention: 730).
HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class PriceEntry:
    """Prices for one storage tier, Table 4 layout."""

    storage: float      # $/GB-month
    put_per_10k: float  # $/10,000 put requests
    get_per_10k: float  # $/10,000 get requests


# Table 4 of the paper (AWS US East), keyed by canonical profile name.
PRICE_BOOK: dict[str, PriceEntry] = {
    "ebs_ssd": PriceEntry(storage=0.10, put_per_10k=0.0, get_per_10k=0.0),
    "ebs_hdd": PriceEntry(storage=0.05, put_per_10k=0.0005, get_per_10k=0.0005),
    "s3": PriceEntry(storage=0.03, put_per_10k=0.05, get_per_10k=0.004),
    "s3_ia": PriceEntry(storage=0.0125, put_per_10k=0.10, get_per_10k=0.01),
    "glacier": PriceEntry(storage=0.007, put_per_10k=0.05, get_per_10k=0.05),
    "azure_disk": PriceEntry(storage=0.05, put_per_10k=0.0, get_per_10k=0.0),
    "memcached": PriceEntry(storage=22.0, put_per_10k=0.0, get_per_10k=0.0),
}

# Network prices ($/GB), Table 4: free within a DC, $0.02/GB between AWS
# regions, $0.09/GB out to the Internet.
NETWORK_PRICES: dict[str, float] = {
    "intra_dc": 0.0,
    "inter_region": 0.02,
    "internet": 0.09,
}


def price_for(tier_name: str) -> PriceEntry:
    try:
        return PRICE_BOOK[tier_name]
    except KeyError:
        raise KeyError(f"no prices for tier {tier_name!r}") from None


def monthly_storage_cost(tier_name: str, nbytes: float) -> float:
    """Dollars per month to keep ``nbytes`` on ``tier_name``."""
    return price_for(tier_name).storage * (nbytes / GB)


def request_cost(tier_name: str, puts: int = 0, gets: int = 0) -> float:
    entry = price_for(tier_name)
    return entry.put_per_10k * puts / 10_000 + entry.get_per_10k * gets / 10_000


def network_cost(nbytes: float, scope: str = "inter_region") -> float:
    return NETWORK_PRICES[scope] * (nbytes / GB)


def migration_savings(nbytes: float, src_tier: str, dst_tier: str) -> float:
    """Monthly saving from moving ``nbytes`` from src to dst tier."""
    return (monthly_storage_cost(src_tier, nbytes)
            - monthly_storage_cost(dst_tier, nbytes))


class CostLedger:
    """Accumulates one deployment's bill as the simulation runs.

    Storage is billed by integrating *stored bytes x time* (GB-hours scaled
    to the monthly rate); requests and network bytes are counted per
    category as they happen.
    """

    def __init__(self, sim):
        self.sim = sim
        self._last_update: dict[str, float] = {}
        self._last_bytes: dict[str, float] = {}
        self._gb_hours: dict[str, float] = {}
        self._puts: dict[str, int] = {}
        self._gets: dict[str, int] = {}
        self._net_bytes: dict[str, float] = {}
        self._tier_names: dict[str, str] = {}  # ledger key -> profile name

    # -- hooks driven by backends/network -------------------------------------
    def _key(self, backend) -> str:
        key = f"{backend.region}/{backend.name}" if backend.region else backend.name
        self._tier_names[key] = backend.profile.name
        return key

    def record_usage(self, backend) -> None:
        """Integrate stored-byte time up to now, then snapshot the level."""
        key = self._key(backend)
        last_t = self._last_update.get(key, 0.0)
        last_b = self._last_bytes.get(key, 0.0)
        elapsed_hours = (self.sim.now - last_t) / HOUR
        self._gb_hours[key] = (self._gb_hours.get(key, 0.0)
                               + (last_b / GB) * elapsed_hours)
        self._last_update[key] = self.sim.now
        self._last_bytes[key] = backend.used_bytes

    def record_put(self, backend) -> None:
        key = self._key(backend)
        self._puts[key] = self._puts.get(key, 0) + 1

    def record_get(self, backend) -> None:
        key = self._key(backend)
        self._gets[key] = self._gets.get(key, 0) + 1

    def record_network(self, nbytes: float, scope: str = "inter_region") -> None:
        if scope not in NETWORK_PRICES:
            raise KeyError(f"unknown network scope {scope!r}")
        self._net_bytes[scope] = self._net_bytes.get(scope, 0.0) + nbytes

    # -- reporting -------------------------------------------------------------
    def finalize(self, backends=()) -> None:
        for backend in backends:
            self.record_usage(backend)

    def storage_dollars(self) -> float:
        total = 0.0
        for key, gb_hours in self._gb_hours.items():
            entry = price_for(self._tier_names[key])
            total += entry.storage * gb_hours / HOURS_PER_MONTH
        return total

    def request_dollars(self) -> float:
        total = 0.0
        for key in set(self._puts) | set(self._gets):
            entry = price_for(self._tier_names[key])
            total += entry.put_per_10k * self._puts.get(key, 0) / 10_000
            total += entry.get_per_10k * self._gets.get(key, 0) / 10_000
        return total

    def network_dollars(self) -> float:
        return sum(NETWORK_PRICES[scope] * (b / GB)
                   for scope, b in self._net_bytes.items())

    def total_dollars(self) -> float:
        return (self.storage_dollars() + self.request_dollars()
                + self.network_dollars())

    def breakdown(self) -> dict[str, float]:
        return {
            "storage": self.storage_dollars(),
            "requests": self.request_dollars(),
            "network": self.network_dollars(),
            "total": self.total_dollars(),
        }
