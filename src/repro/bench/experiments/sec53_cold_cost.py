"""§5.3 cost analysis: saving money by demoting + centralizing cold data.

Two parts:

1. **Arithmetic check** against the Table 4 price book: with 80% of a
   10 TB dataset cold, moving 8 TB to S3-IA saves $700/month per instance
   if it sat on EBS SSD ($0.10/GB) and $300/month if on EBS HDD
   ($0.05/GB).  Centralizing the cold replicas of a 4-region deployment
   (dropping 3 of 4 S3-IA copies) saves another $100/region/month =
   $300/month.

2. **Mechanism check** on a scaled-down deployment: a ColdDataMonitoring
   policy (Figure 6(a), compiled from DSL) actually moves idle objects
   from the fast tier to the cheap tier, and the runtime cost ledger shows
   the storage bill dropping accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import build_deployment, preload_object
from repro.bench.reporting import ExperimentReport
from repro.net.topology import US_EAST
from repro.policydsl import builtin_policy
from repro.storage.cost import migration_savings, monthly_storage_cost
from repro.util.units import GB, HOUR, KB


@dataclass
class Sec53Result:
    ssd_saving: float = 0.0
    hdd_saving: float = 0.0
    centralize_saving: float = 0.0
    demoted: int = 0
    bill_before: float = 0.0
    bill_after: float = 0.0


def run_sec53(seed: int = 0) -> tuple:
    result = Sec53Result()
    # The paper's arithmetic uses decimal terabytes: 8 TB = 8000 GB.
    cold_bytes = 8000 * GB
    result.ssd_saving = migration_savings(cold_bytes, "ebs_ssd", "s3_ia")
    result.hdd_saving = migration_savings(cold_bytes, "ebs_hdd", "s3_ia")
    # dropping 3 extra S3-IA replicas of the 8 TB cold set:
    result.centralize_saving = 3 * monthly_storage_cost("s3_ia", cold_bytes)

    # Mechanism check: run the Figure 6(a) policy over a small population.
    dep = build_deployment([US_EAST], seed=seed, with_ledger=True)
    spec = builtin_policy("ColdToInfrequentAccess",
                          params={"cold_check_interval": 3600.0})
    from dataclasses import replace
    placement = replace(spec.placements[0], region=US_EAST)
    spec = replace(spec, placements=(placement,))
    dep.start_wiera_instance("sec53", spec)
    instance = dep.instance("sec53", US_EAST)
    instance.ledger = dep.ledger
    for backend in instance.tiers.values():
        backend._ledger = dep.ledger

    n_objects, obj_size = 100, 64 * KB
    payload = b"\x11" * obj_size
    for i in range(n_objects):
        preload_object([instance], f"data-{i}", payload)
    for backend in instance.tiers.values():
        dep.ledger.record_usage(backend)

    hot_keys = [f"data-{i}" for i in range(20)]

    def keep_hot_warm():
        # touch the hot set every hour for 6 days; the rest goes cold
        for _ in range(24 * 6):
            for key in hot_keys:
                yield from instance.read_version(key)
            yield dep.sim.timeout(1 * HOUR)
    dep.drive(keep_hot_warm())
    dep.ledger.finalize(instance.tiers.values())
    result.bill_before = dep.ledger.storage_dollars()

    cold = [rec for rec in instance.meta.records()
            if "tier2" in rec.latest().locations]
    result.demoted = len(cold)
    fast = instance.tier("tier1")
    cheap = instance.tier("tier2")

    report = ExperimentReport(
        exp_id="sec53",
        title="Cold-data cost savings (Table 4 prices)",
        columns=["quantity", "measured", "paper"],
        paper_claim=("move 8 TB cold of 10 TB to S3-IA: save $700/mo from "
                     "SSD, $300/mo from HDD, per instance; centralizing 4 "
                     "regions' cold replicas saves $300/mo more"))
    report.add_row("8 TB SSD->S3-IA saving ($/mo)", result.ssd_saving, 700)
    report.add_row("8 TB HDD->S3-IA saving ($/mo)", result.hdd_saving, 300)
    report.add_row("centralize 3 replicas ($/mo)",
                   result.centralize_saving, 300)
    report.add_row("objects demoted by ColdDataMonitoring",
                   result.demoted, f"{n_objects - len(hot_keys)} expected")
    report.notes = (f"fast tier now holds {len(fast)} objects, cheap tier "
                    f"{len(cheap)}; simulated 6-day storage bill "
                    f"${result.bill_before:.2f}")
    return result, report
