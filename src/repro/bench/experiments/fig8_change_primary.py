"""Figure 8 + Table 3: changing the primary instance with user location.

Setup (per §5.2): instances in Asia East (initial primary), EU West and
US West under PrimaryBackup with asynchronous (queued) replication; 10
clients per region whose activity follows a normal (Gaussian) curve over
time, peaking region after region (Asia -> EU -> US); read-mostly workload
(5% put / 95% get).  The ChangePrimary policy moves the primary to the
instance forwarding the most puts.

Expected shape (paper): 69% of gets see outdated data with a static
primary vs 39% when the primary changes; average put latency drops from
{EU 216.6, US 105.3, Asia <5, overall 105.2} ms to
{95.2, 72.2, 40.6, 68.1} ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport
from repro.net.topology import ASIA_EAST, EU_WEST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MINUTE, MS
from repro.workloads.clients import GeoClientPopulation
from repro.workloads.ycsb import StalenessOracle, YcsbClient, YcsbWorkload

REGIONS = (ASIA_EAST, EU_WEST, US_WEST)


@dataclass
class Fig8Result:
    outdated_fraction: float = 0.0
    total_reads: int = 0
    put_latency_ms: dict = field(default_factory=dict)   # region -> mean ms
    overall_put_ms: float = 0.0
    primary_history: list = field(default_factory=list)  # (t, instance_id)


def _run_one(changing: bool, seed: int, duration: float,
             clients_per_region: int, record_count: int) -> Fig8Result:
    dep = build_deployment(REGIONS, seed=seed)
    spec = builtin_policy("ChangePrimary")
    if not changing:
        # Same placements and replication mode, no ChangePrimary monitor.
        from dataclasses import replace
        spec = replace(spec, name="StaticPrimary", change_primary=None)
    instances = dep.start_wiera_instance("fig8", spec)

    workload = YcsbWorkload.workload_b(record_count=record_count,
                                       value_size=1024)
    oracle = StalenessOracle()
    population = GeoClientPopulation.staggered(
        list(REGIONS), first_peak=7.5 * MINUTE, stagger=7.5 * MINUTE,
        sigma=5 * MINUTE, max_clients=clients_per_region, min_clients=1)

    loader = dep.add_client(ASIA_EAST, instances=instances, name="loader")

    def load():
        yc = YcsbClient(dep.sim, loader, workload, dep.rng.stream("loader"))
        yield from yc.load(record_count)
    dep.drive(load())
    t0 = dep.sim.now

    by_region: dict[str, list] = {r: [] for r in REGIONS}
    ycsb_clients = []
    for region in REGIONS:
        for i in range(clients_per_region):
            client = dep.add_client(region, instances=instances,
                                    name=f"cl-{region}-{i}")
            yc = YcsbClient(
                dep.sim, client, workload,
                dep.rng.stream(f"ycsb-{region}-{i}"), think_time=0.5,
                oracle=oracle,
                is_active=population.activity_gate(dep.sim, region, i))
            by_region[region].append(client)
            ycsb_clients.append(yc)
            yc.start()
    dep.sim.run(until=t0 + duration)
    for yc in ycsb_clients:
        yc.stop()

    result = Fig8Result()
    result.outdated_fraction = oracle.outdated_fraction
    result.total_reads = oracle.total_reads
    all_latencies = []
    for region in REGIONS:
        vals = [v for c in by_region[region] for v in c.put_latency.values]
        result.put_latency_ms[region] = (sum(vals) / len(vals) / MS
                                         if vals else 0.0)
        all_latencies.extend(vals)
    result.overall_put_ms = (sum(all_latencies) / len(all_latencies) / MS
                             if all_latencies else 0.0)
    tim = dep.tim("fig8")
    if hasattr(tim.protocol, "config"):
        result.primary_history = [(t - t0, iid)
                                  for (t, iid) in tim.protocol.config.history]
    return result


def run_fig8_table3(seed: int = 0, duration: float = 32 * MINUTE,
                    clients_per_region: int = 10,
                    record_count: int = 10) -> tuple:
    static = _run_one(False, seed, duration, clients_per_region, record_count)
    changing = _run_one(True, seed, duration, clients_per_region, record_count)

    fig8 = ExperimentReport(
        exp_id="fig8",
        title="Fraction of gets returning latest vs outdated data",
        columns=["configuration", "latest (%)", "outdated (%)", "reads"],
        paper_claim="static primary: 69% outdated; changing primary: 39%")
    fig8.add_row("static primary",
                 100 * (1 - static.outdated_fraction),
                 100 * static.outdated_fraction, static.total_reads)
    fig8.add_row("changing primary",
                 100 * (1 - changing.outdated_fraction),
                 100 * changing.outdated_fraction, changing.total_reads)
    fig8.notes = ("primary moves: "
                  + " -> ".join(iid.rsplit("-", 2)[-2] + "-"
                                + iid.rsplit("-", 2)[-1]
                                for _, iid in changing.primary_history))

    table3 = ExperimentReport(
        exp_id="table3",
        title="Average put operation latency (ms)",
        columns=["configuration", "EU West", "US West", "Asia East",
                 "overall"],
        paper_claim=("static {216.61, 105.26, <5, 105.18}; "
                     "changing {95.19, 72.20, 40.60, 68.13}"))
    for name, res in (("static", static), ("changing", changing)):
        table3.add_row(name,
                       res.put_latency_ms[EU_WEST],
                       res.put_latency_ms[US_WEST],
                       res.put_latency_ms[ASIA_EAST],
                       res.overall_put_ms)
    return (static, changing), fig8, table3
