"""Figure 11: SysBench IOPS — Azure local disk vs AWS remote memory.

Setup (per §5.4.1): the primary Tiera instance runs on an Azure VM with a
disk-only tier (host cache off / O_DIRECT -> the native 500-IOPS Azure
throttle applies); a second instance on an AWS t2.micro in the same region
holds a memory tier; PrimaryBackup with synchronous updates; all gets are
forwarded to the AWS memory instance.  SysBench drives 16 KB random reads
through the FUSE-substitute POSIX layer, varying the Azure VM size.

Expected shape: local disk flat at ~500 IOPS regardless of VM size;
remote memory through Wiera sensitive to VM size (Azure's network
throttling): Basic A2 < Standard D1 < 500 < Standard D2 ~= D3 at ~44%
above the disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import build_deployment, preload_object
from repro.bench.reporting import ExperimentReport
from repro.core.client import WieraClient
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.fs import TierBlockFile, WieraBlockFile, WieraFS
from repro.fs.posixfs import block_object_key
from repro.net.network import Network
from repro.net.topology import US_EAST
from repro.net.vmprofiles import get_profile
from repro.sim.kernel import Simulator
from repro.storage.factory import make_tier
from repro.tiera.policy import disk_only_policy, memory_only_policy
from repro.util.units import GB, KB
from repro.workloads.sysbench import SysbenchFileIO

VM_SIZES = ("azure.basic_a2", "azure.standard_d1",
            "azure.standard_d2", "azure.standard_d3")
BLOCK_SIZE = 16 * KB
NBLOCKS = 4096          # a 64 MB prepared file
THREADS = 4


@dataclass
class Fig11Result:
    local_iops: dict = field(default_factory=dict)
    wiera_iops: dict = field(default_factory=dict)


def _run_local_disk(vm: str, duration: float, seed: int) -> float:
    """Baseline: SysBench straight onto the attached Azure disk."""
    sim = Simulator()
    Network(sim)  # unused but keeps construction uniform
    backend = make_tier(sim, "azure_disk", 64 * GB, name="local-disk",
                        rng=np.random.default_rng(seed + 1))
    blockfile = TierBlockFile(backend, "sbtest", NBLOCKS, BLOCK_SIZE)
    blockfile.prepare()
    bench = SysbenchFileIO(sim, blockfile, threads=THREADS, read_prop=1.0,
                           duration=duration,
                           rng=np.random.default_rng(seed + 2))
    proc = sim.process(bench.run())
    sim.run(until=proc)
    return bench.result.iops


def _run_wiera_remote(vm: str, duration: float, seed: int) -> float:
    """Remote AWS memory through Wiera's POSIX layer."""
    dep = build_deployment([US_EAST], providers={US_EAST: ("azure", "aws")},
                           seed=seed)
    azure_server = dep.server(US_EAST, "azure")
    azure_server.host.vm = get_profile(vm)
    azure_server.host.egress.rate = azure_server.host.vm.network_bw
    spec = GlobalPolicySpec(
        name="sysbench",
        placements=(
            RegionPlacement(US_EAST, disk_only_policy(size="64G"),
                            provider="azure", primary=True),
            RegionPlacement(US_EAST, memory_only_policy(size="1G"),
                            provider="aws")),
        consistency="primary_backup", sync_replication=True)
    instances = dep.start_wiera_instance("sysbench", spec)
    tim = dep.tim("sysbench")
    aws_id = next(iid for iid, rec in tim.instances.items()
                  if rec.provider == "aws")
    # "a get operation policy for all get operations to be forwarded to
    # the instance on AWS" (§5.4.1)
    tim.protocol.config.get_from = aws_id

    client = WieraClient(dep.sim, dep.network, azure_server.host,
                         name="sysbench-app")
    client.attach(instances)
    fs = WieraFS(client, block_size=BLOCK_SIZE)
    handle = fs.open("/sbtest")
    fs._sizes["/sbtest"] = NBLOCKS * BLOCK_SIZE
    payload = b"\0" * BLOCK_SIZE
    targets = [rec.instance for rec in tim.instances.values()]
    for i in range(NBLOCKS):
        preload_object(targets, block_object_key("/sbtest", i), payload)
    blockfile = WieraBlockFile(handle, NBLOCKS)
    bench = SysbenchFileIO(dep.sim, blockfile, threads=THREADS,
                           read_prop=1.0, duration=duration,
                           rng=np.random.default_rng(seed + 2))
    dep.drive(bench.run())
    return bench.result.iops


def run_fig11(duration: float = 30.0, seed: int = 0) -> tuple:
    result = Fig11Result()
    for vm in VM_SIZES:
        result.local_iops[vm] = _run_local_disk(vm, duration, seed)
        result.wiera_iops[vm] = _run_wiera_remote(vm, duration, seed)

    report = ExperimentReport(
        exp_id="fig11",
        title="SysBench IOPS: Azure local disk vs AWS remote memory "
              "through Wiera",
        columns=["Azure VM", "local disk (IOPS)", "Wiera remote (IOPS)",
                 "improvement"],
        paper_claim=("local disk flat ~500 IOPS (Azure throttle); Wiera "
                     "remote memory ~44% better on Standard D2/D3; "
                     "Basic A2 worse than Standard D1"))
    for vm in VM_SIZES:
        local = result.local_iops[vm]
        remote = result.wiera_iops[vm]
        report.add_row(vm, local, remote,
                       f"{(remote / local - 1) * 100:+.0f}%")
    return result, report
