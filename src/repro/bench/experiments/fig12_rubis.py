"""Figure 12: unmodified RUBiS throughput on Wiera (§5.4.2).

The whole RUBiS stack (web front end + mini-MySQL) runs on one Azure VM;
the database file lives either on the local attached disk or in remote
AWS memory through Wiera's POSIX layer (MySQL is "unmodified": it only
sees file IO).  O_DIRECT + a 16 MB buffer pool keep the device on the
critical path.  300 clients, timed run with ramp-up/ramp-down excluded.

Expected shape: low throughput on Basic A2 / Standard D1; 50-80%
improvement over the local disk on Standard D2/D3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import build_deployment, preload_object
from repro.bench.reporting import ExperimentReport
from repro.core.client import WieraClient
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.db import MiniDB
from repro.fs import TierBlockFile, WieraBlockFile, WieraFS
from repro.fs.posixfs import block_object_key
from repro.net.network import Network
from repro.net.topology import US_EAST
from repro.net.vmprofiles import get_profile
from repro.sim.kernel import Simulator
from repro.storage.factory import make_tier
from repro.tiera.policy import disk_only_policy, memory_only_policy
from repro.util.units import GB, KB, MB
from repro.workloads.rubis import RubisApp, RubisBenchmark

VM_SIZES = ("azure.basic_a2", "azure.standard_d1",
            "azure.standard_d2", "azure.standard_d3")
BLOCK_SIZE = 16 * KB
NBLOCKS = 16384          # a 256 MB database device


@dataclass
class Fig12Result:
    local_rps: dict = field(default_factory=dict)
    wiera_rps: dict = field(default_factory=dict)


def _bench(sim, blockfile, vm_profile, seed: int, clients: int,
           duration: float, ramp_up: float, ramp_down: float):
    db = MiniDB(sim, blockfile, buffer_pool_bytes=16 * MB)
    app = RubisApp(sim, db, vm_profile, np.random.default_rng(seed + 3))
    return RubisBenchmark(sim, app, clients=clients, think_time=1.2,
                          duration=duration, ramp_up=ramp_up,
                          ramp_down=ramp_down,
                          rng=np.random.default_rng(seed + 4))


def _run_local(vm: str, seed: int, clients: int, duration: float,
               ramp_up: float, ramp_down: float) -> float:
    sim = Simulator()
    Network(sim)
    profile = get_profile(vm)
    backend = make_tier(sim, "azure_disk", 64 * GB, name="db-disk",
                        rng=np.random.default_rng(seed + 1))
    blockfile = TierBlockFile(backend, "rubis.db", NBLOCKS, BLOCK_SIZE)
    blockfile.prepare()
    bench = _bench(sim, blockfile, profile, seed, clients, duration,
                   ramp_up, ramp_down)
    proc = sim.process(bench.run())
    sim.run(until=proc)
    return bench.throughput


def _run_wiera(vm: str, seed: int, clients: int, duration: float,
               ramp_up: float, ramp_down: float) -> float:
    dep = build_deployment([US_EAST], providers={US_EAST: ("azure", "aws")},
                           seed=seed)
    azure_server = dep.server(US_EAST, "azure")
    azure_server.host.vm = get_profile(vm)
    azure_server.host.egress.rate = azure_server.host.vm.network_bw
    spec = GlobalPolicySpec(
        name="rubis",
        placements=(
            RegionPlacement(US_EAST, disk_only_policy(size="64G"),
                            provider="azure", primary=True),
            RegionPlacement(US_EAST, memory_only_policy(size="2G"),
                            provider="aws")),
        consistency="primary_backup", sync_replication=True)
    instances = dep.start_wiera_instance("rubis", spec)
    tim = dep.tim("rubis")
    aws_id = next(iid for iid, rec in tim.instances.items()
                  if rec.provider == "aws")
    tim.protocol.config.get_from = aws_id
    client = WieraClient(dep.sim, dep.network, azure_server.host,
                         name="rubis-app")
    client.attach(instances)
    fs = WieraFS(client, block_size=BLOCK_SIZE)
    handle = fs.open("/rubis.db")
    fs._sizes["/rubis.db"] = NBLOCKS * BLOCK_SIZE
    payload = b"\0" * BLOCK_SIZE
    targets = [rec.instance for rec in tim.instances.values()]
    for i in range(NBLOCKS):
        preload_object(targets, block_object_key("/rubis.db", i), payload)
    blockfile = WieraBlockFile(handle, NBLOCKS)
    bench = _bench(dep.sim, blockfile, azure_server.host.vm, seed, clients,
                   duration, ramp_up, ramp_down)
    dep.drive(bench.run())
    return bench.throughput


def run_fig12(seed: int = 0, clients: int = 300, duration: float = 90.0,
              ramp_up: float = 30.0, ramp_down: float = 15.0) -> tuple:
    """Run the comparison.  Defaults are a 3.3x time-scale of the paper's
    300 s run / 120 s ramp-up / 60 s ramp-down, preserving the shape while
    keeping the benchmark quick; pass duration=300, ramp_up=120,
    ramp_down=60 for the full-length runs."""
    result = Fig12Result()
    for vm in VM_SIZES:
        result.local_rps[vm] = _run_local(vm, seed, clients, duration,
                                          ramp_up, ramp_down)
        result.wiera_rps[vm] = _run_wiera(vm, seed, clients, duration,
                                          ramp_up, ramp_down)

    report = ExperimentReport(
        exp_id="fig12",
        title="RUBiS throughput (requests/s): local disk vs remote memory "
              "through Wiera",
        columns=["Azure VM", "local disk (req/s)", "Wiera remote (req/s)",
                 "improvement"],
        paper_claim=("low throughput from small instances (Basic A2, "
                     "Standard D1); 50-80% improvement on Standard D2/D3"))
    for vm in VM_SIZES:
        local = result.local_rps[vm]
        remote = result.wiera_rps[vm]
        report.add_row(vm, local, remote,
                       f"{(remote / local - 1) * 100:+.0f}%")
    return result, report
