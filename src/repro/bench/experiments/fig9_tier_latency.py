"""Figure 9: operation latencies for 4 KB objects per storage tier (US East).

A Tiera instance in US East exposes each tier; the application runs on the
same VM (as in §5: "clients running on the same VM where the instances are
running"), so measured latency is tier service time plus the loopback RPC.
EBS is measured with direct IO (the paper throttles memory so the OS
buffer cache cannot serve reads).

Expected shape: EBS SSD (~1-2 ms) < EBS HDD (~10 ms) < S3 < S3-IA
(tens of ms), with put > get for the object stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import ExperimentReport
from repro.core.client import WieraClient
from repro.net.network import Network
from repro.net.topology import US_EAST
from repro.sim.kernel import Simulator
from repro.tiera.instance import TieraInstance
from repro.tiera.policy import LocalPolicy, Rule, TierSpec
from repro.tiera.events import InsertEvent
from repro.tiera.responses import StoreResponse
from repro.util.rng import RngRegistry
from repro.util.units import GB, KB, MS

TIERS = ("ebs_ssd", "ebs_hdd", "s3", "s3_ia")


@dataclass
class Fig9Result:
    put_ms: dict = field(default_factory=dict)
    get_ms: dict = field(default_factory=dict)


def run_fig9(object_size: int = 4 * KB, ops: int = 100,
             seed: int = 0) -> tuple:
    result = Fig9Result()
    for tier_name in TIERS:
        sim = Simulator()
        network = Network(sim)
        host = network.add_host(f"host-{tier_name}", US_EAST,
                                vm="aws.t2_micro")
        policy = LocalPolicy(
            name=f"OneTier-{tier_name}",
            tiers=(TierSpec(name="tier1", profile=tier_name,
                            capacity=16 * GB),),
            rules=(Rule(InsertEvent(tier=None),
                        (StoreResponse(to="tier1"),)),))
        instance = TieraInstance(sim, network, host, f"i-{tier_name}",
                                 US_EAST, policy, rng=RngRegistry(seed))
        instance.start()
        client = WieraClient(sim, network, host, name=f"app-{tier_name}")
        client.attach([{"instance_id": instance.instance_id,
                        "region": US_EAST, "node": instance.node}])

        def workload():
            payload = b"\xAB" * object_size
            for i in range(ops):
                yield from client.put(f"obj{i}", payload)
            for i in range(ops):
                yield from client.get(f"obj{i}")
        proc = sim.process(workload())
        sim.run(until=proc)
        result.put_ms[tier_name] = client.put_latency.mean() / MS
        result.get_ms[tier_name] = client.get_latency.mean() / MS

    report = ExperimentReport(
        exp_id="fig9",
        title=f"Operation latency for {object_size // KB} KB objects in "
              "US East, per storage tier",
        columns=["tier", "put (ms)", "get (ms)"],
        paper_claim=("EBS SSD best, EBS HDD in between, S3/S3-IA worst; "
                     "more expensive tiers are faster (Table 4 prices)"))
    for tier_name in TIERS:
        report.add_row(tier_name, result.put_ms[tier_name],
                       result.get_ms[tier_name])
    return result, report
