"""Figure 10: operation latency to a centralized US East S3-IA tier.

When all regions share one S3-IA tier in US East for cold data (§5.3),
reads from other regions pay the WAN round trip on top of S3-IA service
time.  We place a Tiera instance with an S3-IA tier in US East and access
it from instances in each region through the shared-tier mechanism
(:class:`~repro.tiera.instance_tier.InstanceTier`).

Expected shape: US East fastest; Asia East worst with get around 200 ms
(the paper's headline number for this figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport
from repro.core.global_policy import ColdDataSpec, GlobalPolicySpec, RegionPlacement
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.tiera.objects import storage_key
from repro.util.units import HOUR, KB, MS

REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


@dataclass
class Fig10Result:
    get_ms: dict = field(default_factory=dict)   # region -> mean ms
    put_ms: dict = field(default_factory=dict)
    centralized_objects: int = 0


def run_fig10(object_size: int = 4 * KB, ops: int = 50,
              seed: int = 0) -> tuple:
    dep = build_deployment(REGIONS, seed=seed)
    local = builtin_policy("SsdWithIaInstance")
    spec = GlobalPolicySpec(
        name="centralized-cold",
        placements=tuple(RegionPlacement(region=r, local_policy=local)
                         for r in REGIONS),
        consistency="eventual", queue_interval=1.0,
        cold=ColdDataSpec(age=120 * HOUR, target_tier="tier2",
                          check_interval=3600.0, centralize=True,
                          central_region=US_EAST))
    instances = dep.start_wiera_instance("fig10", spec)
    tim = dep.tim("fig10")
    central = dep.instance("fig10", US_EAST)

    result = Fig10Result()
    payload = b"\xCD" * object_size

    def measure():
        for region in REGIONS:
            instance = dep.instance("fig10", region)
            if region == US_EAST:
                shared = instance.tier("tier2")
            else:
                shared = instance.tier(tim.shared_cold_tier_name)
            put_samples, get_samples = [], []
            for i in range(ops):
                skey = storage_key(f"cold-{region}-{i}", 1)
                t0 = dep.sim.now
                yield from shared.write(skey, payload)
                put_samples.append(dep.sim.now - t0)
                t0 = dep.sim.now
                yield from shared.read(skey)
                get_samples.append(dep.sim.now - t0)
            result.put_ms[region] = sum(put_samples) / len(put_samples) / MS
            result.get_ms[region] = sum(get_samples) / len(get_samples) / MS
    dep.drive(measure())
    result.centralized_objects = len(central.tier("tier2"))

    report = ExperimentReport(
        exp_id="fig10",
        title="Operation latency to centralized S3-IA in US East, by "
              "accessing region",
        columns=["region", "put (ms)", "get (ms)"],
        paper_claim=("highest get latency ~200 ms from Asia East; local "
                     "US East access cheapest; put latency ignorable since "
                     "puts stay in each region's fast tiers"))
    for region in REGIONS:
        report.add_row(region, result.put_ms[region], result.get_ms[region])
    return result, report
