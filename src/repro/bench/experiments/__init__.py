"""Reproductions of every table and figure in the paper's §5.

One module per experiment; each exposes a ``run_*`` function returning a
result dict plus one or more :class:`~repro.bench.reporting.ExperimentReport`
objects.  The pytest benchmarks under ``benchmarks/`` and the example
scripts under ``examples/`` are thin wrappers over these.
"""

from repro.bench.experiments.fig7_dynamic_consistency import run_fig7
from repro.bench.experiments.fig8_change_primary import run_fig8_table3
from repro.bench.experiments.fig9_tier_latency import run_fig9
from repro.bench.experiments.fig10_centralized_cold import run_fig10
from repro.bench.experiments.sec53_cold_cost import run_sec53
from repro.bench.experiments.fig11_sysbench import run_fig11
from repro.bench.experiments.fig12_rubis import run_fig12

__all__ = [
    "run_fig7",
    "run_fig8_table3",
    "run_fig9",
    "run_fig10",
    "run_sec53",
    "run_fig11",
    "run_fig12",
]
