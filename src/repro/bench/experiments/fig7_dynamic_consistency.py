"""Figure 7: changing consistency at run time.

Setup (per §5.1): instances in US West, US East, EU West and Asia East
under the DynamicConsistency policy (MultiPrimaries initially; switch to
Eventual when put latency exceeds 800 ms for 30 s, and back once the
violation clears for 30 s).  YCSB workload A (update-heavy) clients run in
every region.  Three delays are injected into the US West instance: (a)
and (b) long enough to trip the period threshold, (c) transient.

Expected shape: ~400 ms MultiPrimaries puts; spikes while a delay is
active in strong mode; two switches to Eventual (puts drop below 10 ms)
and two switches back after the quiet period; delay (c) is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import build_deployment
from repro.bench.reporting import ExperimentReport
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.policydsl import builtin_policy
from repro.util.units import MS
from repro.workloads.ycsb import YcsbClient, YcsbWorkload

REGIONS = (US_WEST, US_EAST, EU_WEST, ASIA_EAST)

#: (offset from workload start, injected one-way delay, duration)
DELAYS = ((60.0, 0.15, 60.0),     # (a) long: trips the 30 s period
          (200.0, 0.15, 45.0),    # (b) long: trips the 30 s period
          (330.0, 0.15, 10.0))    # (c) transient: must be ignored


@dataclass
class Fig7Result:
    switch_log: list = field(default_factory=list)   # (t, from, to, done)
    windows: list = field(default_factory=list)      # (t0, t1, n, mean, max)
    strong_baseline_ms: float = 0.0
    eventual_ms: float = 0.0
    t0: float = 0.0


def run_fig7(duration: float = 420.0, seed: int = 0,
             record_count: int = 50, window: float = 30.0) -> tuple:
    dep = build_deployment(REGIONS, seed=seed)
    spec = builtin_policy("DynamicConsistency")
    instances = dep.start_wiera_instance("fig7", spec)

    workload = YcsbWorkload.workload_a(record_count=record_count,
                                       value_size=1024)
    ycsb_clients = []
    for region in REGIONS:
        client = dep.add_client(region, instances=instances,
                                name=f"app-{region}")
        ycsb_clients.append(YcsbClient(
            dep.sim, client, workload, dep.rng.stream(f"ycsb-{region}"),
            think_time=0.5))

    def load():
        yield from ycsb_clients[0].load(record_count)
    dep.drive(load())

    t0 = dep.sim.now
    for yc in ycsb_clients:
        yc.start()
    # Inject delays on the US West instance's WAN paths ("delays into an
    # instance to simulate network or storage delay", §5.1): strong puts
    # pay them on lock + broadcast, while local eventual puts do not.
    for offset, extra, dur in DELAYS:
        for other in REGIONS:
            if other != US_WEST:
                dep.network.inject_pair_delay(US_WEST, other, extra,
                                              start=t0 + offset,
                                              duration=dur)
    dep.sim.run(until=t0 + duration)
    for yc in ycsb_clients:
        yc.stop()

    result = Fig7Result(t0=t0)
    tim = dep.tim("fig7")
    result.switch_log = [(t - t0, frm, to, done - t0)
                         for (t, frm, to, done) in tim.switch_log]
    usw_client = dep.clients[f"app-{US_WEST}"]
    rec = usw_client.put_latency
    for w0 in range(0, int(duration), int(window)):
        vals = rec.window(t0 + w0, t0 + w0 + window)
        if vals:
            result.windows.append(
                (w0, w0 + window, len(vals),
                 sum(vals) / len(vals), max(vals)))
    baseline = rec.window(t0, t0 + 30.0)
    result.strong_baseline_ms = (sum(baseline) / len(baseline) / MS
                                 if baseline else 0.0)
    eventual_samples = []
    for (t_sw, frm, to, done) in tim.switch_log:
        if to == "eventual":
            eventual_samples.extend(rec.window(done + 1.0, done + 20.0))
    result.eventual_ms = (sum(eventual_samples) / len(eventual_samples) / MS
                          if eventual_samples else 0.0)

    report = ExperimentReport(
        exp_id="fig7",
        title="Changing consistency at run-time (US West put latency)",
        columns=["window (s)", "puts", "mean (ms)", "max (ms)"],
        paper_claim=("~400 ms MultiPrimaries baseline; delays (a),(b) trip "
                     "the 800 ms/30 s threshold -> Eventual (<10 ms); "
                     "transient delay (c) ignored; switches back after the "
                     "quiet period"))
    for (w0, w1, n, mean, mx) in result.windows:
        report.add_row(f"{int(w0)}-{int(w1)}", n, mean / MS, mx / MS)
    report.notes = ("switches: "
                    + "; ".join(f"t={t:.0f}s {frm}->{to}"
                                for (t, frm, to, _) in result.switch_log)
                    + f" | strong baseline {result.strong_baseline_ms:.0f} ms,"
                    f" eventual {result.eventual_ms:.1f} ms")
    return result, report
